//! Deterministic clean-capture generation.
//!
//! The corpus generator runs a bundled workload against the real
//! `leopard-db` engine, but on **one thread** with a [`SimClock`], so the
//! produced capture is a pure function of its [`CleanRunSpec`] — the same
//! spec always yields byte-identical JSONL. Two schedules are offered:
//!
//! * **serial** — each transaction runs to completion before the next one
//!   starts (round-robin over clients). Serial histories verify clean at
//!   *every* isolation level, which makes them the right substrate for
//!   anomaly injection: after a mutation, the gadget is provably the only
//!   violation in the capture.
//! * **interleaved** — a seeded scheduler advances one transaction *step*
//!   at a time across clients, so transactions genuinely overlap and the
//!   engine's locks / snapshots / certifier all fire. Such captures are
//!   clean at the engine's declared level (the soundness smoke test's
//!   subject) but not necessarily at other levels.

use leopard_core::fxhash::FxHashMap;
use leopard_core::{
    CaptureHeader, CaptureWriter, ClientId, IsolationLevel, Key, Trace, Value, CAPTURE_VERSION,
};
use leopard_db::{Database, DbConfig, SimClock, TracedSession};
use leopard_workloads::{bundled_workload_mini, TxnStep, UniqueValues, ValueRule, WorkloadGen};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// How client transactions are scheduled by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// One whole transaction at a time, round-robin: clean at every level.
    Serial,
    /// One step at a time, seeded random client order: real concurrency,
    /// clean at the engine's declared level only.
    Interleaved,
}

/// The full recipe for one deterministic clean capture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanRunSpec {
    /// Bundled workload name (see `leopard_workloads::BUNDLED_WORKLOADS`).
    pub workload: String,
    /// Approximate preloaded rows (mini sizing).
    pub rows: u64,
    /// Number of logical clients.
    pub clients: usize,
    /// Transaction attempts per client.
    pub txns_per_client: u64,
    /// Isolation level the engine runs at.
    pub level: IsolationLevel,
    /// Seed driving workload generators and the interleaved scheduler.
    pub seed: u64,
    /// SimClock step in simulated nanoseconds per clock read.
    pub tick: u64,
    /// The schedule.
    pub schedule: Schedule,
}

impl CleanRunSpec {
    /// The committed golden corpus's base recipe. Changing any field here
    /// invalidates `tests/corpus/` — regenerate it with
    /// `leopard oracle --out-dir tests/corpus`.
    #[must_use]
    pub fn corpus_default() -> CleanRunSpec {
        CleanRunSpec {
            workload: "blindw-rw".to_string(),
            rows: 32,
            clients: 2,
            txns_per_client: 8,
            level: IsolationLevel::Serializable,
            seed: 42,
            tick: 100,
            schedule: Schedule::Serial,
        }
    }
}

/// An in-memory capture: header (with preload) plus the trace stream in
/// dispatch order.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The capture header, including the preloaded rows.
    pub header: CaptureHeader,
    /// Traces sorted by `(ts_bef, ts_aft, txn)`.
    pub traces: Vec<Trace>,
}

impl Capture {
    /// Serializes to the JSONL capture format (header line + one trace per
    /// line), exactly as `leopard record` writes it.
    ///
    /// # Panics
    /// Never: writing to a `Vec<u8>` cannot fail and the types serialize
    /// infallibly.
    #[must_use]
    pub fn to_jsonl(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = CaptureWriter::new(&mut buf, &self.header).expect("vec write");
        for t in &self.traces {
            w.write(t).expect("vec write");
        }
        w.finish().expect("vec write");
        buf
    }

    /// Largest `ts_aft` in the capture (0 for an empty capture).
    #[must_use]
    pub fn max_ts(&self) -> u64 {
        self.traces.iter().map(|t| t.ts_aft().0).max().unwrap_or(0)
    }

    /// Largest key mentioned anywhere (preload, reads, writes).
    #[must_use]
    pub fn max_key(&self) -> u64 {
        let mut m = self
            .header
            .preload
            .iter()
            .map(|&(k, _)| k.0)
            .max()
            .unwrap_or(0);
        for t in &self.traces {
            if let Some(set) = t.op.key_values() {
                for &(k, _) in set {
                    m = m.max(k.0);
                }
            }
        }
        m
    }

    /// Largest value mentioned anywhere (preload, reads, writes).
    #[must_use]
    pub fn max_value(&self) -> u64 {
        let mut m = self
            .header
            .preload
            .iter()
            .map(|&(_, v)| v.0)
            .max()
            .unwrap_or(0);
        for t in &self.traces {
            if let Some(set) = t.op.key_values() {
                for &(_, v) in set {
                    m = m.max(v.0);
                }
            }
        }
        m
    }

    /// Largest transaction id in the capture.
    #[must_use]
    pub fn max_txn(&self) -> u64 {
        self.traces.iter().map(|t| t.txn.0).max().unwrap_or(0)
    }

    /// Largest client id in the capture.
    #[must_use]
    pub fn max_client(&self) -> u32 {
        self.traces.iter().map(|t| t.client.0).max().unwrap_or(0)
    }
}

/// One client's in-flight state inside the deterministic executor.
struct ExecClient {
    session: TracedSession<Arc<SimClock>, Vec<Trace>>,
    gen: Box<dyn WorkloadGen>,
    rng: SmallRng,
    steps: Vec<TxnStep>,
    next_step: usize,
    in_txn: bool,
    read_vals: FxHashMap<Key, Value>,
    remaining: u64,
}

impl ExecClient {
    fn active(&self) -> bool {
        self.in_txn || self.remaining > 0
    }

    /// Advances this client by one step (begin, one operation, or commit).
    /// Mirrors `leopard_workloads::execute_txn`, unrolled so the scheduler
    /// can interleave clients between steps.
    fn step(&mut self, unique: &UniqueValues) {
        if !self.in_txn {
            self.steps = self.gen.next_txn(&mut self.rng);
            self.next_step = 0;
            self.read_vals.clear();
            self.remaining -= 1;
            self.session.begin();
            self.in_txn = true;
            return;
        }
        if self.next_step >= self.steps.len() {
            let _ = self.session.commit();
            self.in_txn = false;
            return;
        }
        let step = self.steps[self.next_step].clone();
        self.next_step += 1;
        let result = match step {
            TxnStep::Read(k) => self.session.read(k).map(|v| {
                if let Some(v) = v {
                    self.read_vals.insert(k, v);
                }
            }),
            TxnStep::RangeRead(start, n) => self.session.read_range(start, n).map(|rows| {
                for (k, v) in rows {
                    self.read_vals.insert(k, v);
                }
            }),
            TxnStep::LockedRead(k) => self.session.read_for_update(k).map(|v| {
                if let Some(v) = v {
                    self.read_vals.insert(k, v);
                }
            }),
            TxnStep::Write(k, rule) => {
                let value = match rule {
                    ValueRule::Unique => Ok(unique.next()),
                    ValueRule::Const(c) => Ok(Value(c)),
                    ValueRule::AddToRead(src, delta) => match self.read_vals.get(&src) {
                        Some(v) => Ok(Value(v.0.wrapping_add_signed(delta))),
                        None => self
                            .session
                            .read(src)
                            .map(|v| Value(v.unwrap_or(Value(0)).0.wrapping_add_signed(delta))),
                    },
                };
                value.and_then(|value| {
                    self.session.write(k, value).map(|()| {
                        self.read_vals.insert(k, value);
                    })
                })
            }
        };
        if result.is_err() {
            // The traced session already emitted the abort trace.
            self.in_txn = false;
        }
    }
}

/// Generates a deterministic clean capture from `spec`.
///
/// # Errors
/// Returns a message when the workload name is unknown.
pub fn generate_clean_capture(spec: &CleanRunSpec) -> Result<Capture, String> {
    let (proto, gens) = bundled_workload_mini(&spec.workload, spec.rows, spec.clients)?;
    let db = Database::new(DbConfig {
        isolation: spec.level,
        // Zero lock wait: on one thread a held lock can never be released
        // while we wait for it, so waiting would only add nondeterminism.
        lock_wait: Duration::ZERO,
        lock_retry: Duration::ZERO,
        op_latency: Duration::ZERO,
        ..DbConfig::default()
    });
    let preload = proto.preload();
    for &(k, v) in &preload {
        db.preload(k, v);
    }
    let clock = Arc::new(SimClock::new(spec.tick.max(1)));
    let unique = UniqueValues::new();
    let mut clients: Vec<ExecClient> = gens
        .into_iter()
        .enumerate()
        .map(|(i, gen)| ExecClient {
            session: TracedSession::new(
                db.session(),
                Arc::clone(&clock),
                ClientId(i as u32),
                Vec::new(),
            ),
            gen,
            rng: SmallRng::seed_from_u64(spec.seed.wrapping_add(i as u64)),
            steps: Vec::new(),
            next_step: 0,
            in_txn: false,
            read_vals: FxHashMap::default(),
            remaining: spec.txns_per_client,
        })
        .collect();

    let mut sched = SmallRng::seed_from_u64(spec.seed ^ 0x5EED_5EED_5EED_5EED);
    match spec.schedule {
        Schedule::Serial => {
            // Round-robin whole transactions: run client i's txn to
            // completion, then client i+1's, ...
            let mut progressed = true;
            while progressed {
                progressed = false;
                for c in &mut clients {
                    if c.remaining > 0 {
                        progressed = true;
                        c.step(&unique); // begin
                        while c.in_txn {
                            c.step(&unique);
                        }
                    }
                }
            }
        }
        Schedule::Interleaved => loop {
            let active: Vec<usize> = (0..clients.len())
                .filter(|&i| clients[i].active())
                .collect();
            if active.is_empty() {
                break;
            }
            let pick = active[sched.random_range(0..active.len())];
            clients[pick].step(&unique);
        },
    }

    let mut traces: Vec<Trace> = clients
        .into_iter()
        .flat_map(|c| c.session.into_parts())
        .collect();
    // SimClock timestamps are globally unique, so this order is total and
    // the output deterministic.
    traces.sort_by_key(|t| (t.ts_bef(), t.ts_aft(), t.txn));

    Ok(Capture {
        header: CaptureHeader {
            version: CAPTURE_VERSION,
            description: format!(
                "oracle clean run: {} rows={} clients={} txns={} level={} seed={} schedule={:?}",
                spec.workload,
                spec.rows,
                spec.clients,
                spec.txns_per_client,
                spec.level,
                spec.seed,
                spec.schedule,
            ),
            preload,
        },
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_core::{PreflightAnalyzer, PreflightConfig, Verifier, VerifierConfig};

    fn spec(schedule: Schedule) -> CleanRunSpec {
        CleanRunSpec {
            workload: "blindw-rw".to_string(),
            rows: 16,
            clients: 3,
            txns_per_client: 6,
            level: IsolationLevel::Serializable,
            seed: 7,
            tick: 10,
            schedule,
        }
    }

    fn verify_clean(cap: &Capture, level: IsolationLevel) {
        let mut v = Verifier::new(VerifierConfig::for_level(level));
        for &(k, val) in &cap.header.preload {
            v.preload(k, val);
        }
        for t in &cap.traces {
            v.process(t);
        }
        let out = v.finish();
        assert!(out.report.is_clean(), "{level}: {}", out.report);
    }

    #[test]
    fn generation_is_bit_deterministic() {
        for schedule in [Schedule::Serial, Schedule::Interleaved] {
            let a = generate_clean_capture(&spec(schedule)).unwrap();
            let b = generate_clean_capture(&spec(schedule)).unwrap();
            assert_eq!(a.to_jsonl(), b.to_jsonl(), "{schedule:?}");
            assert!(!a.traces.is_empty());
        }
    }

    #[test]
    fn serial_captures_are_clean_at_every_level() {
        let cap = generate_clean_capture(&spec(Schedule::Serial)).unwrap();
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::RepeatableRead,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializable,
        ] {
            verify_clean(&cap, level);
        }
    }

    #[test]
    fn interleaved_captures_are_clean_at_their_declared_level() {
        for level in [
            IsolationLevel::ReadCommitted,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::Serializable,
        ] {
            let cap = generate_clean_capture(&CleanRunSpec {
                level,
                ..spec(Schedule::Interleaved)
            })
            .unwrap();
            verify_clean(&cap, level);
        }
    }

    #[test]
    fn captures_pass_preflight_without_errors() {
        let cap = generate_clean_capture(&spec(Schedule::Interleaved)).unwrap();
        let report = PreflightAnalyzer::analyze(
            PreflightConfig::default(),
            cap.header.preload.iter().copied(),
            cap.traces.iter(),
        );
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_clean_capture(&spec(Schedule::Interleaved)).unwrap();
        let b = generate_clean_capture(&CleanRunSpec {
            seed: 8,
            ..spec(Schedule::Interleaved)
        })
        .unwrap();
        assert_ne!(a.to_jsonl(), b.to_jsonl());
    }
}
