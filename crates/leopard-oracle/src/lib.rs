//! # leopard-oracle: the anomaly-injection oracle
//!
//! End-to-end differential testing for the whole verification stack.
//! The oracle answers the question the unit tests cannot: *does the
//! verifier reject exactly the histories it should, for exactly the
//! reason it should, at exactly the levels it should?*
//!
//! Four pieces:
//!
//! * [`corpus`] — a deterministic clean-capture generator: bundled
//!   workloads run single-threaded on a simulated clock, so every capture
//!   is a pure function of its [`CleanRunSpec`](corpus::CleanRunSpec) and
//!   replays bit-identically from its seed.
//! * [`inject`] — seeded anomaly injection: proof-carrying
//!   [`Mutation`](inject::Mutation)s that append a surgical gadget
//!   exhibiting one anomaly class (dirty write, dirty read, aborted read,
//!   fuzzy read, phantom, read skew, lost update, write skew, long fork)
//!   or one well-formedness corruption (one per preflight `H00x`
//!   diagnostic).
//! * [`chaos`] — the dual obligation under failure injection: clean
//!   captures mangled by a seeded [`DegradeSpec`] (drops, duplicates,
//!   killed terminals) must verify *clean* in degraded mode — zero false
//!   positives at every level.
//! * [`matrix`] — the differential verdict matrix: every
//!   (anomaly × isolation level) cell through `leopard_core::Verifier`,
//!   plus the Cobra and cycle-search baselines and the preflight
//!   analyzer, asserted against the expected matrix from the paper's
//!   Fig. 1.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod corpus;
pub mod inject;
pub mod matrix;

pub use chaos::{
    check_chaos_soundness, degradation_was_exercised, degrade_capture, verify_degraded_at,
    ChaosCell, ChaosSoundnessReport, DegradeSpec,
};
pub use corpus::{generate_clean_capture, Capture, CleanRunSpec, Schedule};
pub use inject::{AnomalyClass, CorruptionKind, Mutation, Proof};
pub use matrix::{
    cobra_rejects, corpus_files, cycle_search_rejects, expected_cobra_reject,
    expected_cycle_reject, level_tag, run_matrix, verify_at, BaselineCell, CellResult,
    CorruptionRow, MatrixReport, MatrixRow, LEVELS,
};
