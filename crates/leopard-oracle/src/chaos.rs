//! Chaos soundness: degraded captures must never produce false positives.
//!
//! The anomaly matrix ([`crate::matrix`]) checks that the verifier flags
//! what it must; this module checks the dual obligation under failure
//! injection — a capture that was *correct* but got mangled in transport
//! (deliveries dropped or duplicated, clients killed before their
//! terminal trace) must still verify **clean** when the verifier runs in
//! degraded mode. Every mangling is seeded, so a failing combination
//! replays exactly.
//!
//! Degraded mode buys this soundness by trading away the consistent-read
//! check's completeness: every unmatched read is *demoted* to a counted
//! coverage note instead of reported, because under an incomplete stream
//! a missing delivery can explain any mismatch — a dropped write
//! masquerades as a fabricated value, a dropped commit as a dirty read,
//! and a dropped intermediate write splices the overwrite chain until a
//! current read looks stale. Mutual exclusion, first-updater-wins and
//! the serialization certifier lose nothing: their evidence is commit
//! intervals, which mangling cannot move.

use crate::corpus::Capture;
use leopard_core::{IsolationLevel, TxnId, Verifier, VerifierConfig, VerifyOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded recipe for mangling a clean capture the way a chaotic
/// environment would: per-delivery drops and duplicates, per-transaction
/// terminal loss (the client died before its commit/abort was recorded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeSpec {
    /// Seed for every random decision below.
    pub seed: u64,
    /// Probability that a trace delivery is dropped.
    pub drop_prob: f64,
    /// Probability that a trace delivery is duplicated (back-to-back, as
    /// a retrying transport re-delivers).
    pub dup_prob: f64,
    /// Probability that a transaction's terminal trace is removed — the
    /// client was killed mid-transaction and never reported commit/abort.
    pub kill_terminal_prob: f64,
}

impl DegradeSpec {
    /// A moderate default mangling: 5 % drops, 5 % duplicates, 10 % of
    /// transactions lose their terminal.
    #[must_use]
    pub fn moderate(seed: u64) -> DegradeSpec {
        DegradeSpec {
            seed,
            drop_prob: 0.05,
            dup_prob: 0.05,
            kill_terminal_prob: 0.10,
        }
    }
}

/// Applies `spec` to a capture. Timestamps and per-trace content are
/// untouched and order is preserved, so per-client `ts_bef` monotonicity
/// — the pipeline's Theorem 1 precondition — survives the mangling.
#[must_use]
pub fn degrade_capture(cap: &Capture, spec: &DegradeSpec) -> Capture {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // Pass 1: pick the killed transactions (terminal removed).
    let mut killed: Vec<TxnId> = Vec::new();
    if spec.kill_terminal_prob > 0.0 {
        for t in &cap.traces {
            if t.op.is_terminal()
                && !killed.contains(&t.txn)
                && rng.random_bool(spec.kill_terminal_prob)
            {
                killed.push(t.txn);
            }
        }
    }
    // Pass 2: drop / duplicate the remaining deliveries.
    let mut traces = Vec::with_capacity(cap.traces.len());
    for t in &cap.traces {
        if t.op.is_terminal() && killed.contains(&t.txn) {
            continue;
        }
        if spec.drop_prob > 0.0 && rng.random_bool(spec.drop_prob) {
            continue;
        }
        if spec.dup_prob > 0.0 && rng.random_bool(spec.dup_prob) {
            traces.push(t.clone());
        }
        traces.push(t.clone());
    }
    Capture {
        header: cap.header.clone(),
        traces,
    }
}

/// Runs a capture through the verifier in degraded mode at `level`.
#[must_use]
pub fn verify_degraded_at(cap: &Capture, level: IsolationLevel) -> VerifyOutcome {
    let mut cfg = VerifierConfig::for_level(level);
    cfg.degraded = true;
    let mut v = Verifier::new(cfg);
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    for t in &cap.traces {
        v.process(t);
    }
    v.finish()
}

/// One (level × degradation) soundness cell.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// The isolation level verified at.
    pub level: IsolationLevel,
    /// The degradation seed.
    pub seed: u64,
    /// Violations reported — any entry here is a false positive.
    pub violations: usize,
    /// Transactions left without a terminal trace.
    pub indeterminate: usize,
    /// Traces the quarantine gate diverted (e.g. duplicated terminals).
    pub quarantined: u64,
    /// Consistent-read checks demoted to coverage notes.
    pub demoted: u64,
}

/// The soundness verdict for one capture across levels and seeds.
#[derive(Debug, Clone, Default)]
pub struct ChaosSoundnessReport {
    /// Every verified cell.
    pub cells: Vec<ChaosCell>,
}

impl ChaosSoundnessReport {
    /// `true` when no cell reported a violation (zero false positives).
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.cells.iter().all(|c| c.violations == 0)
    }

    /// The cells that reported false positives.
    #[must_use]
    pub fn false_positives(&self) -> Vec<&ChaosCell> {
        self.cells.iter().filter(|c| c.violations > 0).collect()
    }
}

/// Degrades `cap` once per spec in `specs` and verifies each mangled
/// capture in degraded mode at `level` — the level the capture's engine
/// ran at (an interleaved capture is only clean at its declared level, so
/// any other level would not isolate chaos as the cause of a flag).
pub fn check_chaos_soundness(
    cap: &Capture,
    level: IsolationLevel,
    specs: &[DegradeSpec],
    report: &mut ChaosSoundnessReport,
) {
    for spec in specs {
        let mangled = degrade_capture(cap, spec);
        let out = verify_degraded_at(&mangled, level);
        report.cells.push(ChaosCell {
            level,
            seed: spec.seed,
            violations: out.report.violations.len(),
            indeterminate: out.coverage.indeterminate_txns.len(),
            quarantined: out.coverage.quarantined_traces,
            demoted: out.coverage.demoted_reads,
        });
    }
}

/// Verifies that degradation was actually exercised: across the cells of
/// a report at least one transaction went indeterminate, or a trace was
/// quarantined, or a read was demoted. Guards the sweep against silently
/// testing an un-degraded capture.
#[must_use]
pub fn degradation_was_exercised(report: &ChaosSoundnessReport) -> bool {
    report
        .cells
        .iter()
        .any(|c| c.indeterminate > 0 || c.quarantined > 0 || c.demoted > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_clean_capture, CleanRunSpec, Schedule};
    use leopard_core::{ClientId, Interval, Key, OpKind, Timestamp, Trace, Value};

    fn spec_at(level: IsolationLevel) -> CleanRunSpec {
        CleanRunSpec {
            workload: "blindw-rw".to_string(),
            rows: 16,
            clients: 3,
            txns_per_client: 8,
            level,
            seed: 77,
            tick: 10,
            schedule: Schedule::Interleaved,
        }
    }

    fn spec() -> CleanRunSpec {
        spec_at(IsolationLevel::Serializable)
    }

    #[test]
    fn degradation_is_deterministic() {
        let cap = generate_clean_capture(&spec()).unwrap();
        let d = DegradeSpec::moderate(3);
        let a = degrade_capture(&cap, &d);
        let b = degrade_capture(&cap, &d);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_ne!(a.to_jsonl(), cap.to_jsonl(), "must actually mangle");
    }

    #[test]
    fn degradation_preserves_per_client_order() {
        let cap = generate_clean_capture(&spec()).unwrap();
        let mangled = degrade_capture(&cap, &DegradeSpec::moderate(5));
        for c in 0..=cap.max_client() {
            let stream: Vec<&Trace> = mangled
                .traces
                .iter()
                .filter(|t| t.client == ClientId(c))
                .collect();
            assert!(stream.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
        }
    }

    #[test]
    fn degraded_captures_are_sound_at_every_level() {
        let mut report = ChaosSoundnessReport::default();
        let specs: Vec<DegradeSpec> = (0..4).map(DegradeSpec::moderate).collect();
        for level in crate::matrix::LEVELS {
            let cap = generate_clean_capture(&spec_at(level)).unwrap();
            check_chaos_soundness(&cap, level, &specs, &mut report);
        }
        assert_eq!(report.cells.len(), 16);
        assert!(
            report.is_sound(),
            "false positives: {:?}",
            report.false_positives()
        );
        assert!(degradation_was_exercised(&report));
    }

    #[test]
    fn degraded_mode_still_flags_mutual_exclusion_violations() {
        // Degradation must not buy soundness by ignoring everything: two
        // committed writes whose operation intervals overlap on one key
        // violate mutual exclusion no matter what got dropped.
        let iv = |lo, hi| Interval::new(Timestamp(lo), Timestamp(hi));
        let cap = Capture {
            header: leopard_core::CaptureHeader {
                version: leopard_core::CAPTURE_VERSION,
                description: "me violation".into(),
                preload: vec![(Key(1), Value(0))],
            },
            traces: vec![
                Trace::new(
                    iv(10, 30),
                    ClientId(0),
                    TxnId(1),
                    OpKind::Write(vec![(Key(1), Value(7))]),
                ),
                Trace::new(
                    iv(12, 28),
                    ClientId(1),
                    TxnId(2),
                    OpKind::Write(vec![(Key(1), Value(8))]),
                ),
                Trace::new(iv(31, 32), ClientId(0), TxnId(1), OpKind::Commit),
                Trace::new(iv(33, 34), ClientId(1), TxnId(2), OpKind::Commit),
            ],
        };
        let out = verify_degraded_at(&cap, IsolationLevel::Serializable);
        assert!(
            !out.report.is_clean(),
            "overlapping committed writes must still be flagged in degraded mode"
        );
    }
}
