//! The differential verdict matrix.
//!
//! For every anomaly class the oracle injects the gadget into one shared
//! clean capture and runs the result through
//!
//! * `leopard_core::Verifier` at each of the four PostgreSQL levels
//!   (RC, RR, SI, SR),
//! * the Cobra baseline (serializability only),
//! * the naive cycle-search baseline (serializability only), and
//! * the preflight analyzer (anomaly gadgets must stay well-formed),
//!
//! and checks each verdict against the expected matrix. The Leopard
//! column is the paper's Fig. 1 lattice; the baseline columns are the
//! *differential* part — they document, per anomaly, which violations a
//! commit-order serializability checker structurally cannot see:
//!
//! * **Cobra** folds each transaction into one record with first-wins
//!   reads, so a fuzzy read collapses into a single consistent read and
//!   escapes; dirty writes produce a ww constraint either orientation of
//!   which is acyclic; a phantom's second predicate read is just a wr
//!   edge. It *does* reject dirty/aborted reads — the observed value is
//!   never installed by any committed transaction.
//! * **Cycle-search** matches reads to versions by value at read time, so
//!   dirty and aborted reads are silently unmatched, and it only sees ww
//!   edges for dirty writes; phantoms again reduce to a plain wr edge.
//!
//! Corruption mutations go through the preflight analyzer instead and
//! must raise their `H00x` diagnostic.

use crate::corpus::{generate_clean_capture, Capture, CleanRunSpec};
use crate::inject::{AnomalyClass, CorruptionKind, Mutation};
use leopard_baselines::{
    collect_committed, CobraConfig, CobraVerdict, CobraVerifier, CycleSearchVerifier,
};
use leopard_core::{
    IsolationLevel, PreflightAnalyzer, PreflightConfig, Severity, Verifier, VerifierConfig,
    VerifyOutcome,
};
use serde::Serialize;
use std::fmt;

/// The four verification levels of the matrix, in column order.
pub const LEVELS: [IsolationLevel; 4] = [
    IsolationLevel::ReadCommitted,
    IsolationLevel::RepeatableRead,
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializable,
];

/// Short column tag for a level.
#[must_use]
pub fn level_tag(level: IsolationLevel) -> &'static str {
    match level {
        IsolationLevel::ReadCommitted => "RC",
        IsolationLevel::RepeatableRead => "RR",
        IsolationLevel::SnapshotIsolation => "SI",
        IsolationLevel::Serializable => "SR",
    }
}

/// Expected Cobra verdict per anomaly class (`true` = reject).
///
/// Derived by stepping the gadgets through `leopard_baselines::cobra`:
/// first-wins read folding hides fuzzy reads, ww constraints admit either
/// orientation for dirty writes, and the phantom's second predicate read
/// is an ordinary wr edge — everything else produces an unsatisfiable
/// constraint or a read of a never-installed value.
#[must_use]
pub fn expected_cobra_reject(class: AnomalyClass) -> bool {
    !matches!(
        class,
        AnomalyClass::DirtyWrite | AnomalyClass::FuzzyRead | AnomalyClass::Phantom
    )
}

/// Expected cycle-search verdict per anomaly class (`true` = reject).
///
/// The naive checker ignores reads it cannot match to a committed
/// version (dirty and aborted reads), sees only a ww edge for dirty
/// writes, and a single wr edge for phantoms; the remaining anomalies
/// close a dependency cycle it does find.
#[must_use]
pub fn expected_cycle_reject(class: AnomalyClass) -> bool {
    !matches!(
        class,
        AnomalyClass::DirtyWrite
            | AnomalyClass::DirtyRead
            | AnomalyClass::AbortedRead
            | AnomalyClass::Phantom
    )
}

/// One Leopard cell: the gadget verified at one isolation level.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Column tag ("RC", "RR", "SI", "SR").
    pub level: String,
    /// Expected verdict (`true` = reject).
    pub expected_reject: bool,
    /// Actual verdict.
    pub rejected: bool,
    /// When rejected: whether the proof's mechanism is among the flagged
    /// violations.
    pub mechanism_flagged: bool,
    /// Cell agreement: verdicts match, and on rejection the proof's
    /// mechanism was flagged.
    pub ok: bool,
}

/// One baseline cell: expected vs actual reject.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineCell {
    /// Expected verdict (`true` = reject).
    pub expected_reject: bool,
    /// Actual verdict.
    pub rejected: bool,
    /// Agreement.
    pub ok: bool,
}

/// One anomaly row of the matrix.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixRow {
    /// Anomaly name (kebab-case).
    pub anomaly: String,
    /// The mechanism the gadget is built to trip.
    pub mechanism: String,
    /// Why the gadget must trip it.
    pub rationale: String,
    /// Leopard verdicts per level, RC..SR.
    pub leopard: Vec<CellResult>,
    /// Cobra baseline verdict.
    pub cobra: BaselineCell,
    /// Naive cycle-search baseline verdict.
    pub cycle_search: BaselineCell,
    /// Preflight errors in the mutated capture (must be 0: anomaly
    /// gadgets are well-formed histories).
    pub preflight_errors: usize,
    /// Row agreement: every cell ok and preflight clean.
    pub ok: bool,
}

/// One corruption row: the mutation must trip the preflight analyzer.
#[derive(Debug, Clone, Serialize)]
pub struct CorruptionRow {
    /// Corruption name (kebab-case).
    pub corruption: String,
    /// The diagnostic the mutation must raise.
    pub code: String,
    /// Expected severity ("error" or "warning").
    pub severity: String,
    /// Whether the diagnostic was raised at that severity.
    pub raised: bool,
    /// Row agreement.
    pub ok: bool,
}

/// The full differential report.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixReport {
    /// The clean-capture recipe the gadgets were injected into.
    pub spec: CleanRunSpec,
    /// One row per anomaly class.
    pub rows: Vec<MatrixRow>,
    /// One row per corruption kind.
    pub corruptions: Vec<CorruptionRow>,
    /// Whether every row agreed with the expected matrix.
    pub all_ok: bool,
}

/// Runs the Leopard verifier over a capture at one level.
#[must_use]
pub fn verify_at(cap: &Capture, level: IsolationLevel) -> VerifyOutcome {
    let mut v = Verifier::new(VerifierConfig::for_level(level));
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    for t in &cap.traces {
        v.process(t);
    }
    v.finish()
}

/// Runs the Cobra baseline over a capture; `true` = rejected.
#[must_use]
pub fn cobra_rejects(cap: &Capture) -> bool {
    let mut cobra = CobraVerifier::new(CobraConfig {
        // No GC: the oracle's captures are small and fences would only
        // blur which constraint went unsatisfiable.
        fence_every: None,
        ..CobraConfig::default()
    });
    for &(k, v) in &cap.header.preload {
        cobra.preload(k, v);
    }
    for rec in collect_committed(&cap.traces) {
        cobra.add_txn(&rec);
    }
    matches!(cobra.finish().verdict, CobraVerdict::Violation { .. })
}

/// Runs the naive cycle-search baseline over a capture; `true` = rejected.
#[must_use]
pub fn cycle_search_rejects(cap: &Capture) -> bool {
    let mut v = CycleSearchVerifier::new();
    for &(k, val) in &cap.header.preload {
        v.preload(k, val);
    }
    for t in &cap.traces {
        v.process(t);
    }
    !v.finish().cycles.is_empty()
}

fn anomaly_row(base: &Capture, class: AnomalyClass) -> MatrixRow {
    let mutated = Mutation::anomaly(class).apply(base);
    let mechanism = class.mechanism();
    let expected = class.rejected_at();
    let leopard: Vec<CellResult> = LEVELS
        .iter()
        .zip(expected)
        .map(|(&level, expected_reject)| {
            let outcome = verify_at(&mutated, level);
            let rejected = !outcome.report.is_clean();
            let mechanism_flagged = outcome.report.count(mechanism) > 0;
            CellResult {
                level: level_tag(level).to_string(),
                expected_reject,
                rejected,
                mechanism_flagged,
                ok: rejected == expected_reject && (!rejected || mechanism_flagged),
            }
        })
        .collect();
    let cobra = BaselineCell {
        expected_reject: expected_cobra_reject(class),
        rejected: cobra_rejects(&mutated),
        ok: false,
    };
    let cobra = BaselineCell {
        ok: cobra.rejected == cobra.expected_reject,
        ..cobra
    };
    let cycle = BaselineCell {
        expected_reject: expected_cycle_reject(class),
        rejected: cycle_search_rejects(&mutated),
        ok: false,
    };
    let cycle_search = BaselineCell {
        ok: cycle.rejected == cycle.expected_reject,
        ..cycle
    };
    let preflight_errors = PreflightAnalyzer::analyze(
        PreflightConfig::default(),
        mutated.header.preload.iter().copied(),
        mutated.traces.iter(),
    )
    .error_count();
    let ok = leopard.iter().all(|c| c.ok) && cobra.ok && cycle_search.ok && preflight_errors == 0;
    MatrixRow {
        anomaly: class.name().to_string(),
        mechanism: mechanism.to_string(),
        rationale: class.rationale().to_string(),
        leopard,
        cobra,
        cycle_search,
        preflight_errors,
        ok,
    }
}

fn corruption_row(base: &Capture, kind: CorruptionKind) -> CorruptionRow {
    let mutated = Mutation::corruption(kind).apply(base);
    let report = PreflightAnalyzer::analyze(
        PreflightConfig::default(),
        mutated.header.preload.iter().copied(),
        mutated.traces.iter(),
    );
    let raised = report
        .with_code(kind.diag_code())
        .any(|d| d.severity == kind.severity());
    CorruptionRow {
        corruption: kind.name().to_string(),
        code: kind.diag_code().to_string(),
        severity: match kind.severity() {
            Severity::Error => "error".to_string(),
            Severity::Warning => "warning".to_string(),
        },
        raised,
        ok: raised,
    }
}

/// Generates the clean capture for `spec` and runs the full differential
/// matrix over it.
///
/// # Errors
/// Returns a message when the spec's workload is unknown.
pub fn run_matrix(spec: &CleanRunSpec) -> Result<MatrixReport, String> {
    let base = generate_clean_capture(spec)?;
    let rows: Vec<MatrixRow> = AnomalyClass::ALL
        .iter()
        .map(|&c| anomaly_row(&base, c))
        .collect();
    let corruptions: Vec<CorruptionRow> = CorruptionKind::ALL
        .iter()
        .map(|&k| corruption_row(&base, k))
        .collect();
    let all_ok = rows.iter().all(|r| r.ok) && corruptions.iter().all(|r| r.ok);
    Ok(MatrixReport {
        spec: spec.clone(),
        rows,
        corruptions,
        all_ok,
    })
}

/// The golden corpus as named in-memory files: `base.jsonl`, one mutated
/// capture per anomaly class and corruption kind, the serialized verdict
/// matrix (`matrix.json`) and a `manifest.json` tying them together.
///
/// Everything is a pure function of `spec`, so the returned bytes replay
/// bit-identically from the committed seeds.
///
/// # Errors
/// Returns a message when the spec's workload is unknown.
pub fn corpus_files(spec: &CleanRunSpec) -> Result<Vec<(String, Vec<u8>)>, String> {
    let base = generate_clean_capture(spec)?;
    let mut files = vec![("base.jsonl".to_string(), base.to_jsonl())];
    let mutations: Vec<Mutation> = AnomalyClass::ALL
        .iter()
        .map(|&c| Mutation::anomaly(c))
        .chain(CorruptionKind::ALL.iter().map(|&k| Mutation::corruption(k)))
        .collect();
    for m in &mutations {
        files.push((format!("{}.jsonl", m.name), m.apply(&base).to_jsonl()));
    }
    let report = run_matrix(spec)?;
    let mut matrix_json =
        serde_json::to_string(&report).map_err(|e| format!("matrix serialization failed: {e}"))?;
    matrix_json.push('\n');
    files.push(("matrix.json".to_string(), matrix_json.into_bytes()));
    #[derive(Serialize)]
    struct Manifest {
        spec: CleanRunSpec,
        mutations: Vec<Mutation>,
        files: Vec<String>,
    }
    let mut manifest_json = serde_json::to_string(&Manifest {
        spec: spec.clone(),
        mutations,
        files: files
            .iter()
            .map(|(n, _)| n.clone())
            .chain(std::iter::once("manifest.json".to_string()))
            .collect(),
    })
    .map_err(|e| format!("manifest serialization failed: {e}"))?;
    manifest_json.push('\n');
    files.push(("manifest.json".to_string(), manifest_json.into_bytes()));
    Ok(files)
}

impl fmt::Display for MatrixReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn cell(c: &CellResult) -> String {
            let verdict = if c.rejected { "R" } else { "A" };
            if c.ok {
                format!("{verdict} ") // trailing pad aligns with "X!"
            } else {
                format!("{verdict}!")
            }
        }
        fn bcell(c: &BaselineCell) -> String {
            let verdict = if c.rejected { "R" } else { "A" };
            if c.ok {
                format!("{verdict} ")
            } else {
                format!("{verdict}!")
            }
        }
        writeln!(
            f,
            "anomaly x level matrix (A = accept, R = reject, ! = disagrees with expectation)"
        )?;
        writeln!(
            f,
            "{:<14} {:<5} {:>3} {:>3} {:>3} {:>3}  {:>6} {:>6}  {:>4}",
            "anomaly", "mech", "RC", "RR", "SI", "SR", "cobra", "cycle", "pre"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<14} {:<5} {:>3} {:>3} {:>3} {:>3}  {:>6} {:>6}  {:>4}",
                row.anomaly,
                row.mechanism,
                cell(&row.leopard[0]),
                cell(&row.leopard[1]),
                cell(&row.leopard[2]),
                cell(&row.leopard[3]),
                bcell(&row.cobra),
                bcell(&row.cycle_search),
                row.preflight_errors,
            )?;
        }
        writeln!(f, "corruptions (preflight):")?;
        for row in &self.corruptions {
            writeln!(
                f,
                "{:<28} {:<5} {:<8} {}",
                row.corruption,
                row.code,
                row.severity,
                if row.raised { "raised" } else { "MISSING!" },
            )?;
        }
        write!(
            f,
            "verdict matrix: {}",
            if self.all_ok {
                "all cells agree"
            } else {
                "MISMATCH"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_agrees() {
        let report = run_matrix(&CleanRunSpec::corpus_default()).unwrap();
        assert!(report.all_ok, "\n{report}");
        assert_eq!(report.rows.len(), 9);
        assert_eq!(report.corruptions.len(), 6);
    }

    #[test]
    fn clean_base_is_accepted_everywhere() {
        let base = generate_clean_capture(&CleanRunSpec::corpus_default()).unwrap();
        for level in LEVELS {
            assert!(
                verify_at(&base, level).report.is_clean(),
                "clean base rejected at {level}"
            );
        }
        assert!(!cobra_rejects(&base));
        assert!(!cycle_search_rejects(&base));
    }

    #[test]
    fn display_renders_every_row() {
        let report = run_matrix(&CleanRunSpec::corpus_default()).unwrap();
        let text = report.to_string();
        for row in &report.rows {
            assert!(text.contains(&row.anomaly), "{}", row.anomaly);
        }
        assert!(text.contains("corrupt-garbage-read"));
    }

    #[test]
    fn report_serializes_to_json() {
        let report = run_matrix(&CleanRunSpec::corpus_default()).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"all_ok\":true"), "{json}");
    }
}
