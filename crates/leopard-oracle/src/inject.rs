//! Seeded anomaly injection: surgical rewrites of a clean capture.
//!
//! Each [`Mutation`] appends a small, self-contained *gadget* — a handful
//! of traces on fresh keys, fresh values, fresh transaction ids and fresh
//! clients, all strictly after the clean capture's last timestamp — that
//! exhibits exactly one anomaly class (or one well-formedness corruption).
//! Using only fresh resources guarantees the gadget cannot interact with
//! the clean prefix, so the mutation's *proof obligation* is precise: the
//! mutated capture must trip the named mechanism at the named levels (for
//! anomalies) or raise the named preflight diagnostic (for corruptions),
//! and nothing else may change.
//!
//! Mutations are composable: each derives its fresh resources from the
//! maxima of the capture it is applied to, so applying several in sequence
//! stacks independent gadgets.

use crate::corpus::Capture;
use leopard_core::{
    ClientId, DiagCode, Interval, Key, Mechanism, OpKind, Severity, Timestamp, Trace, TxnId, Value,
};
use serde::{Deserialize, Serialize};

/// Gap between the clean capture's last `ts_aft` and the gadget's time
/// base, so gadget intervals certainly follow everything in the prefix.
const GADGET_GAP: u64 = 1_000;

/// The anomaly classes the injector can exhibit, covering the paper's
/// taxonomy (Fig. 1): the G0/G1 phenomena plus the snapshot-era anomalies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyClass {
    /// G0: two concurrent uncommitted writes to the same key.
    DirtyWrite,
    /// G1b: reading a value the writer later overwrote before committing.
    DirtyRead,
    /// G1a: reading a value installed by a transaction that aborted.
    AbortedRead,
    /// Non-repeatable read: the same key read twice straddling a commit.
    FuzzyRead,
    /// A predicate read that grows when re-evaluated inside one txn.
    Phantom,
    /// Reading two keys across another transaction's atomic update.
    ReadSkew,
    /// Two read-modify-writes of one key, second clobbers the first.
    LostUpdate,
    /// Disjoint read-sets/write-sets crossing: serializability-only.
    WriteSkew,
    /// Two observers disagree about the order of two independent commits.
    LongFork,
}

impl AnomalyClass {
    /// Every anomaly class, in the matrix's display order.
    pub const ALL: [AnomalyClass; 9] = [
        AnomalyClass::DirtyWrite,
        AnomalyClass::DirtyRead,
        AnomalyClass::AbortedRead,
        AnomalyClass::FuzzyRead,
        AnomalyClass::Phantom,
        AnomalyClass::ReadSkew,
        AnomalyClass::LostUpdate,
        AnomalyClass::WriteSkew,
        AnomalyClass::LongFork,
    ];

    /// Stable kebab-case name: the corpus file stem and matrix row label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AnomalyClass::DirtyWrite => "dirty-write",
            AnomalyClass::DirtyRead => "dirty-read",
            AnomalyClass::AbortedRead => "aborted-read",
            AnomalyClass::FuzzyRead => "fuzzy-read",
            AnomalyClass::Phantom => "phantom",
            AnomalyClass::ReadSkew => "read-skew",
            AnomalyClass::LostUpdate => "lost-update",
            AnomalyClass::WriteSkew => "write-skew",
            AnomalyClass::LongFork => "long-fork",
        }
    }

    /// The mechanism (§III) whose check the gadget is built to trip.
    #[must_use]
    pub fn mechanism(self) -> Mechanism {
        match self {
            AnomalyClass::DirtyWrite => Mechanism::MutualExclusion,
            AnomalyClass::DirtyRead
            | AnomalyClass::AbortedRead
            | AnomalyClass::FuzzyRead
            | AnomalyClass::Phantom
            | AnomalyClass::ReadSkew
            | AnomalyClass::LongFork => Mechanism::ConsistentRead,
            AnomalyClass::LostUpdate => Mechanism::FirstUpdaterWins,
            AnomalyClass::WriteSkew => Mechanism::SerializationCertifier,
        }
    }

    /// Expected Leopard verdict per level, `true` = reject, in the order
    /// RC, RR, SI, SR. This is the paper's Fig. 1 matrix restricted to the
    /// four PostgreSQL levels.
    #[must_use]
    pub fn rejected_at(self) -> [bool; 4] {
        match self {
            // G0/G1 phenomena are illegal even at Read Committed.
            AnomalyClass::DirtyWrite | AnomalyClass::DirtyRead | AnomalyClass::AbortedRead => {
                [true, true, true, true]
            }
            // Snapshot anomalies: legal at RC (statement-level snapshot),
            // illegal once reads use a transaction-level snapshot.
            AnomalyClass::FuzzyRead
            | AnomalyClass::Phantom
            | AnomalyClass::ReadSkew
            | AnomalyClass::LostUpdate
            | AnomalyClass::LongFork => [false, true, true, true],
            // Write skew survives every snapshot level; only the SSI
            // certifier rejects it.
            AnomalyClass::WriteSkew => [false, false, false, true],
        }
    }

    /// Why the gadget must trip [`AnomalyClass::mechanism`].
    #[must_use]
    pub fn rationale(self) -> &'static str {
        match self {
            AnomalyClass::DirtyWrite => {
                "two write locks on one key are held concurrently, so ME's \
                 exclusion check fails at every level"
            }
            AnomalyClass::DirtyRead => {
                "the read observes a version its writer later overwrote \
                 before committing; no statement snapshot can contain it, \
                 so CR fails even at RC"
            }
            AnomalyClass::AbortedRead => {
                "the read observes a version whose writer aborted; no \
                 snapshot contains it, so CR fails even at RC"
            }
            AnomalyClass::FuzzyRead => {
                "the second read returns a version committed certainly \
                 after the transaction's snapshot, tripping CR at \
                 transaction-snapshot levels; each statement snapshot on \
                 its own is consistent, so RC accepts"
            }
            AnomalyClass::Phantom => {
                "the re-evaluated predicate read contains a row committed \
                 certainly after the transaction's snapshot (CR at \
                 transaction-snapshot levels); both statement snapshots \
                 are individually consistent, so RC accepts"
            }
            AnomalyClass::ReadSkew => {
                "the second key's read returns half of an atomic update \
                 committed certainly after the snapshot: CR at \
                 transaction-snapshot levels, consistent per-statement"
            }
            AnomalyClass::LostUpdate => {
                "the second updater writes a key whose current version \
                 committed certainly after the updater's snapshot, exactly \
                 what first-updater-wins forbids; RC has no FUW check"
            }
            AnomalyClass::WriteSkew => {
                "each transaction reads what the other writes with no \
                 shared write key: every snapshot read is consistent and \
                 FUW sees no conflicting install, but the certifier's \
                 rw-antidependency cycle check fails at SR"
            }
            AnomalyClass::LongFork => {
                "one observer sees the two independent commits in one \
                 order, the other in the opposite order; the late read \
                 returns a version committed certainly after the reader's \
                 transaction snapshot (CR), while each statement snapshot \
                 is consistent, so RC accepts"
            }
        }
    }
}

/// Well-formedness corruptions, one per preflight diagnostic family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// H001: a trace whose interval has `ts_bef > ts_aft`.
    InvertedInterval,
    /// H002: one client's `ts_bef` stream going backwards.
    NonMonotonicClient,
    /// H003: a transaction committing twice.
    DuplicateTerminal,
    /// H004: an operation after the transaction's terminal.
    OpAfterTerminal,
    /// H005: the same (key, value) pair installed by two transactions.
    DuplicateInstall,
    /// H006: a committed read of a value no one ever wrote.
    GarbageRead,
}

impl CorruptionKind {
    /// Every corruption kind, in display order.
    pub const ALL: [CorruptionKind; 6] = [
        CorruptionKind::InvertedInterval,
        CorruptionKind::NonMonotonicClient,
        CorruptionKind::DuplicateTerminal,
        CorruptionKind::OpAfterTerminal,
        CorruptionKind::DuplicateInstall,
        CorruptionKind::GarbageRead,
    ];

    /// Stable kebab-case name: the corpus file stem.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::InvertedInterval => "corrupt-inverted-interval",
            CorruptionKind::NonMonotonicClient => "corrupt-nonmonotonic-client",
            CorruptionKind::DuplicateTerminal => "corrupt-duplicate-terminal",
            CorruptionKind::OpAfterTerminal => "corrupt-op-after-terminal",
            CorruptionKind::DuplicateInstall => "corrupt-duplicate-install",
            CorruptionKind::GarbageRead => "corrupt-garbage-read",
        }
    }

    /// The preflight diagnostic the corruption must raise.
    #[must_use]
    pub fn diag_code(self) -> DiagCode {
        match self {
            CorruptionKind::InvertedInterval => DiagCode::H001,
            CorruptionKind::NonMonotonicClient => DiagCode::H002,
            CorruptionKind::DuplicateTerminal => DiagCode::H003,
            CorruptionKind::OpAfterTerminal => DiagCode::H004,
            CorruptionKind::DuplicateInstall => DiagCode::H005,
            CorruptionKind::GarbageRead => DiagCode::H006,
        }
    }

    /// The severity the diagnostic is raised at.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            CorruptionKind::DuplicateInstall => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// The proof obligation a mutation carries: what the mutated capture must
/// provably trip, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Proof {
    /// The gadget must be rejected by `mechanism` exactly at the levels
    /// where `rejected_at` (RC, RR, SI, SR order) is `true`.
    Anomaly {
        /// The mechanism the gadget is built to trip.
        mechanism: Mechanism,
        /// Expected reject verdicts in RC, RR, SI, SR order.
        rejected_at: Vec<bool>,
        /// Prose argument for the obligation.
        rationale: &'static str,
    },
    /// The gadget must raise preflight diagnostic `code` at `severity`.
    Corruption {
        /// The diagnostic code the corruption must raise.
        code: DiagCode,
        /// The severity it is raised at.
        severity: Severity,
    },
}

/// A named, composable, proof-carrying rewrite of a clean capture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mutation {
    /// Stable name: the corpus file stem and report row label.
    pub name: String,
    /// What the mutated capture must trip.
    pub proof: Proof,
    kind: MutationTarget,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum MutationTarget {
    Anomaly(AnomalyClass),
    Corruption(CorruptionKind),
}

impl Mutation {
    /// The mutation exhibiting one anomaly class.
    #[must_use]
    pub fn anomaly(class: AnomalyClass) -> Mutation {
        Mutation {
            name: class.name().to_string(),
            proof: Proof::Anomaly {
                mechanism: class.mechanism(),
                rejected_at: class.rejected_at().to_vec(),
                rationale: class.rationale(),
            },
            kind: MutationTarget::Anomaly(class),
        }
    }

    /// The mutation exhibiting one well-formedness corruption.
    #[must_use]
    pub fn corruption(kind: CorruptionKind) -> Mutation {
        Mutation {
            name: kind.name().to_string(),
            proof: Proof::Corruption {
                code: kind.diag_code(),
                severity: kind.severity(),
            },
            kind: MutationTarget::Corruption(kind),
        }
    }

    /// Applies the mutation, returning a new capture with the gadget
    /// appended after the input's last timestamp.
    #[must_use]
    pub fn apply(&self, cap: &Capture) -> Capture {
        let mut g = Gadget::new(cap);
        match self.kind {
            MutationTarget::Anomaly(class) => inject_anomaly(&mut g, class),
            MutationTarget::Corruption(kind) => inject_corruption(&mut g, kind),
        }
        g.finish()
    }
}

/// Fresh-resource allocator + trace appender over a working capture copy.
struct Gadget {
    cap: Capture,
    gadget: Vec<Trace>,
    base: u64,
    next_key: u64,
    next_value: u64,
    next_txn: u64,
    next_client: u32,
    /// Keep gadget traces in emission order instead of re-sorting by
    /// `ts_bef`. Needed by corruptions that model a client whose clock
    /// jumped backwards: a global sort would normalise the disorder away.
    preserve_order: bool,
}

/// A gadget-local transaction handle: a fresh txn id on a fresh client.
#[derive(Clone, Copy)]
struct GTxn {
    txn: TxnId,
    client: ClientId,
}

impl Gadget {
    fn new(cap: &Capture) -> Gadget {
        let cap = cap.clone();
        Gadget {
            base: cap.max_ts() + GADGET_GAP,
            next_key: cap.max_key() + 1,
            next_value: cap.max_value() + 1,
            next_txn: cap.max_txn() + 1,
            next_client: cap.max_client() + 1,
            gadget: Vec::new(),
            preserve_order: false,
            cap,
        }
    }

    /// A fresh key preloaded with a fresh value (so reads of its initial
    /// state are justified).
    fn preloaded_key(&mut self) -> (Key, Value) {
        let k = Key(self.next_key);
        self.next_key += 1;
        let v = self.fresh_value();
        self.cap.header.preload.push((k, v));
        (k, v)
    }

    /// A fresh key with no preloaded row (for phantom inserts).
    fn bare_key(&mut self) -> Key {
        let k = Key(self.next_key);
        self.next_key += 1;
        k
    }

    fn fresh_value(&mut self) -> Value {
        let v = Value(self.next_value);
        self.next_value += 1;
        v
    }

    fn txn(&mut self) -> GTxn {
        let t = GTxn {
            txn: TxnId(self.next_txn),
            client: ClientId(self.next_client),
        };
        self.next_txn += 1;
        self.next_client += 1;
        t
    }

    fn at(&self, lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(self.base + lo), Timestamp(self.base + hi))
    }

    fn push(&mut self, t: GTxn, lo: u64, hi: u64, op: OpKind) {
        self.gadget
            .push(Trace::new(self.at(lo, hi), t.client, t.txn, op));
    }

    fn read(&mut self, t: GTxn, lo: u64, hi: u64, set: Vec<(Key, Value)>) {
        self.push(t, lo, hi, OpKind::Read(set));
    }

    fn write(&mut self, t: GTxn, lo: u64, hi: u64, set: Vec<(Key, Value)>) {
        self.push(t, lo, hi, OpKind::Write(set));
    }

    fn commit(&mut self, t: GTxn, lo: u64, hi: u64) {
        self.push(t, lo, hi, OpKind::Commit);
    }

    fn abort(&mut self, t: GTxn, lo: u64, hi: u64) {
        self.push(t, lo, hi, OpKind::Abort);
    }

    fn finish(mut self) -> Capture {
        // Gadget traces all start after the clean prefix's last ts_aft,
        // so sorting the block and appending preserves global dispatch
        // order (ts_bef-sorted), which the verifier pipeline expects.
        if !self.preserve_order {
            self.gadget.sort_by_key(|t| (t.ts_bef(), t.ts_aft(), t.txn));
        }
        self.cap.traces.append(&mut self.gadget);
        self.cap
    }
}

fn inject_anomaly(g: &mut Gadget, class: AnomalyClass) {
    match class {
        AnomalyClass::DirtyWrite => {
            let (x, _) = g.preloaded_key();
            let (a, b) = (g.fresh_value(), g.fresh_value());
            let (t1, t2) = (g.txn(), g.txn());
            g.write(t1, 0, 10, vec![(x, a)]);
            g.write(t2, 1, 9, vec![(x, b)]);
            g.commit(t1, 11, 20);
            g.commit(t2, 12, 21);
        }
        AnomalyClass::DirtyRead => {
            let (x, _) = g.preloaded_key();
            let (a, b) = (g.fresh_value(), g.fresh_value());
            let (t1, t2) = (g.txn(), g.txn());
            g.write(t1, 10, 12, vec![(x, a)]);
            g.read(t2, 20, 22, vec![(x, a)]);
            g.commit(t2, 23, 25);
            g.write(t1, 26, 28, vec![(x, b)]);
            g.commit(t1, 30, 32);
        }
        AnomalyClass::AbortedRead => {
            let (x, _) = g.preloaded_key();
            let a = g.fresh_value();
            let (t1, t2) = (g.txn(), g.txn());
            g.write(t1, 10, 12, vec![(x, a)]);
            g.abort(t1, 14, 16);
            g.read(t2, 20, 22, vec![(x, a)]);
            g.commit(t2, 24, 26);
        }
        AnomalyClass::FuzzyRead => {
            let (x, px) = g.preloaded_key();
            let a = g.fresh_value();
            let (t1, t2) = (g.txn(), g.txn());
            g.read(t2, 10, 12, vec![(x, px)]);
            g.write(t1, 14, 16, vec![(x, a)]);
            g.commit(t1, 18, 20);
            g.read(t2, 24, 26, vec![(x, a)]);
            g.commit(t2, 28, 30);
        }
        AnomalyClass::Phantom => {
            let (k1, pv1) = g.preloaded_key();
            let k2 = g.bare_key();
            let a = g.fresh_value();
            let (t1, t2) = (g.txn(), g.txn());
            g.read(t1, 10, 12, vec![(k1, pv1)]);
            g.write(t2, 14, 16, vec![(k2, a)]);
            g.commit(t2, 18, 20);
            g.read(t1, 24, 26, vec![(k1, pv1), (k2, a)]);
            g.commit(t1, 28, 30);
        }
        AnomalyClass::ReadSkew => {
            let (x, px) = g.preloaded_key();
            let (y, _) = g.preloaded_key();
            let (a, b) = (g.fresh_value(), g.fresh_value());
            let (t1, t2) = (g.txn(), g.txn());
            g.read(t1, 10, 12, vec![(x, px)]);
            g.write(t2, 14, 16, vec![(x, a), (y, b)]);
            g.commit(t2, 18, 20);
            g.read(t1, 24, 26, vec![(y, b)]);
            g.commit(t1, 28, 30);
        }
        AnomalyClass::LostUpdate => {
            let (x, px) = g.preloaded_key();
            let (a, b) = (g.fresh_value(), g.fresh_value());
            let (t1, t2) = (g.txn(), g.txn());
            g.read(t1, 0, 2, vec![(x, px)]);
            g.read(t2, 1, 3, vec![(x, px)]);
            g.write(t1, 10, 12, vec![(x, a)]);
            g.commit(t1, 20, 22);
            g.write(t2, 30, 32, vec![(x, b)]);
            g.commit(t2, 40, 42);
        }
        AnomalyClass::WriteSkew => {
            let (x, px) = g.preloaded_key();
            let (y, py) = g.preloaded_key();
            let (a, b) = (g.fresh_value(), g.fresh_value());
            let (t1, t2) = (g.txn(), g.txn());
            g.read(t1, 10, 12, vec![(x, px)]);
            g.read(t2, 11, 13, vec![(y, py)]);
            g.write(t1, 20, 22, vec![(y, a)]);
            g.write(t2, 21, 23, vec![(x, b)]);
            g.commit(t1, 30, 32);
            g.commit(t2, 31, 33);
        }
        AnomalyClass::LongFork => {
            let (x, px) = g.preloaded_key();
            let (y, py) = g.preloaded_key();
            let (a, b) = (g.fresh_value(), g.fresh_value());
            let (t1, t2, t3, t4) = (g.txn(), g.txn(), g.txn(), g.txn());
            g.read(t4, 3, 4, vec![(x, px)]);
            g.write(t1, 5, 7, vec![(x, a)]);
            g.commit(t1, 10, 12);
            g.read(t3, 20, 22, vec![(y, py)]);
            g.write(t2, 25, 27, vec![(y, b)]);
            g.commit(t2, 30, 32);
            g.read(t3, 40, 42, vec![(x, a)]);
            g.commit(t3, 44, 46);
            g.read(t4, 50, 52, vec![(y, b)]);
            g.commit(t4, 54, 56);
        }
    }
}

fn inject_corruption(g: &mut Gadget, kind: CorruptionKind) {
    match kind {
        CorruptionKind::InvertedInterval => {
            let (x, _) = g.preloaded_key();
            let a = g.fresh_value();
            let t = g.txn();
            // Interval::new would normalise, so build the inversion raw.
            g.gadget.push(Trace::new(
                Interval {
                    lo: Timestamp(g.base + 20),
                    hi: Timestamp(g.base + 10),
                },
                t.client,
                t.txn,
                OpKind::Write(vec![(x, a)]),
            ));
            g.commit(t, 30, 32);
        }
        CorruptionKind::NonMonotonicClient => {
            let (x, _) = g.preloaded_key();
            let (y, _) = g.preloaded_key();
            let (a, b) = (g.fresh_value(), g.fresh_value());
            let t = g.txn();
            // A client clock that jumped backwards: the second op was
            // issued later but carries an earlier ts_bef. The disorder
            // only exists in stream order, so keep emission order.
            g.preserve_order = true;
            g.write(t, 20, 22, vec![(x, a)]);
            g.write(t, 10, 12, vec![(y, b)]);
            g.commit(t, 30, 32);
        }
        CorruptionKind::DuplicateTerminal => {
            let (x, _) = g.preloaded_key();
            let a = g.fresh_value();
            let t = g.txn();
            g.write(t, 10, 12, vec![(x, a)]);
            g.commit(t, 20, 22);
            g.commit(t, 24, 26);
        }
        CorruptionKind::OpAfterTerminal => {
            let (x, px) = g.preloaded_key();
            let a = g.fresh_value();
            let t = g.txn();
            g.write(t, 10, 12, vec![(x, a)]);
            g.commit(t, 20, 22);
            g.read(t, 24, 26, vec![(x, px)]);
        }
        CorruptionKind::DuplicateInstall => {
            let (x, _) = g.preloaded_key();
            let a = g.fresh_value();
            let (t1, t2) = (g.txn(), g.txn());
            g.write(t1, 10, 12, vec![(x, a)]);
            g.commit(t1, 14, 16);
            g.write(t2, 20, 22, vec![(x, a)]);
            g.commit(t2, 24, 26);
        }
        CorruptionKind::GarbageRead => {
            let (x, _) = g.preloaded_key();
            let phantom_value = g.fresh_value();
            let t = g.txn();
            g.read(t, 10, 12, vec![(x, phantom_value)]);
            g.commit(t, 14, 16);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_clean_capture, CleanRunSpec};
    use leopard_core::{PreflightAnalyzer, PreflightConfig};

    fn base() -> Capture {
        generate_clean_capture(&CleanRunSpec::corpus_default()).unwrap()
    }

    #[test]
    fn gadgets_use_only_fresh_resources() {
        let cap = base();
        for class in AnomalyClass::ALL {
            let mutated = Mutation::anomaly(class).apply(&cap);
            assert!(mutated.traces.len() > cap.traces.len(), "{class:?}");
            // The clean prefix is untouched.
            assert_eq!(&mutated.traces[..cap.traces.len()], &cap.traces[..]);
            // Gadget traces start after the prefix's last timestamp.
            let cutoff = cap.max_ts();
            for t in &mutated.traces[cap.traces.len()..] {
                assert!(t.ts_bef().0 > cutoff, "{class:?}: {t}");
            }
        }
    }

    #[test]
    fn anomaly_gadgets_pass_preflight_cleanly() {
        let cap = base();
        for class in AnomalyClass::ALL {
            let mutated = Mutation::anomaly(class).apply(&cap);
            let report = PreflightAnalyzer::analyze(
                PreflightConfig::default(),
                mutated.header.preload.iter().copied(),
                mutated.traces.iter(),
            );
            assert!(!report.has_errors(), "{class:?}: {report}");
        }
    }

    #[test]
    fn corruption_gadgets_raise_their_diagnostic() {
        let cap = base();
        for kind in CorruptionKind::ALL {
            let mutated = Mutation::corruption(kind).apply(&cap);
            let report = PreflightAnalyzer::analyze(
                PreflightConfig::default(),
                mutated.header.preload.iter().copied(),
                mutated.traces.iter(),
            );
            assert!(
                report.with_code(kind.diag_code()).next().is_some(),
                "{kind:?} did not raise {}: {report}",
                kind.diag_code()
            );
        }
    }

    #[test]
    fn mutations_compose() {
        let cap = base();
        let once = Mutation::anomaly(AnomalyClass::DirtyWrite).apply(&cap);
        let twice = Mutation::anomaly(AnomalyClass::WriteSkew).apply(&once);
        assert_eq!(
            twice.traces.len(),
            cap.traces.len() + 4 + 6,
            "both gadgets present"
        );
        assert!(twice.max_ts() > once.max_ts());
    }

    #[test]
    fn application_is_deterministic() {
        let cap = base();
        for class in AnomalyClass::ALL {
            let m = Mutation::anomaly(class);
            assert_eq!(m.apply(&cap).to_jsonl(), m.apply(&cap).to_jsonl());
        }
    }
}
