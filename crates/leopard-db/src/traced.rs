//! The client-side tracer: wraps a [`Session`](crate::engine::Session) and
//! records an interval-based trace around every operation (§IV-A).
//!
//! This is the entire "instrumentation" Leopard needs — two clock reads
//! per operation plus the operation's own arguments and results. Nothing
//! inside the engine is touched, and the application logic (the workload)
//! is unchanged.

use crate::clock::Clock;
use crate::engine::Session;
use crate::txn::AbortReason;
use leopard_core::{ClientId, Interval, Key, OpKind, Trace, TxnId, Value};

/// Where traces go. Implemented for the pipeline's client handle, for
/// plain vectors (offline collection), and for closures.
pub trait TraceSink {
    /// Records one trace.
    fn record(&mut self, trace: Trace);
}

impl TraceSink for Vec<Trace> {
    fn record(&mut self, trace: Trace) {
        self.push(trace);
    }
}

impl TraceSink for leopard_core::ClientHandle {
    fn record(&mut self, trace: Trace) {
        leopard_core::ClientHandle::record(self, trace);
    }
}

impl<F: FnMut(Trace)> TraceSink for F {
    fn record(&mut self, trace: Trace) {
        self(trace);
    }
}

/// A traced client connection.
#[derive(Debug)]
pub struct TracedSession<C, S> {
    session: Session,
    clock: C,
    client: ClientId,
    sink: S,
    current: Option<TxnId>,
}

impl<C: Clock, S: TraceSink> TracedSession<C, S> {
    /// Wraps `session` for `client`, stamping with `clock` and emitting
    /// into `sink`.
    pub fn new(session: Session, clock: C, client: ClientId, sink: S) -> Self {
        TracedSession {
            session,
            clock,
            client,
            sink,
            current: None,
        }
    }

    /// The trace sink (e.g. to flush or inspect).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the session, returning its sink (any running transaction
    /// is rolled back untraced by the engine's drop guard).
    pub fn into_parts(self) -> S {
        self.sink
    }

    /// Begins a transaction. `BEGIN` itself is not traced (the paper
    /// traces reads, writes and terminals only).
    pub fn begin(&mut self) -> TxnId {
        let id = self.session.begin();
        self.current = Some(id);
        id
    }

    /// Traced single read. On abort, emits the abort trace and returns
    /// the reason.
    pub fn read(&mut self, key: Key) -> Result<Option<Value>, AbortReason> {
        let bef = self.clock.now();
        let result = self.session.read(key);
        let aft = self.clock.now();
        let op = result
            .as_ref()
            .ok()
            .and_then(|v| v.map(|v| OpKind::Read(vec![(key, v)])));
        self.finish_op(bef, aft, result.as_ref().err().copied(), op);
        result
    }

    /// Traced range read.
    pub fn read_range(
        &mut self,
        start: Key,
        limit: usize,
    ) -> Result<Vec<(Key, Value)>, AbortReason> {
        let bef = self.clock.now();
        let result = self.session.read_range(start, limit);
        let aft = self.clock.now();
        let op = result
            .as_ref()
            .ok()
            .filter(|rows| !rows.is_empty())
            .map(|rows| OpKind::Read(rows.clone()));
        self.finish_op(bef, aft, result.as_ref().err().copied(), op);
        result
    }

    /// Traced locking read (`SELECT ... FOR UPDATE`).
    pub fn read_for_update(&mut self, key: Key) -> Result<Option<Value>, AbortReason> {
        let bef = self.clock.now();
        let result = self.session.read_for_update(key);
        let aft = self.clock.now();
        let op = result
            .as_ref()
            .ok()
            .and_then(|v| v.map(|v| OpKind::LockedRead(vec![(key, v)])));
        self.finish_op(bef, aft, result.as_ref().err().copied(), op);
        result
    }

    /// Traced write.
    pub fn write(&mut self, key: Key, value: Value) -> Result<(), AbortReason> {
        let bef = self.clock.now();
        let result = self.session.write(key, value);
        let aft = self.clock.now();
        let op = result.is_ok().then(|| OpKind::Write(vec![(key, value)]));
        self.finish_op(bef, aft, result.err(), op);
        result
    }

    /// Traced multi-record write (one operation installing several
    /// versions, like a multi-row `UPDATE`).
    pub fn write_many(&mut self, set: &[(Key, Value)]) -> Result<(), AbortReason> {
        let bef = self.clock.now();
        let mut failed = None;
        let mut written = Vec::with_capacity(set.len());
        for &(k, v) in set {
            match self.session.write(k, v) {
                Ok(()) => written.push((k, v)),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let aft = self.clock.now();
        let op = (failed.is_none() && !written.is_empty()).then_some(OpKind::Write(written));
        self.finish_op(bef, aft, failed, op);
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Traced commit. On certifier rejection the transaction aborts and an
    /// abort trace is emitted instead.
    pub fn commit(&mut self) -> Result<(), AbortReason> {
        let Some(txn) = self.current else {
            return Err(AbortReason::NotActive);
        };
        let bef = self.clock.now();
        let result = self.session.commit();
        let aft = self.clock.now();
        let kind = if result.is_ok() {
            OpKind::Commit
        } else {
            OpKind::Abort
        };
        self.sink
            .record(Trace::new(Interval::new(bef, aft), self.client, txn, kind));
        self.current = None;
        result
    }

    /// Traced rollback.
    pub fn rollback(&mut self) {
        let Some(txn) = self.current else { return };
        let bef = self.clock.now();
        self.session.rollback();
        let aft = self.clock.now();
        self.sink.record(Trace::new(
            Interval::new(bef, aft),
            self.client,
            txn,
            OpKind::Abort,
        ));
        self.current = None;
    }

    /// Emits the op trace (if the op did observable work) and, when the op
    /// failed, the abort trace the engine's auto-abort implies.
    fn finish_op(
        &mut self,
        bef: leopard_core::Timestamp,
        aft: leopard_core::Timestamp,
        error: Option<AbortReason>,
        op: Option<OpKind>,
    ) {
        let Some(txn) = self.current else { return };
        let interval = Interval::new(bef, aft);
        if let Some(op) = op {
            self.sink.record(Trace::new(interval, self.client, txn, op));
        }
        if error.is_some() {
            // The engine auto-aborted within the same call.
            self.sink
                .record(Trace::new(interval, self.client, txn, OpKind::Abort));
            self.current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::engine::{Database, DbConfig};
    use leopard_core::IsolationLevel;
    use std::sync::Arc;

    fn traced(
        db: &Arc<Database>,
        clock: Arc<SimClock>,
        client: u32,
    ) -> TracedSession<Arc<SimClock>, Vec<Trace>> {
        TracedSession::new(db.session(), clock, ClientId(client), Vec::new())
    }

    #[test]
    fn traces_cover_the_whole_transaction() {
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        db.preload(Key(1), Value(0));
        let clock = Arc::new(SimClock::new(1));
        let mut s = traced(&db, clock, 0);
        s.begin();
        assert_eq!(s.read(Key(1)).unwrap(), Some(Value(0)));
        s.write(Key(1), Value(9)).unwrap();
        s.commit().unwrap();
        let traces = s.sink_mut().clone();
        assert_eq!(traces.len(), 3);
        assert!(matches!(traces[0].op, OpKind::Read(_)));
        assert!(matches!(traces[1].op, OpKind::Write(_)));
        assert_eq!(traces[2].op, OpKind::Commit);
        // Monotone non-decreasing ts_bef, intervals well-formed.
        assert!(traces.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
        assert!(traces.iter().all(|t| t.ts_bef() <= t.ts_aft()));
    }

    #[test]
    fn failed_op_emits_abort_trace() {
        let db = Database::new(DbConfig {
            isolation: IsolationLevel::Serializable,
            lock_wait: std::time::Duration::from_millis(1),
            ..DbConfig::default()
        });
        db.preload(Key(1), Value(0));
        let clock = Arc::new(SimClock::new(1));
        let mut a = traced(&db, clock.clone(), 0);
        let mut b = traced(&db, clock, 1);
        a.begin();
        a.write(Key(1), Value(1)).unwrap();
        b.begin();
        assert!(b.write(Key(1), Value(2)).is_err());
        let traces = b.sink_mut().clone();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].op, OpKind::Abort);
        a.rollback();
    }

    #[test]
    fn rollback_emits_abort() {
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        db.preload(Key(1), Value(0));
        let clock = Arc::new(SimClock::new(1));
        let mut s = traced(&db, clock, 0);
        s.begin();
        s.write(Key(1), Value(5)).unwrap();
        s.rollback();
        let traces = s.sink_mut().clone();
        assert_eq!(traces.last().unwrap().op, OpKind::Abort);
    }

    #[test]
    fn write_many_emits_single_trace() {
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        for k in 0..4u64 {
            db.preload(Key(k), Value(0));
        }
        let clock = Arc::new(SimClock::new(1));
        let mut s = traced(&db, clock, 0);
        s.begin();
        s.write_many(&[(Key(1), Value(5)), (Key(2), Value(6))])
            .unwrap();
        s.commit().unwrap();
        let traces = s.sink_mut().clone();
        assert_eq!(traces.len(), 2);
        match &traces[0].op {
            OpKind::Write(set) => assert_eq!(set.len(), 2),
            other => panic!("expected write, got {other:?}"),
        }
    }

    #[test]
    fn locking_read_traced_as_locked_read() {
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        db.preload(Key(1), Value(0));
        let clock = Arc::new(SimClock::new(1));
        let mut s = traced(&db, clock, 0);
        s.begin();
        assert_eq!(s.read_for_update(Key(1)).unwrap(), Some(Value(0)));
        s.commit().unwrap();
        let traces = s.sink_mut().clone();
        assert!(matches!(traces[0].op, OpKind::LockedRead(_)));
    }
}
