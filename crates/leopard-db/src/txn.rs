//! Transaction metadata shared between sessions and the engine.

use leopard_core::TxnId;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Running.
    Active,
    /// Commit succeeded.
    Committed,
    /// Rolled back (voluntarily or by the engine).
    Aborted,
}

/// Why the engine aborted a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Could not acquire a record lock within the configured wait budget
    /// (deadlock avoidance by timeout).
    LockTimeout,
    /// A concurrent transaction updated the record first and committed:
    /// first-updater-wins.
    FirstUpdaterWins,
    /// The serialization certifier found a dangerous structure involving
    /// this transaction (SSI).
    Certifier,
    /// The client called an operation on a transaction that was already
    /// terminated.
    NotActive,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::LockTimeout => "lock wait timeout",
            AbortReason::FirstUpdaterWins => "concurrent update (first updater wins)",
            AbortReason::Certifier => "serialization failure (certifier)",
            AbortReason::NotActive => "transaction is not active",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AbortReason {}

/// Sentinel for "the transaction has not taken its snapshot yet".
pub const SNAPSHOT_UNSET: u64 = u64::MAX;

/// Shared, atomically updated metadata of one transaction. Referenced by
/// the session that runs it and by per-record reader lists (for SSI).
#[derive(Debug)]
pub struct TxnMeta {
    /// The transaction id the engine assigned.
    pub id: TxnId,
    /// Commit-sequence snapshot the transaction reads from
    /// ([`SNAPSHOT_UNSET`] until the first operation fixes it).
    pub snapshot_seq: AtomicU64,
    state: AtomicU8,
    /// Commit sequence assigned at commit (0 while not committed).
    pub commit_seq: AtomicU64,
    /// Some concurrent transaction has an rw antidependency on this one
    /// (this transaction wrote what that one had read).
    pub in_rw: AtomicBool,
    /// This transaction has an rw antidependency on some concurrent one
    /// (this transaction read what that one then wrote).
    pub out_rw: AtomicBool,
}

impl TxnMeta {
    /// Fresh active transaction metadata.
    #[must_use]
    pub fn new(id: TxnId) -> TxnMeta {
        TxnMeta {
            id,
            snapshot_seq: AtomicU64::new(SNAPSHOT_UNSET),
            state: AtomicU8::new(TxnState::Active as u8),
            commit_seq: AtomicU64::new(0),
            in_rw: AtomicBool::new(false),
            out_rw: AtomicBool::new(false),
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> TxnState {
        match self.state.load(Ordering::Acquire) {
            0 => TxnState::Active,
            1 => TxnState::Committed,
            _ => TxnState::Aborted,
        }
    }

    /// Transitions to a terminal state.
    pub fn set_state(&self, s: TxnState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// `true` while running.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.state() == TxnState::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_meta_is_active() {
        let m = TxnMeta::new(TxnId(1));
        assert!(m.is_active());
        assert_eq!(m.state(), TxnState::Active);
        assert_eq!(m.commit_seq.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn state_transitions() {
        let m = TxnMeta::new(TxnId(1));
        m.set_state(TxnState::Committed);
        assert_eq!(m.state(), TxnState::Committed);
        assert!(!m.is_active());
        m.set_state(TxnState::Aborted);
        assert_eq!(m.state(), TxnState::Aborted);
    }

    #[test]
    fn abort_reason_display() {
        assert!(AbortReason::LockTimeout.to_string().contains("timeout"));
        assert!(AbortReason::Certifier.to_string().contains("serialization"));
    }
}
