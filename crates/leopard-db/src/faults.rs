//! Fault injection: switching off one mechanism at a precise point.
//!
//! A real isolation bug *is* a mechanism violation somewhere inside the
//! engine; injecting the violation at the mechanism boundary produces the
//! identical client-visible symptom. Each fault below reproduces the class
//! of one of the paper's §VI-F bug cases (or a classic textbook anomaly),
//! so the test suite can demonstrate that Leopard flags them while a pure
//! dependency-cycle checker does not.

use leopard_core::lockwitness::TrackedMutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// The mechanism violations the engine can be told to commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A write skips lock acquisition (ME violation; generalises §VI-F
    /// Bug 1, where TiDB forgot the lock for a no-op update).
    SkipLock,
    /// A write whose new value equals the current committed value skips
    /// lock acquisition — §VI-F Bug 1 verbatim.
    FirstWriteNoLock,
    /// A read is served from a snapshot `k` commits behind the correct
    /// one (CR violation; §VI-F Bug 2's non-linearizable read).
    StaleSnapshot,
    /// A read sees uncommitted versions of other transactions (dirty
    /// read; CR violation).
    DirtyRead,
    /// The first-updater-wins check is skipped: concurrent updates both
    /// commit (lost update; FUW violation).
    AllowLostUpdate,
    /// The serialization certifier is skipped: dangerous structures
    /// commit (write skew; SC violation).
    SkipCertifier,
    /// A range read returns, in addition to the correct row, a stale
    /// overwritten version of the same record — §VI-F Bug 4's
    /// two-versions-for-one-key query.
    PhantomExtraVersion,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::SkipLock,
        FaultKind::FirstWriteNoLock,
        FaultKind::StaleSnapshot,
        FaultKind::DirtyRead,
        FaultKind::AllowLostUpdate,
        FaultKind::SkipCertifier,
        FaultKind::PhantomExtraVersion,
    ];

    /// The verification mechanism this fault violates — the one Leopard
    /// must name when it flags a capture recorded under the fault.
    #[must_use]
    pub fn mechanism(self) -> leopard_core::Mechanism {
        use leopard_core::Mechanism;
        match self {
            FaultKind::SkipLock | FaultKind::FirstWriteNoLock => Mechanism::MutualExclusion,
            FaultKind::StaleSnapshot | FaultKind::DirtyRead | FaultKind::PhantomExtraVersion => {
                Mechanism::ConsistentRead
            }
            FaultKind::AllowLostUpdate => Mechanism::FirstUpdaterWins,
            FaultKind::SkipCertifier => Mechanism::SerializationCertifier,
        }
    }
}

/// When a fault fires.
#[derive(Debug)]
enum Trigger {
    /// On every opportunity.
    Always,
    /// With probability `p` per opportunity (seeded, reproducible).
    Probability {
        /// Per-opportunity firing probability, clamped to `[0, 1]`.
        p: f64,
        /// Seeded generator; locked per draw so a plan can be shared
        /// across engine sessions.
        rng: TrackedMutex<SmallRng>,
    },
    /// Exactly on the `n`-th opportunity (1-based), once.
    Nth(u64),
}

/// One armed fault: a kind, its trigger, and its counters.
#[derive(Debug)]
struct FaultEntry {
    kind: FaultKind,
    trigger: Trigger,
    opportunities: AtomicU64,
    fired: AtomicU64,
}

impl FaultEntry {
    fn new(kind: FaultKind, trigger: Trigger) -> FaultEntry {
        FaultEntry {
            kind,
            trigger,
            opportunities: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        }
    }

    fn fires(&self) -> bool {
        // relaxed: opportunity counting needs unique values (RMW), not an
        // order against other memory; Nth-triggering tests are single-threaded.
        let n = self.opportunities.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match &self.trigger {
            Trigger::Always => true,
            Trigger::Probability { p, rng } => rng.lock().random_bool(*p),
            Trigger::Nth(target) => n == *target,
        };
        if fire {
            self.fired.fetch_add(1, Ordering::Relaxed); // relaxed: statistic only
        }
        fire
    }
}

/// A fault plan: any number of concurrently armed fault kinds, each with
/// its own trigger and counters. The single-fault constructors build
/// one-entry plans; `and_*` builders compose compound failure scenarios
/// (e.g. a stale-snapshot read racing a skipped certifier).
#[derive(Debug)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// No faults: the engine behaves correctly.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan {
            entries: Vec::new(),
        }
    }

    /// Fault firing at every opportunity.
    #[must_use]
    pub fn always(kind: FaultKind) -> FaultPlan {
        FaultPlan::none().and_always(kind)
    }

    /// Fault firing with probability `p` per opportunity.
    #[must_use]
    pub fn with_probability(kind: FaultKind, p: f64, seed: u64) -> FaultPlan {
        FaultPlan::none().and_with_probability(kind, p, seed)
    }

    /// Fault firing exactly once, on the `n`-th opportunity (1-based).
    #[must_use]
    pub fn on_nth(kind: FaultKind, n: u64) -> FaultPlan {
        FaultPlan::none().and_on_nth(kind, n)
    }

    /// Additionally arms `kind` to fire at every opportunity.
    #[must_use]
    pub fn and_always(mut self, kind: FaultKind) -> FaultPlan {
        self.entries.push(FaultEntry::new(kind, Trigger::Always));
        self
    }

    /// Additionally arms `kind` to fire with probability `p` per
    /// opportunity (seeded, reproducible).
    #[must_use]
    pub fn and_with_probability(mut self, kind: FaultKind, p: f64, seed: u64) -> FaultPlan {
        self.entries.push(FaultEntry::new(
            kind,
            Trigger::Probability {
                p: p.clamp(0.0, 1.0),
                rng: TrackedMutex::new("Trigger.rng", SmallRng::seed_from_u64(seed)),
            },
        ));
        self
    }

    /// Additionally arms `kind` to fire exactly once, on its `n`-th
    /// opportunity (1-based).
    #[must_use]
    pub fn and_on_nth(mut self, kind: FaultKind, n: u64) -> FaultPlan {
        self.entries
            .push(FaultEntry::new(kind, Trigger::Nth(n.max(1))));
        self
    }

    /// Called by the engine at an opportunity for `kind`; `true` means
    /// "misbehave now". With several entries armed for the same kind, the
    /// fault fires if any of them triggers (every entry's opportunity
    /// counter still advances).
    pub fn fires(&self, kind: FaultKind) -> bool {
        let mut fire = false;
        for entry in self.entries.iter().filter(|e| e.kind == kind) {
            fire |= entry.fires();
        }
        fire
    }

    /// How many times any fault actually fired.
    #[must_use]
    pub fn fired_count(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.fired.load(Ordering::Relaxed)) // relaxed: statistic read after the run's threads joined
            .sum()
    }

    /// How many times the given kind actually fired.
    #[must_use]
    pub fn fired_count_of(&self, kind: FaultKind) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.fired.load(Ordering::Relaxed)) // relaxed: statistic read after the run's threads joined
            .sum()
    }

    /// The first configured fault kind, if any (the plan's "primary"
    /// fault, for single-fault callers).
    #[must_use]
    pub fn kind(&self) -> Option<FaultKind> {
        self.entries.first().map(|e| e.kind)
    }

    /// Every armed fault kind, in arming order (may repeat a kind).
    #[must_use]
    pub fn kinds(&self) -> Vec<FaultKind> {
        self.entries.iter().map(|e| e.kind).collect()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let p = FaultPlan::none();
        assert!(!p.fires(FaultKind::SkipLock));
        assert_eq!(p.fired_count(), 0);
    }

    #[test]
    fn always_fires_only_for_its_kind() {
        let p = FaultPlan::always(FaultKind::DirtyRead);
        assert!(p.fires(FaultKind::DirtyRead));
        assert!(!p.fires(FaultKind::SkipLock));
        assert_eq!(p.fired_count(), 1);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let p = FaultPlan::on_nth(FaultKind::StaleSnapshot, 3);
        assert!(!p.fires(FaultKind::StaleSnapshot));
        assert!(!p.fires(FaultKind::StaleSnapshot));
        assert!(p.fires(FaultKind::StaleSnapshot));
        assert!(!p.fires(FaultKind::StaleSnapshot));
        assert_eq!(p.fired_count(), 1);
    }

    #[test]
    fn every_fault_names_its_mechanism() {
        use leopard_core::Mechanism;
        assert_eq!(FaultKind::ALL.len(), 7);
        for kind in FaultKind::ALL {
            // The match in mechanism() is exhaustive; this pins the
            // lock-family faults to ME, which fault_detection relies on.
            match kind {
                FaultKind::SkipLock | FaultKind::FirstWriteNoLock => {
                    assert_eq!(kind.mechanism(), Mechanism::MutualExclusion);
                }
                _ => assert_ne!(kind.mechanism(), Mechanism::MutualExclusion),
            }
        }
    }

    #[test]
    fn multiple_faults_fire_independently() {
        let p = FaultPlan::always(FaultKind::DirtyRead).and_on_nth(FaultKind::SkipCertifier, 2);
        assert!(p.fires(FaultKind::DirtyRead));
        assert!(!p.fires(FaultKind::SkipCertifier));
        assert!(p.fires(FaultKind::SkipCertifier));
        assert!(!p.fires(FaultKind::StaleSnapshot));
        assert_eq!(p.fired_count_of(FaultKind::DirtyRead), 1);
        assert_eq!(p.fired_count_of(FaultKind::SkipCertifier), 1);
        assert_eq!(p.fired_count(), 2);
        assert_eq!(p.kind(), Some(FaultKind::DirtyRead));
        assert_eq!(
            p.kinds(),
            vec![FaultKind::DirtyRead, FaultKind::SkipCertifier]
        );
    }

    #[test]
    fn probability_is_reproducible() {
        let fires = |seed| {
            let p = FaultPlan::with_probability(FaultKind::SkipLock, 0.5, seed);
            (0..100)
                .map(|_| p.fires(FaultKind::SkipLock))
                .collect::<Vec<_>>()
        };
        assert_eq!(fires(42), fires(42));
        let count = fires(42).iter().filter(|f| **f).count();
        assert!(count > 20 && count < 80, "p=0.5 fired {count}/100");
    }
}
