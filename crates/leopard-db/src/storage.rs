//! The multi-version record store underneath the engine.
//!
//! One global ordered map guarded by a [`TrackedMutex`] (a
//! `parking_lot::Mutex` under the debug-build lock-order witness) keeps every
//! record's committed version chain, pending (uncommitted) writes, the
//! exclusive-lock holder, and the SIREAD-style reader list used by the
//! SSI certifier. Operations hold the mutex only for their critical
//! section; lock *waiting* happens outside it (see `engine`).

use crate::txn::TxnMeta;
use leopard_core::lockwitness::TrackedMutex;
use leopard_core::{Key, TxnId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One committed version.
#[derive(Debug, Clone)]
pub struct StoredVersion {
    /// The value.
    pub value: Value,
    /// Global commit sequence number at which it became visible
    /// (0 = preloaded initial state).
    pub commit_seq: u64,
    /// The transaction that wrote it.
    pub writer: TxnId,
    /// Writer metadata, for SSI rw-flagging on reads that happen after
    /// the writer committed (`None` for preloaded state).
    pub writer_meta: Option<Arc<TxnMeta>>,
}

/// One record's state.
#[derive(Debug, Default)]
pub struct Record {
    /// Committed versions in ascending `commit_seq` order.
    pub versions: Vec<StoredVersion>,
    /// Uncommitted writes. More than one entry can only exist when a
    /// lock-skipping fault is active.
    pub pending: Vec<(TxnId, Value)>,
    /// Exclusive-lock holder, if any.
    pub lock: Option<TxnId>,
    /// Transactions that read this record (for SSI rw-antidependency
    /// tracking). Pruned opportunistically.
    pub readers: Vec<Arc<TxnMeta>>,
}

impl Record {
    /// Latest committed version visible at `snapshot_seq`.
    #[must_use]
    pub fn visible_at(&self, snapshot_seq: u64) -> Option<&StoredVersion> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.commit_seq <= snapshot_seq)
    }

    /// Latest committed version regardless of snapshot.
    #[must_use]
    pub fn latest(&self) -> Option<&StoredVersion> {
        self.versions.last()
    }

    /// Drops versions no active snapshot can see: everything below
    /// `min_snapshot` except the newest such version.
    pub fn prune_versions(&mut self, min_snapshot: u64) {
        if self.versions.len() <= 1 {
            return;
        }
        // Index of the newest version with commit_seq <= min_snapshot.
        let Some(keep_from) = self
            .versions
            .iter()
            .rposition(|v| v.commit_seq <= min_snapshot)
        else {
            return;
        };
        if keep_from > 0 {
            self.versions.drain(..keep_from);
        }
    }

    /// Drops readers that can no longer be part of a dangerous structure:
    /// terminated with `commit_seq` at or below `min_snapshot` (any future
    /// writer's snapshot is newer, so the pair cannot be concurrent).
    pub fn prune_readers(&mut self, min_snapshot: u64) {
        self.readers.retain(|m| {
            m.is_active() || m.commit_seq.load(std::sync::atomic::Ordering::Acquire) > min_snapshot
        });
    }
}

/// The record map.
#[derive(Debug)]
pub struct Storage {
    map: TrackedMutex<BTreeMap<Key, Record>>,
}

impl Default for Storage {
    fn default() -> Self {
        Storage {
            map: TrackedMutex::new("Storage.map", BTreeMap::new()),
        }
    }
}

impl Storage {
    /// Runs `f` with exclusive access to the whole map.
    pub fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<Key, Record>) -> R) -> R {
        let mut guard = self.map.lock();
        f(&mut guard)
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// `true` when no record exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(value: u64, seq: u64) -> StoredVersion {
        StoredVersion {
            value: Value(value),
            commit_seq: seq,
            writer: TxnId(seq),
            writer_meta: None,
        }
    }

    #[test]
    fn visibility_respects_snapshot() {
        let rec = Record {
            versions: vec![v(1, 0), v(2, 5), v(3, 9)],
            ..Default::default()
        };
        assert_eq!(rec.visible_at(0).unwrap().value, Value(1));
        assert_eq!(rec.visible_at(5).unwrap().value, Value(2));
        assert_eq!(rec.visible_at(8).unwrap().value, Value(2));
        assert_eq!(rec.visible_at(100).unwrap().value, Value(3));
        assert_eq!(rec.latest().unwrap().value, Value(3));
    }

    #[test]
    fn prune_versions_keeps_pivot() {
        let mut rec = Record {
            versions: vec![v(1, 0), v(2, 5), v(3, 9), v(4, 20)],
            ..Default::default()
        };
        rec.prune_versions(10);
        let seqs: Vec<u64> = rec.versions.iter().map(|x| x.commit_seq).collect();
        // Versions 0 and 5 are unreachable (9 is the newest <= 10).
        assert_eq!(seqs, vec![9, 20]);
        // Visibility at min_snapshot still works.
        assert_eq!(rec.visible_at(10).unwrap().value, Value(3));
    }

    #[test]
    fn prune_versions_never_empties() {
        let mut rec = Record {
            versions: vec![v(1, 3)],
            ..Default::default()
        };
        rec.prune_versions(100);
        assert_eq!(rec.versions.len(), 1);
    }

    #[test]
    fn prune_readers_drops_old_terminated() {
        use crate::txn::TxnState;
        let active = Arc::new(TxnMeta::new(TxnId(1)));
        let old = Arc::new(TxnMeta::new(TxnId(2)));
        old.set_state(TxnState::Committed);
        old.commit_seq
            .store(3, std::sync::atomic::Ordering::Release);
        let recent = Arc::new(TxnMeta::new(TxnId(3)));
        recent.set_state(TxnState::Committed);
        recent
            .commit_seq
            .store(50, std::sync::atomic::Ordering::Release);
        let mut rec = Record {
            readers: vec![active.clone(), old, recent],
            ..Default::default()
        };
        rec.prune_readers(10);
        let ids: Vec<TxnId> = rec.readers.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![TxnId(1), TxnId(3)]);
    }

    #[test]
    fn storage_with_gives_exclusive_access() {
        let s = Storage::default();
        s.with(|m| {
            m.entry(Key(1)).or_default().versions.push(v(7, 1));
        });
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
