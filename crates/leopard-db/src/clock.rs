//! Clocks stamping the `ts_bef`/`ts_aft` of every traced operation.
//!
//! All clients of one database share one clock, mirroring the paper's
//! clock-synchronisation assumption (§IV-A). A configurable skew wrapper
//! lets experiments study what bounded synchronisation error does to the
//! verifier.

use leopard_core::Timestamp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock shared by every client thread.
pub trait Clock: Send + Sync {
    /// Current time. Must be monotonically non-decreasing per caller.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time from a process-wide monotonic origin.
///
/// Timestamps start at 1 so that `Timestamp::ZERO` stays reserved for the
/// preloaded initial database state.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.origin.elapsed().as_nanos() as u64 + 1)
    }
}

/// A deterministic logical clock: every call advances time by a fixed
/// step. Used by tests and reproducible experiments.
#[derive(Debug)]
pub struct SimClock {
    counter: AtomicU64,
    step: u64,
}

impl SimClock {
    /// A clock ticking `step` "nanoseconds" per call.
    #[must_use]
    pub fn new(step: u64) -> SimClock {
        SimClock {
            counter: AtomicU64::new(0),
            step: step.max(1),
        }
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        // relaxed: an atomic RMW already gets a slot in the counter's total
        // modification order, which is all the simulated clock needs for
        // unique, advancing timestamps; no other memory is published.
        Timestamp(self.counter.fetch_add(self.step, Ordering::Relaxed) + self.step)
    }
}

/// Adds a constant per-instance offset to an underlying clock, modelling a
/// client machine whose NTP-synchronised clock is off by a bounded skew.
#[derive(Debug)]
pub struct SkewedClock<C> {
    inner: C,
    /// Signed skew in nanoseconds.
    skew: i64,
}

impl<C: Clock> SkewedClock<C> {
    /// Wraps `inner`, offsetting every reading by `skew` nanoseconds.
    #[must_use]
    pub fn new(inner: C, skew: i64) -> SkewedClock<C> {
        SkewedClock { inner, skew }
    }
}

impl<C: Clock> Clock for SkewedClock<C> {
    fn now(&self) -> Timestamp {
        let t = self.inner.now().0 as i64 + self.skew;
        Timestamp(t.max(1) as u64)
    }
}

impl<C: Clock + ?Sized> Clock for std::sync::Arc<C> {
    fn now(&self) -> Timestamp {
        (**self).now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_is_monotonic_and_positive() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a.0 >= 1);
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_ticks_deterministically() {
        let c = SimClock::new(10);
        assert_eq!(c.now(), Timestamp(10));
        assert_eq!(c.now(), Timestamp(20));
        assert_eq!(c.now(), Timestamp(30));
    }

    #[test]
    fn sim_clock_step_zero_is_clamped() {
        let c = SimClock::new(0);
        assert_eq!(c.now(), Timestamp(1));
        assert_eq!(c.now(), Timestamp(2));
    }

    #[test]
    fn skewed_clock_offsets_readings() {
        let c = SkewedClock::new(SimClock::new(10), 5);
        assert_eq!(c.now(), Timestamp(15));
        let c = SkewedClock::new(SimClock::new(10), -100);
        // Clamped at 1: never produces the reserved zero timestamp.
        assert_eq!(c.now(), Timestamp(1));
    }

    #[test]
    fn arc_clock_delegates() {
        let c: Arc<SimClock> = Arc::new(SimClock::new(1));
        assert_eq!(c.now(), Timestamp(1));
    }
}
