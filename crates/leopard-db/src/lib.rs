//! # leopard-db: the DBMS-under-test substrate
//!
//! An in-memory multi-version transactional key-value engine built from
//! exactly the four mechanisms the Leopard paper abstracts (§II-B):
//! consistent read (MVCC snapshots, statement- or transaction-level),
//! mutual exclusion (strict 2PL write locks), first updater wins, and an
//! SSI-style serialization certifier. Isolation levels RC / RR / SI / SR
//! are assembled from these mechanisms the way PostgreSQL assembles them
//! (the paper's Fig. 1).
//!
//! Two extras make it a *verification target* rather than just a database:
//!
//! * [`faults`] — a fault-injection layer that disables one mechanism at a
//!   precise point, reproducing the bug classes of the paper's §VI-F.
//! * [`traced`] — a client-side wrapper that records the interval-based
//!   traces (§IV-A) Leopard consumes, without touching the engine.
//!
//! ```
//! use leopard_db::{Database, DbConfig, TracedSession, WallClock};
//! use leopard_core::{ClientId, IsolationLevel, Key, Trace, Value};
//! use std::sync::Arc;
//!
//! let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
//! db.preload(Key(1), Value(0));
//! let clock = Arc::new(WallClock::new());
//! let mut client = TracedSession::new(db.session(), clock, ClientId(0), Vec::<Trace>::new());
//! client.begin();
//! client.write(Key(1), Value(42)).unwrap();
//! client.commit().unwrap();
//! assert_eq!(client.sink_mut().len(), 2); // one write trace + one commit trace
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod engine;
pub mod faults;
pub mod storage;
pub mod traced;
pub mod txn;

pub use clock::{Clock, SimClock, SkewedClock, WallClock};
pub use engine::{Database, DbConfig, Session};
pub use faults::{FaultKind, FaultPlan};
pub use traced::{TraceSink, TracedSession};
pub use txn::{AbortReason, TxnMeta, TxnState};
