//! The transactional engine: MVCC snapshots, strict 2PL write locks,
//! first-updater-wins, and an SSI-style certifier, assembled per
//! isolation level exactly as the paper's Fig. 1 describes for
//! PostgreSQL-class systems.
//!
//! | level | snapshot    | locks | FUW | certifier |
//! |-------|-------------|-------|-----|-----------|
//! | RC    | statement   | yes   | no  | no        |
//! | RR/SI | transaction | yes   | yes | no        |
//! | SR    | transaction | yes   | yes | SSI       |
//!
//! The engine is deliberately honest rather than fast: correctness of the
//! mechanisms is what the verifier is being tested against. Faults
//! injected through [`FaultPlan`](crate::faults::FaultPlan) switch off one
//! mechanism at a precise point to reproduce real bug classes.

use crate::faults::{FaultKind, FaultPlan};
use crate::storage::{Record, Storage, StoredVersion};
use crate::txn::{AbortReason, TxnMeta, TxnState};
use leopard_core::fxhash::FxHashMap;
use leopard_core::lockwitness::TrackedMutex;
use leopard_core::{IsolationLevel, Key, TxnId, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Isolation level all sessions run at.
    pub isolation: IsolationLevel,
    /// How long a writer waits for a record lock before aborting
    /// (deadlock avoidance by timeout).
    pub lock_wait: Duration,
    /// Poll interval while waiting for a lock.
    pub lock_retry: Duration,
    /// How many versions behind a `StaleSnapshot` fault serves reads.
    pub stale_snapshot_lag: u64,
    /// Simulated per-operation latency (query execution + round trip of a
    /// real client-server DBMS). Zero disables it. Experiments that study
    /// interval overlap (Fig. 4, Fig. 13) enable this so trace intervals
    /// have realistic widths; the actual sleep is jittered ±50 %.
    pub op_latency: Duration,
}

impl Default for DbConfig {
    fn default() -> DbConfig {
        DbConfig {
            isolation: IsolationLevel::Serializable,
            lock_wait: Duration::from_millis(10),
            lock_retry: Duration::from_micros(20),
            stale_snapshot_lag: 2,
            op_latency: Duration::ZERO,
        }
    }
}

impl DbConfig {
    /// Default configuration at `level`.
    #[must_use]
    pub fn at(level: IsolationLevel) -> DbConfig {
        DbConfig {
            isolation: level,
            ..DbConfig::default()
        }
    }

    fn statement_snapshots(&self) -> bool {
        self.isolation == IsolationLevel::ReadCommitted
    }

    fn first_updater_wins(&self) -> bool {
        !self.statement_snapshots()
    }

    fn ssi(&self) -> bool {
        self.isolation == IsolationLevel::Serializable
    }
}

/// The shared database.
#[derive(Debug)]
pub struct Database {
    cfg: DbConfig,
    faults: FaultPlan,
    storage: Storage,
    commit_counter: AtomicU64,
    txn_counter: AtomicU64,
    /// Active transactions, for min-snapshot computation.
    active: TrackedMutex<FxHashMap<TxnId, Arc<TxnMeta>>>,
    commits_since_prune: AtomicU64,
}

/// How often (in commits) the engine prunes unreachable versions.
const PRUNE_PERIOD: u64 = 256;

impl Database {
    /// Creates a database with no faults.
    #[must_use]
    pub fn new(cfg: DbConfig) -> Arc<Database> {
        Database::with_faults(cfg, FaultPlan::none())
    }

    /// Creates a database that misbehaves per `faults`.
    #[must_use]
    pub fn with_faults(cfg: DbConfig, faults: FaultPlan) -> Arc<Database> {
        Arc::new(Database {
            cfg,
            faults,
            storage: Storage::default(),
            commit_counter: AtomicU64::new(0),
            // TxnId(0) is reserved for the initial state.
            txn_counter: AtomicU64::new(1),
            active: TrackedMutex::new("Database.active", FxHashMap::default()),
            commits_since_prune: AtomicU64::new(0),
        })
    }

    /// Installs the initial value of `key` (commit sequence 0).
    pub fn preload(&self, key: Key, value: Value) {
        self.storage.with(|map| {
            let rec = map.entry(key).or_default();
            rec.versions.clear();
            rec.versions.push(StoredVersion {
                value,
                commit_seq: 0,
                writer: TxnId::INITIAL,
                writer_meta: None,
            });
        });
    }

    /// Opens a session (one client connection).
    #[must_use]
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            db: Arc::clone(self),
            current: None,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// The fault plan (for inspecting `fired_count` in tests).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Current global commit sequence.
    #[must_use]
    pub fn commit_seq(&self) -> u64 {
        self.commit_counter.load(Ordering::Acquire)
    }

    fn min_active_snapshot(&self) -> u64 {
        let active = self.active.lock();
        active
            .values()
            .map(|m| m.snapshot_seq.load(Ordering::Acquire))
            .filter(|&s| s != crate::txn::SNAPSHOT_UNSET)
            .min()
            .unwrap_or_else(|| self.commit_seq())
    }
}

/// Per-transaction session state.
#[derive(Debug)]
struct ActiveTxn {
    meta: Arc<TxnMeta>,
    /// Keys with a pending write by this transaction.
    writes: Vec<Key>,
    /// Keys locked by this transaction (superset of `writes` unless a
    /// fault skipped a lock; also contains locking-read keys).
    locks: Vec<Key>,
    /// Own uncommitted values, for read-your-writes.
    own: FxHashMap<Key, Value>,
}

/// A client connection. Not `Sync`: one session per thread.
#[derive(Debug)]
pub struct Session {
    db: Arc<Database>,
    current: Option<ActiveTxn>,
}

impl Session {
    /// Begins a transaction, returning its id. Any running transaction is
    /// aborted first.
    pub fn begin(&mut self) -> TxnId {
        if self.current.is_some() {
            self.rollback();
        }
        // relaxed: id allocation needs uniqueness (RMW guarantees it), not
        // cross-thread ordering; publication happens via the `active` lock.
        let id = TxnId(self.db.txn_counter.fetch_add(1, Ordering::Relaxed));
        let meta = Arc::new(TxnMeta::new(id));
        self.db.active.lock().insert(id, Arc::clone(&meta));
        self.current = Some(ActiveTxn {
            meta,
            writes: Vec::new(),
            locks: Vec::new(),
            own: FxHashMap::default(),
        });
        id
    }

    /// Id of the running transaction, if any.
    #[must_use]
    pub fn txn_id(&self) -> Option<TxnId> {
        self.current.as_ref().map(|t| t.meta.id)
    }

    /// Reads `key` under the session's isolation level.
    ///
    /// On `Err` the transaction has been aborted.
    pub fn read(&mut self, key: Key) -> Result<Option<Value>, AbortReason> {
        self.simulate_latency();
        let snapshot = self.op_snapshot()?;
        let txn = self.current.as_ref().expect("checked by op_snapshot");
        if let Some(&own) = txn.own.get(&key) {
            return Ok(Some(own));
        }
        let meta = Arc::clone(&txn.meta);
        let my_id = meta.id;
        let ssi = self.db.cfg.ssi();
        let dirty = self.db.faults.fires(FaultKind::DirtyRead);
        let (value, dangerous) = self.db.storage.with(|map| {
            let Some(rec) = map.get_mut(&key) else {
                return (None, false);
            };
            if ssi && !rec.readers.iter().any(|m| m.id == my_id) {
                rec.readers.push(Arc::clone(&meta));
            }
            if dirty {
                if let Some((_, v)) = rec.pending.iter().find(|(t, _)| *t != my_id) {
                    return (Some(*v), false);
                }
            }
            let dangerous = if ssi {
                flag_stale_read(rec, snapshot, &meta)
            } else {
                false
            };
            (rec.visible_at(snapshot).map(|v| v.value), dangerous)
        });
        if dangerous {
            self.abort_with(AbortReason::Certifier);
            return Err(AbortReason::Certifier);
        }
        Ok(value)
    }

    /// Range read: up to `limit` records with keys in `[start, ...)`,
    /// under the same visibility rules as [`Session::read`].
    pub fn read_range(
        &mut self,
        start: Key,
        limit: usize,
    ) -> Result<Vec<(Key, Value)>, AbortReason> {
        self.simulate_latency();
        let snapshot = self.op_snapshot()?;
        let txn = self.current.as_ref().expect("checked by op_snapshot");
        let own: FxHashMap<Key, Value> = txn.own.clone();
        let meta = Arc::clone(&txn.meta);
        let my_id = meta.id;
        let ssi = self.db.cfg.ssi();
        let phantom = self.db.faults.fires(FaultKind::PhantomExtraVersion);
        let mut dangerous = false;
        let out = self.db.storage.with(|map| {
            let mut out = Vec::with_capacity(limit);
            let mut injected = false;
            for (&key, rec) in map.range(start..) {
                if out.len() >= limit {
                    break;
                }
                // Reader registration needs &mut; collect keys first.
                let value = own
                    .get(&key)
                    .copied()
                    .or_else(|| rec.visible_at(snapshot).map(|v| v.value));
                if ssi {
                    dangerous |= flag_stale_read_shared(rec, snapshot, &meta);
                }
                if let Some(v) = value {
                    // Bug-4 analogue: also return the overwritten
                    // predecessor version of this record.
                    if phantom && !injected {
                        if let Some(stale) = rec
                            .versions
                            .iter()
                            .rev()
                            .filter(|sv| sv.commit_seq <= snapshot)
                            .nth(1)
                        {
                            out.push((key, stale.value));
                            injected = true;
                        }
                    }
                    out.push((key, v));
                }
            }
            out
        });
        if ssi {
            self.db.storage.with(|map| {
                for (key, _) in &out {
                    if let Some(rec) = map.get_mut(key) {
                        if !rec.readers.iter().any(|m| m.id == my_id) {
                            rec.readers.push(Arc::clone(&meta));
                        }
                    }
                }
            });
        }
        if dangerous {
            self.abort_with(AbortReason::Certifier);
            return Err(AbortReason::Certifier);
        }
        Ok(out)
    }

    /// Locking read (`SELECT ... FOR UPDATE`): acquires the exclusive
    /// lock, then returns the latest committed value (a "current read").
    pub fn read_for_update(&mut self, key: Key) -> Result<Option<Value>, AbortReason> {
        self.simulate_latency();
        self.op_snapshot()?;
        // Bug-3 analogue (§VI-F): TiDB forgot the lock acquisition for a
        // FOR UPDATE read through a join.
        if !self.db.faults.fires(FaultKind::SkipLock) {
            self.acquire_lock(key)?;
            let txn = self.current.as_mut().expect("active after acquire");
            if !txn.locks.contains(&key) {
                txn.locks.push(key);
            }
        }
        let txn = self.current.as_ref().expect("active");
        if let Some(&own) = txn.own.get(&key) {
            return Ok(Some(own));
        }
        Ok(self
            .db
            .storage
            .with(|map| map.get(&key).and_then(|r| r.latest().map(|v| v.value))))
    }

    /// Writes `key := value`.
    ///
    /// Under 2PL this acquires the record's exclusive lock (bounded wait);
    /// under FUW it aborts if a concurrent transaction committed an update
    /// first. On `Err` the transaction has been aborted.
    pub fn write(&mut self, key: Key, value: Value) -> Result<(), AbortReason> {
        self.simulate_latency();
        let snapshot = self.op_snapshot()?;
        let my_id = self.current.as_ref().expect("active").meta.id;

        // Fault hooks: skip the lock entirely, or (Bug 1) skip it when the
        // "update does not modify the record".
        let mut skip_lock = self.db.faults.fires(FaultKind::SkipLock);
        if !skip_lock && self.db.faults.kind() == Some(FaultKind::FirstWriteNoLock) {
            let unchanged = self.db.storage.with(|map| {
                map.get(&key)
                    .and_then(Record::latest)
                    .is_some_and(|v| v.value == value)
            });
            if unchanged && self.db.faults.fires(FaultKind::FirstWriteNoLock) {
                skip_lock = true;
            }
        }
        if !skip_lock {
            self.acquire_lock(key)?;
            let txn = self.current.as_mut().expect("active");
            if !txn.locks.contains(&key) {
                txn.locks.push(key);
            }
        }

        // First updater wins: a committed update newer than our snapshot
        // means we lost the race (PostgreSQL's "could not serialize access
        // due to concurrent update").
        if self.db.cfg.first_updater_wins() && !self.db.faults.fires(FaultKind::AllowLostUpdate) {
            let conflicting = self.db.storage.with(|map| {
                map.get(&key)
                    .and_then(Record::latest)
                    .is_some_and(|v| v.commit_seq > snapshot)
            });
            if conflicting {
                self.abort_with(AbortReason::FirstUpdaterWins);
                return Err(AbortReason::FirstUpdaterWins);
            }
        }

        let txn = self.current.as_mut().expect("active");
        if txn.own.insert(key, value).is_none() {
            txn.writes.push(key);
        }
        self.db.storage.with(|map| {
            let rec = map.entry(key).or_default();
            rec.pending.retain(|(t, _)| *t != my_id);
            rec.pending.push((my_id, value));
        });
        Ok(())
    }

    /// Commits. On `Err` the transaction has been aborted instead
    /// (certifier rejection).
    pub fn commit(&mut self) -> Result<(), AbortReason> {
        self.simulate_latency();
        let Some(txn) = self.current.as_ref() else {
            return Err(AbortReason::NotActive);
        };
        let meta = Arc::clone(&txn.meta);
        let my_snapshot = meta.snapshot_seq.load(Ordering::Acquire);
        let writes = txn.writes.clone();

        // SSI certifier: mark rw antidependencies from every reader of
        // every record we wrote; abort on a dangerous structure.
        if self.db.cfg.ssi()
            && !writes.is_empty()
            && !self.db.faults.fires(FaultKind::SkipCertifier)
        {
            let rejected = self.db.storage.with(|map| {
                for key in &writes {
                    let Some(rec) = map.get_mut(key) else {
                        continue;
                    };
                    for reader in &rec.readers {
                        if reader.id == meta.id {
                            continue;
                        }
                        let concurrent = match reader.state() {
                            TxnState::Active => true,
                            TxnState::Committed => {
                                reader.commit_seq.load(Ordering::Acquire) > my_snapshot
                            }
                            TxnState::Aborted => false,
                        };
                        if !concurrent {
                            continue;
                        }
                        // rw: reader -> self.
                        if reader.state() == TxnState::Committed
                            && reader.in_rw.load(Ordering::Acquire)
                        {
                            // The committed reader is a pivot we can no
                            // longer abort: reject this commit instead.
                            return true;
                        }
                        reader.out_rw.store(true, Ordering::Release);
                        meta.in_rw.store(true, Ordering::Release);
                        if meta.out_rw.load(Ordering::Acquire) {
                            return true; // self is the pivot
                        }
                    }
                }
                false
            });
            if rejected {
                self.abort_with(AbortReason::Certifier);
                return Err(AbortReason::Certifier);
            }
        }

        // Install: assign the commit sequence and publish every pending
        // version in one critical section, so no snapshot can ever observe
        // a commit sequence whose versions are not yet visible.
        let txn = self.current.take().expect("checked above");
        self.db.storage.with(|map| {
            let commit_seq = self.db.commit_counter.fetch_add(1, Ordering::AcqRel) + 1;
            meta.commit_seq.store(commit_seq, Ordering::Release);
            for key in &txn.writes {
                let Some(rec) = map.get_mut(key) else {
                    continue;
                };
                if let Some(pos) = rec.pending.iter().position(|(t, _)| *t == meta.id) {
                    let (_, value) = rec.pending.remove(pos);
                    rec.versions.push(StoredVersion {
                        value,
                        commit_seq,
                        writer: meta.id,
                        writer_meta: Some(Arc::clone(&meta)),
                    });
                }
            }
            for key in &txn.locks {
                if let Some(rec) = map.get_mut(key) {
                    if rec.lock == Some(meta.id) {
                        rec.lock = None;
                    }
                }
            }
        });
        meta.set_state(TxnState::Committed);
        self.db.active.lock().remove(&meta.id);
        self.maybe_prune();
        Ok(())
    }

    /// Rolls the running transaction back (no-op without one).
    pub fn rollback(&mut self) {
        self.abort_with(AbortReason::NotActive);
    }

    fn abort_with(&mut self, _reason: AbortReason) {
        let Some(txn) = self.current.take() else {
            return;
        };
        self.db.storage.with(|map| {
            for key in &txn.writes {
                if let Some(rec) = map.get_mut(key) {
                    rec.pending.retain(|(t, _)| *t != txn.meta.id);
                }
            }
            for key in &txn.locks {
                if let Some(rec) = map.get_mut(key) {
                    if rec.lock == Some(txn.meta.id) {
                        rec.lock = None;
                    }
                }
            }
        });
        txn.meta.set_state(TxnState::Aborted);
        self.db.active.lock().remove(&txn.meta.id);
    }

    /// Sleeps for the configured simulated operation latency (±50 %
    /// jitter), emulating the query-execution and round-trip time of a
    /// real client-server DBMS.
    fn simulate_latency(&self) {
        let d = self.db.cfg.op_latency;
        if !d.is_zero() {
            use rand::Rng as _;
            let nanos = d.as_nanos() as u64;
            let jittered = rand::rng().random_range(nanos / 2..=nanos * 3 / 2);
            std::thread::sleep(Duration::from_nanos(jittered));
        }
    }

    /// Fixes the snapshot for the next operation and returns it.
    fn op_snapshot(&mut self) -> Result<u64, AbortReason> {
        let db = Arc::clone(&self.db);
        let Some(txn) = self.current.as_mut() else {
            return Err(AbortReason::NotActive);
        };
        let existing = txn.meta.snapshot_seq.load(Ordering::Acquire);
        let mut seq = if db.cfg.statement_snapshots() || existing == crate::txn::SNAPSHOT_UNSET {
            db.commit_seq()
        } else {
            existing
        };
        if existing == crate::txn::SNAPSHOT_UNSET || db.cfg.statement_snapshots() {
            if db.faults.fires(FaultKind::StaleSnapshot) {
                seq = seq.saturating_sub(db.cfg.stale_snapshot_lag);
            }
            txn.meta.snapshot_seq.store(seq, Ordering::Release);
        }
        Ok(seq)
    }

    /// Bounded-wait exclusive lock acquisition (2PL growing phase).
    fn acquire_lock(&mut self, key: Key) -> Result<(), AbortReason> {
        let my_id = self.current.as_ref().expect("active").meta.id;
        let deadline = Instant::now() + self.db.cfg.lock_wait;
        loop {
            let acquired = self.db.storage.with(|map| {
                let rec = map.entry(key).or_default();
                match rec.lock {
                    None => {
                        rec.lock = Some(my_id);
                        true
                    }
                    Some(holder) => holder == my_id,
                }
            });
            if acquired {
                return Ok(());
            }
            if Instant::now() >= deadline {
                self.abort_with(AbortReason::LockTimeout);
                return Err(AbortReason::LockTimeout);
            }
            std::thread::sleep(self.db.cfg.lock_retry);
        }
    }

    fn maybe_prune(&self) {
        // relaxed: prune cadence only; an occasional off-by-one between
        // threads merely shifts when GC runs, never what it may remove.
        let n = self.db.commits_since_prune.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(PRUNE_PERIOD) {
            return;
        }
        let min_snapshot = self.db.min_active_snapshot();
        self.db.storage.with(|map| {
            for rec in map.values_mut() {
                rec.prune_versions(min_snapshot);
                rec.prune_readers(min_snapshot);
            }
        });
    }
}

/// SSI bookkeeping for a read that observes a record with newer committed
/// versions than its snapshot: the read has an rw antidependency on each
/// such writer. Marks the flags and returns `true` when the structure is
/// already dangerous (the writer is a committed pivot), in which case the
/// reader must abort.
fn flag_stale_read(rec: &mut Record, snapshot: u64, reader: &Arc<TxnMeta>) -> bool {
    flag_stale_read_shared(rec, snapshot, reader)
}

/// Shared-reference variant used by range scans.
fn flag_stale_read_shared(rec: &Record, snapshot: u64, reader: &Arc<TxnMeta>) -> bool {
    use std::sync::atomic::Ordering as O;
    let mut dangerous = false;
    for newer in rec.versions.iter().rev() {
        if newer.commit_seq <= snapshot {
            break;
        }
        let Some(wm) = &newer.writer_meta else {
            continue;
        };
        if wm.id == reader.id {
            continue;
        }
        // rw: reader -> writer (writer committed after reader's snapshot,
        // so the pair is concurrent by construction).
        reader.out_rw.store(true, O::Release);
        wm.in_rw.store(true, O::Release);
        if wm.out_rw.load(O::Acquire) {
            // reader -> writer -> x with the pivot already committed: the
            // only abortable participant is the reader.
            dangerous = true;
        }
    }
    dangerous
}

impl Drop for Session {
    fn drop(&mut self) {
        self.rollback();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_at(level: IsolationLevel) -> Arc<Database> {
        let db = Database::new(DbConfig::at(level));
        for k in 0..10u64 {
            db.preload(Key(k), Value(0));
        }
        db
    }

    #[test]
    fn read_your_own_writes() {
        let db = db_at(IsolationLevel::Serializable);
        let mut s = db.session();
        s.begin();
        assert_eq!(s.read(Key(1)).unwrap(), Some(Value(0)));
        s.write(Key(1), Value(7)).unwrap();
        assert_eq!(s.read(Key(1)).unwrap(), Some(Value(7)));
        s.commit().unwrap();
    }

    #[test]
    fn committed_writes_become_visible() {
        let db = db_at(IsolationLevel::Serializable);
        let mut a = db.session();
        a.begin();
        a.write(Key(1), Value(7)).unwrap();
        a.commit().unwrap();
        let mut b = db.session();
        b.begin();
        assert_eq!(b.read(Key(1)).unwrap(), Some(Value(7)));
        b.commit().unwrap();
    }

    #[test]
    fn uncommitted_writes_are_invisible() {
        let db = db_at(IsolationLevel::Serializable);
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        a.write(Key(1), Value(7)).unwrap();
        b.begin();
        assert_eq!(b.read(Key(1)).unwrap(), Some(Value(0)));
        a.commit().unwrap();
        b.rollback();
    }

    #[test]
    fn transaction_snapshot_is_repeatable() {
        let db = db_at(IsolationLevel::RepeatableRead);
        let mut a = db.session();
        a.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        let mut b = db.session();
        b.begin();
        b.write(Key(1), Value(9)).unwrap();
        b.commit().unwrap();
        // a still sees its snapshot.
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        a.rollback();
    }

    #[test]
    fn statement_snapshot_sees_new_commits() {
        let db = db_at(IsolationLevel::ReadCommitted);
        let mut a = db.session();
        a.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        let mut b = db.session();
        b.begin();
        b.write(Key(1), Value(9)).unwrap();
        b.commit().unwrap();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(9)));
        a.rollback();
    }

    #[test]
    fn write_conflict_times_out() {
        let db = Database::new(DbConfig {
            isolation: IsolationLevel::Serializable,
            lock_wait: Duration::from_millis(2),
            ..DbConfig::default()
        });
        db.preload(Key(1), Value(0));
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        a.write(Key(1), Value(1)).unwrap();
        b.begin();
        let err = b.write(Key(1), Value(2)).unwrap_err();
        assert_eq!(err, AbortReason::LockTimeout);
        a.commit().unwrap();
        // b was auto-aborted.
        assert!(b.txn_id().is_none());
    }

    #[test]
    fn first_updater_wins_aborts_second() {
        let db = db_at(IsolationLevel::SnapshotIsolation);
        let mut a = db.session();
        let mut b = db.session();
        // Both take their snapshot first.
        a.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        b.begin();
        assert_eq!(b.read(Key(1)).unwrap(), Some(Value(0)));
        // a updates and commits.
        a.write(Key(1), Value(1)).unwrap();
        a.commit().unwrap();
        // b's update must hit FUW.
        let err = b.write(Key(1), Value(2)).unwrap_err();
        assert_eq!(err, AbortReason::FirstUpdaterWins);
    }

    #[test]
    fn read_committed_allows_lost_update_pattern() {
        // At RC (no FUW), the second writer succeeds after the first
        // commits — the classic lost-update hazard the level permits.
        let db = db_at(IsolationLevel::ReadCommitted);
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        b.begin();
        assert_eq!(b.read(Key(1)).unwrap(), Some(Value(0)));
        a.write(Key(1), Value(1)).unwrap();
        a.commit().unwrap();
        b.write(Key(1), Value(2)).unwrap();
        b.commit().unwrap();
        let mut c = db.session();
        c.begin();
        assert_eq!(c.read(Key(1)).unwrap(), Some(Value(2)));
        c.rollback();
    }

    #[test]
    fn ssi_aborts_write_skew() {
        let db = db_at(IsolationLevel::Serializable);
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        b.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        assert_eq!(b.read(Key(2)).unwrap(), Some(Value(0)));
        a.write(Key(2), Value(5)).unwrap();
        b.write(Key(1), Value(6)).unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert_eq!(err, AbortReason::Certifier);
    }

    #[test]
    fn snapshot_isolation_permits_write_skew() {
        let db = db_at(IsolationLevel::SnapshotIsolation);
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        b.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        assert_eq!(b.read(Key(2)).unwrap(), Some(Value(0)));
        a.write(Key(2), Value(5)).unwrap();
        b.write(Key(1), Value(6)).unwrap();
        a.commit().unwrap();
        b.commit().unwrap(); // allowed at SI
    }

    #[test]
    fn rollback_discards_writes_and_locks() {
        let db = db_at(IsolationLevel::Serializable);
        let mut a = db.session();
        a.begin();
        a.write(Key(1), Value(9)).unwrap();
        a.rollback();
        let mut b = db.session();
        b.begin();
        assert_eq!(b.read(Key(1)).unwrap(), Some(Value(0)));
        // Lock is free again.
        b.write(Key(1), Value(3)).unwrap();
        b.commit().unwrap();
    }

    #[test]
    fn range_read_returns_sorted_window() {
        let db = db_at(IsolationLevel::Serializable);
        let mut s = db.session();
        s.begin();
        let rows = s.read_range(Key(3), 4).unwrap();
        let keys: Vec<u64> = rows.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
        s.commit().unwrap();
    }

    #[test]
    fn read_for_update_blocks_writers() {
        let db = Database::new(DbConfig {
            isolation: IsolationLevel::Serializable,
            lock_wait: Duration::from_millis(2),
            ..DbConfig::default()
        });
        db.preload(Key(1), Value(0));
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        assert_eq!(a.read_for_update(Key(1)).unwrap(), Some(Value(0)));
        b.begin();
        assert_eq!(
            b.write(Key(1), Value(2)).unwrap_err(),
            AbortReason::LockTimeout
        );
        a.commit().unwrap();
    }

    #[test]
    fn dirty_read_fault_leaks_pending_writes() {
        let db = Database::with_faults(
            DbConfig::at(IsolationLevel::ReadCommitted),
            FaultPlan::always(FaultKind::DirtyRead),
        );
        db.preload(Key(1), Value(0));
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        a.write(Key(1), Value(7)).unwrap();
        b.begin();
        assert_eq!(b.read(Key(1)).unwrap(), Some(Value(7))); // dirty!
        a.rollback();
        b.rollback();
        assert!(db.faults().fired_count() >= 1);
    }

    #[test]
    fn lost_update_fault_lets_both_commit() {
        let db = Database::with_faults(
            DbConfig::at(IsolationLevel::SnapshotIsolation),
            FaultPlan::always(FaultKind::AllowLostUpdate),
        );
        db.preload(Key(1), Value(0));
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        b.begin();
        assert_eq!(b.read(Key(1)).unwrap(), Some(Value(0)));
        a.write(Key(1), Value(1)).unwrap();
        a.commit().unwrap();
        b.write(Key(1), Value(2)).unwrap(); // FUW skipped
        b.commit().unwrap();
    }

    #[test]
    fn skip_certifier_fault_lets_write_skew_commit() {
        let db = Database::with_faults(
            DbConfig::at(IsolationLevel::Serializable),
            FaultPlan::always(FaultKind::SkipCertifier),
        );
        db.preload(Key(1), Value(0));
        db.preload(Key(2), Value(0));
        let mut a = db.session();
        let mut b = db.session();
        a.begin();
        b.begin();
        assert_eq!(a.read(Key(1)).unwrap(), Some(Value(0)));
        assert_eq!(b.read(Key(2)).unwrap(), Some(Value(0)));
        a.write(Key(2), Value(5)).unwrap();
        b.write(Key(1), Value(6)).unwrap();
        a.commit().unwrap();
        b.commit().unwrap(); // certifier skipped: write skew committed
    }

    #[test]
    fn version_pruning_keeps_reads_correct() {
        let db = db_at(IsolationLevel::Serializable);
        for i in 0..(2 * PRUNE_PERIOD + 10) {
            let mut s = db.session();
            s.begin();
            s.write(Key(1), Value(i)).unwrap();
            s.commit().unwrap();
        }
        let mut s = db.session();
        s.begin();
        assert_eq!(s.read(Key(1)).unwrap(), Some(Value(2 * PRUNE_PERIOD + 9)));
        s.commit().unwrap();
    }
}
