//! The multi-threaded workload runner: N client threads executing a
//! generator's transactions against the traced engine.
//!
//! This is the experiment harness's stand-in for OLTP-Bench: it runs the
//! unmodified workload logic while the [`TracedSession`] records
//! interval-based traces on the side.

use crate::chaos::{ChaosClock, ChaosPlan, ChaosSink, ClientChaos, RetryPolicy, TxnFate};
use crate::spec::{TxnStep, UniqueValues, ValueRule, WorkloadGen};
use leopard_core::fxhash::FxHashMap;
use leopard_core::{ClientId, Key, Trace, Value};
use leopard_db::{AbortReason, Clock, Database, TraceSink, TracedSession, WallClock};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a client keeps issuing transactions.
#[derive(Debug, Clone, Copy)]
pub enum RunLimit {
    /// A fixed number of transaction attempts per client.
    Txns(u64),
    /// Keep going until the wall-clock deadline.
    Duration(Duration),
}

/// Per-run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Committed transactions across all clients.
    pub committed: u64,
    /// Aborted transaction attempts across all clients (each aborted
    /// attempt leaves its own abort trace).
    pub aborted: u64,
    /// Re-attempts of aborted transactions under a [`RetryPolicy`] with
    /// `max_attempts > 1`.
    pub retries: u64,
    /// Transactions cut off by a chaos kill: the client died
    /// mid-transaction, the engine rolled back, no terminal trace exists.
    pub killed: u64,
    /// Transactions during which a chaos stall fired.
    pub stalled: u64,
    /// Trace deliveries dropped by the chaotic transport (including
    /// truncation).
    pub traces_dropped: u64,
    /// Trace deliveries duplicated by the chaotic transport.
    pub traces_duplicated: u64,
    /// Peak estimated pipeline memory (bytes) reported by the tracer the
    /// run fed, when one was attached; 0 otherwise.
    pub peak_mem_bytes: u64,
    /// Traces shed by the pipeline: backpressure/shutdown drops plus
    /// late arrivals below a forced-dispatch floor.
    pub shed_traces: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl RunStats {
    /// Committed transactions per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.wall.as_secs_f64()
        }
    }

    /// Folds the pipeline's resource counters into the run statistics,
    /// so one struct carries both the workload view and the tracer view.
    pub fn absorb_pipeline(&mut self, p: &leopard_core::PipelineStats) {
        self.peak_mem_bytes = self.peak_mem_bytes.max(p.peak_mem_bytes);
        self.shed_traces += p.shed_traces + p.late_dropped;
    }
}

/// Result of a collecting run: per-client trace streams (each naturally
/// sorted by `ts_bef`) plus statistics.
#[derive(Debug)]
pub struct RunOutput {
    /// One trace stream per client, in client order.
    pub per_client: Vec<Vec<Trace>>,
    /// Run statistics.
    pub stats: RunStats,
}

impl RunOutput {
    /// All traces merged and sorted by `ts_bef` (what the pipeline would
    /// dispatch).
    #[must_use]
    pub fn merged_sorted(&self) -> Vec<Trace> {
        let mut all: Vec<Trace> = self.per_client.iter().flatten().cloned().collect();
        all.sort_by_key(|t| (t.ts_bef(), t.ts_aft()));
        all
    }

    /// Total number of traces.
    #[must_use]
    pub fn trace_count(&self) -> usize {
        self.per_client.iter().map(Vec::len).sum()
    }
}

/// Creates a database at `db`'s configuration preloaded with `gen`'s
/// initial state, and returns the preload pairs (for `Verifier::preload`).
pub fn preload_database(db: &Database, gen: &dyn WorkloadGen) -> Vec<(Key, Value)> {
    let rows = gen.preload();
    for &(k, v) in &rows {
        db.preload(k, v);
    }
    rows
}

/// Runs `gens.len()` client threads against `db`, collecting each client's
/// traces into a vector.
pub fn run_collect(
    db: &Arc<Database>,
    gens: Vec<Box<dyn WorkloadGen>>,
    limit: RunLimit,
    seed: u64,
) -> RunOutput {
    let sinks: Vec<Vec<Trace>> = gens.iter().map(|_| Vec::new()).collect();
    let (stats, sinks) = run_with_sinks(db, gens, sinks, limit, seed);
    RunOutput {
        per_client: sinks,
        stats,
    }
}

/// Runs client threads with caller-provided trace sinks (e.g. the
/// pipeline's [`leopard_core::ClientHandle`]s for online verification).
/// Returns the statistics and the sinks.
pub fn run_with_sinks<S>(
    db: &Arc<Database>,
    gens: Vec<Box<dyn WorkloadGen>>,
    sinks: Vec<S>,
    limit: RunLimit,
    seed: u64,
) -> (RunStats, Vec<S>)
where
    S: TraceSink + Send + 'static,
{
    run_chaos_with_sinks(
        db,
        gens,
        sinks,
        limit,
        seed,
        &ChaosPlan::none(),
        RetryPolicy::none(),
    )
}

/// Runs client threads under a [`ChaosPlan`]: transactions may be killed
/// mid-flight or stalled, trace deliveries dropped/duplicated/truncated,
/// client clocks skewed in bursts, and aborted attempts retried with
/// exponential backoff per `retry`. With [`ChaosPlan::none`] and
/// [`RetryPolicy::none`] this is exactly [`run_with_sinks`].
pub fn run_chaos_with_sinks<S>(
    db: &Arc<Database>,
    gens: Vec<Box<dyn WorkloadGen>>,
    sinks: Vec<S>,
    limit: RunLimit,
    seed: u64,
    chaos: &ChaosPlan,
    retry: RetryPolicy,
) -> (RunStats, Vec<S>)
where
    S: TraceSink + Send + 'static,
{
    let interrupt = Arc::new(AtomicBool::new(false));
    run_chaos_with_sinks_stoppable(db, gens, sinks, limit, seed, chaos, retry, &interrupt)
}

/// [`run_chaos_with_sinks`] with an external interrupt flag: when
/// `interrupt` becomes `true` (a signal handler, a watchdog), every
/// client finishes its current transaction attempt and returns. The run
/// ends with all traces it produced delivered — a *graceful* early
/// stop, not a kill.
#[allow(clippy::too_many_arguments)] // the stoppable superset of the public runner entry point
pub fn run_chaos_with_sinks_stoppable<S>(
    db: &Arc<Database>,
    gens: Vec<Box<dyn WorkloadGen>>,
    sinks: Vec<S>,
    limit: RunLimit,
    seed: u64,
    chaos: &ChaosPlan,
    retry: RetryPolicy,
    interrupt: &Arc<AtomicBool>,
) -> (RunStats, Vec<S>)
where
    S: TraceSink + Send + 'static,
{
    assert_eq!(gens.len(), sinks.len(), "one sink per client");
    let clock = Arc::new(WallClock::new());
    // One unique-value pool for the whole run: "uniquely written values"
    // must hold across clients, not just within one.
    let unique = UniqueValues::new();
    let start = Instant::now();
    let mut joins = Vec::with_capacity(gens.len());
    for (i, (gen, sink)) in gens.into_iter().zip(sinks).enumerate() {
        let db = Arc::clone(db);
        let clock = Arc::new(ChaosClock::new(chaos, i as u64, Arc::clone(&clock)));
        let unique = unique.clone();
        let sink = ChaosSink::new(chaos, i as u64, sink);
        let chaos = ClientChaos::new(chaos, i as u64);
        let interrupt = Arc::clone(interrupt);
        joins.push(std::thread::spawn(move || {
            run_client(
                gen,
                &db,
                clock,
                ClientId(i as u32),
                sink,
                limit,
                seed.wrapping_add(i as u64),
                unique,
                chaos,
                retry,
                &interrupt,
            )
        }));
    }
    let mut stats = RunStats::default();
    let mut sinks = Vec::with_capacity(joins.len());
    for j in joins {
        let (s, sink) = j.join().expect("client thread panicked");
        stats.committed += s.committed;
        stats.aborted += s.aborted;
        stats.retries += s.retries;
        stats.killed += s.killed;
        stats.stalled += s.stalled;
        stats.traces_dropped += sink.dropped();
        stats.traces_duplicated += sink.duplicated();
        sinks.push(sink.into_inner());
    }
    stats.wall = start.elapsed();
    (stats, sinks)
}

#[allow(clippy::too_many_arguments)] // internal thread body, not public API
fn run_client<C: Clock + Clone, S: TraceSink>(
    mut gen: Box<dyn WorkloadGen>,
    db: &Arc<Database>,
    clock: C,
    client: ClientId,
    sink: S,
    limit: RunLimit,
    seed: u64,
    unique: UniqueValues,
    mut chaos: ClientChaos,
    retry: RetryPolicy,
    interrupt: &AtomicBool,
) -> (RunStats, S) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // A separate stream for backoff jitter: drawing sleep durations must
    // not perturb the workload's transaction stream.
    let mut retry_rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut stats = RunStats::default();
    let mut session = TracedSession::new(db.session(), clock.clone(), client, sink);
    let deadline = match limit {
        RunLimit::Duration(d) => Some(Instant::now() + d),
        RunLimit::Txns(_) => None,
    };
    let mut attempts = 0u64;
    loop {
        if interrupt.load(Ordering::SeqCst) {
            break;
        }
        match limit {
            RunLimit::Txns(n) if attempts >= n => break,
            RunLimit::Duration(_) if Instant::now() >= deadline.expect("set above") => break,
            _ => {}
        }
        attempts += 1;
        let steps = gen.next_txn(&mut rng);
        match chaos.fate(steps.len()) {
            TxnFate::Kill { steps: upto } => {
                session.begin();
                if apply_steps(&mut session, &steps[..upto], &unique, None, Duration::ZERO).is_ok()
                {
                    // The client dies here: the connection drops, the
                    // engine's drop guard rolls back server-side, and no
                    // terminal trace is ever recorded. Model the
                    // "restarted client" by reconnecting a fresh session
                    // over the same sink.
                    let sink = session.into_parts();
                    stats.killed += 1;
                    session = TracedSession::new(db.session(), clock.clone(), client, sink);
                } else {
                    // A statement aborted before the kill point fired; the
                    // abort was traced normally.
                    stats.aborted += 1;
                }
            }
            fate @ (TxnFate::Normal | TxnFate::Stall { .. }) => {
                let stall_at = match fate {
                    TxnFate::Stall { at_step } => {
                        stats.stalled += 1;
                        Some(at_step)
                    }
                    _ => None,
                };
                let mut attempt = 0u32;
                loop {
                    attempt += 1;
                    let r = execute_txn_inner(&mut session, &steps, &unique, stall_at, chaos.stall);
                    match r {
                        Ok(()) => {
                            stats.committed += 1;
                            break;
                        }
                        Err(_) => {
                            stats.aborted += 1;
                            if attempt >= retry.max_attempts {
                                break;
                            }
                            stats.retries += 1;
                            let backoff = retry.backoff_jittered(attempt, &mut retry_rng);
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                        }
                    }
                }
            }
        }
    }
    (stats, session.into_parts())
}

/// Executes one declarative transaction; the session has already traced
/// and aborted on error.
pub fn execute_txn<C: Clock, S: TraceSink>(
    session: &mut TracedSession<C, S>,
    steps: &[TxnStep],
    unique: &UniqueValues,
) -> Result<(), AbortReason> {
    execute_txn_inner(session, steps, unique, None, Duration::ZERO)
}

/// [`execute_txn`] with an optional chaos stall before step `stall_at`.
fn execute_txn_inner<C: Clock, S: TraceSink>(
    session: &mut TracedSession<C, S>,
    steps: &[TxnStep],
    unique: &UniqueValues,
    stall_at: Option<usize>,
    stall: Duration,
) -> Result<(), AbortReason> {
    session.begin();
    apply_steps(session, steps, unique, stall_at, stall)?;
    session.commit()
}

/// Runs the statements of a transaction body (no `BEGIN`, no `COMMIT`),
/// optionally sleeping for `stall` before statement `stall_at` — while
/// holding every lock acquired so far, like a client paused by a GC or a
/// network hiccup.
fn apply_steps<C: Clock, S: TraceSink>(
    session: &mut TracedSession<C, S>,
    steps: &[TxnStep],
    unique: &UniqueValues,
    stall_at: Option<usize>,
    stall: Duration,
) -> Result<(), AbortReason> {
    let mut read_vals: FxHashMap<Key, Value> = FxHashMap::default();
    for (i, step) in steps.iter().enumerate() {
        if stall_at == Some(i) && !stall.is_zero() {
            std::thread::sleep(stall);
        }
        match step {
            TxnStep::Read(k) => {
                if let Some(v) = session.read(*k)? {
                    read_vals.insert(*k, v);
                }
            }
            TxnStep::RangeRead(start, n) => {
                for (k, v) in session.read_range(*start, *n)? {
                    read_vals.insert(k, v);
                }
            }
            TxnStep::LockedRead(k) => {
                if let Some(v) = session.read_for_update(*k)? {
                    read_vals.insert(*k, v);
                }
            }
            TxnStep::Write(k, rule) => {
                let value = match rule {
                    ValueRule::Unique => unique.next(),
                    ValueRule::Const(c) => Value(*c),
                    ValueRule::AddToRead(src, delta) => {
                        let base = match read_vals.get(src) {
                            Some(v) => *v,
                            // Robustness: read the dependency if the
                            // generator forgot to.
                            None => {
                                let v = session.read(*src)?.unwrap_or(Value(0));
                                read_vals.insert(*src, v);
                                v
                            }
                        };
                        Value(base.0.wrapping_add_signed(*delta))
                    }
                };
                session.write(*k, value)?;
                read_vals.insert(*k, value);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blindw::{BlindW, BlindWVariant};
    use crate::smallbank::SmallBank;
    use leopard_core::{IsolationLevel, OpKind};
    use leopard_db::DbConfig;

    fn forks<G: WorkloadGen + Clone + 'static>(g: &G, n: usize) -> Vec<Box<dyn WorkloadGen>> {
        (0..n)
            .map(|_| Box::new(g.clone()) as Box<dyn WorkloadGen>)
            .collect()
    }

    #[test]
    fn blindw_run_produces_per_client_sorted_traces() {
        let gen = BlindW::new(BlindWVariant::ReadWrite).with_table_size(64);
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        preload_database(&db, &gen);
        let out = run_collect(&db, forks(&gen, 4), RunLimit::Txns(50), 42);
        assert_eq!(out.per_client.len(), 4);
        assert_eq!(
            out.stats.committed + out.stats.aborted,
            200,
            "every attempt resolves"
        );
        for stream in &out.per_client {
            assert!(stream.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
        }
        assert!(out.trace_count() > 0);
        // Every transaction terminates in the trace.
        let merged = out.merged_sorted();
        let terminals = merged
            .iter()
            .filter(|t| matches!(t.op, OpKind::Commit | OpKind::Abort))
            .count() as u64;
        assert_eq!(terminals, out.stats.committed + out.stats.aborted);
    }

    #[test]
    fn smallbank_run_commits_transactions() {
        let gen = SmallBank::new(32);
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        preload_database(&db, &gen);
        let out = run_collect(&db, forks(&gen, 2), RunLimit::Txns(100), 7);
        assert!(out.stats.committed > 0);
    }

    #[test]
    fn duration_limit_stops_the_run() {
        let gen = BlindW::new(BlindWVariant::WriteOnly).with_table_size(64);
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        preload_database(&db, &gen);
        let start = Instant::now();
        let out = run_collect(
            &db,
            forks(&gen, 2),
            RunLimit::Duration(Duration::from_millis(50)),
            1,
        );
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(out.stats.committed > 0);
    }

    #[test]
    fn chaos_kills_leave_no_terminal_trace() {
        let plan = ChaosPlan {
            seed: 11,
            kill_prob: 0.25,
            ..ChaosPlan::none()
        };
        let gen = BlindW::new(BlindWVariant::ReadWrite).with_table_size(64);
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        preload_database(&db, &gen);
        let sinks: Vec<Vec<Trace>> = (0..4).map(|_| Vec::new()).collect();
        let (stats, sinks) = run_chaos_with_sinks(
            &db,
            forks(&gen, 4),
            sinks,
            RunLimit::Txns(50),
            42,
            &plan,
            RetryPolicy::none(),
        );
        assert!(stats.killed > 0, "p=0.25 over 200 txns must kill some");
        assert_eq!(stats.committed + stats.aborted + stats.killed, 200);
        let terminals = sinks
            .iter()
            .flatten()
            .filter(|t| matches!(t.op, OpKind::Commit | OpKind::Abort))
            .count() as u64;
        // Killed transactions are exactly the ones missing a terminal.
        assert_eq!(terminals, stats.committed + stats.aborted);
        // Per-client monotonicity survives kills and reconnects.
        for stream in &sinks {
            assert!(stream.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
        }
    }

    #[test]
    fn retry_policy_retries_aborted_attempts() {
        // Hot keys, a lock-wait timeout shorter than the chaos stalls:
        // stalled writers hold their locks past every peer's lock-wait
        // deadline, so the peers abort and the retry policy kicks in.
        let gen = BlindW::new(BlindWVariant::WriteOnly).with_table_size(2);
        let db = Database::new(DbConfig {
            isolation: IsolationLevel::Serializable,
            lock_wait: Duration::from_millis(1),
            ..DbConfig::default()
        });
        let plan = ChaosPlan {
            seed: 17,
            stall_prob: 0.5,
            stall: Duration::from_millis(3),
            ..ChaosPlan::none()
        };
        preload_database(&db, &gen);
        let sinks: Vec<Vec<Trace>> = (0..4).map(|_| Vec::new()).collect();
        let (stats, _) = run_chaos_with_sinks(
            &db,
            forks(&gen, 4),
            sinks,
            RunLimit::Txns(40),
            9,
            &plan,
            RetryPolicy::with_backoff(3, Duration::ZERO),
        );
        assert!(stats.stalled > 0);
        assert!(stats.aborted > 0, "hot keys must produce aborts");
        assert!(stats.retries > 0, "aborts must be retried");
        assert!(stats.retries <= stats.aborted);
        // Every attempt (first tries + retries) resolved to a terminal.
        assert_eq!(stats.committed + stats.aborted, 160 + stats.retries);
    }

    #[test]
    fn chaotic_transport_counts_drops_and_dups() {
        let plan = ChaosPlan {
            seed: 23,
            drop_prob: 0.1,
            dup_prob: 0.1,
            ..ChaosPlan::none()
        };
        let gen = BlindW::new(BlindWVariant::WriteOnly).with_table_size(64);
        let db = Database::new(DbConfig::at(IsolationLevel::Serializable));
        preload_database(&db, &gen);
        let sinks: Vec<Vec<Trace>> = (0..2).map(|_| Vec::new()).collect();
        let (stats, sinks) = run_chaos_with_sinks(
            &db,
            forks(&gen, 2),
            sinks,
            RunLimit::Txns(100),
            5,
            &plan,
            RetryPolicy::none(),
        );
        assert!(stats.traces_dropped > 0);
        assert!(stats.traces_duplicated > 0);
        // The transport never reorders: per-client order still holds.
        for stream in &sinks {
            assert!(stream.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
        }
    }

    #[test]
    fn throughput_is_positive() {
        let s = RunStats {
            committed: 100,
            wall: Duration::from_secs(2),
            ..RunStats::default()
        };
        assert!((s.throughput() - 50.0).abs() < 1e-9);
    }
}
