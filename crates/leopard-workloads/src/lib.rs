//! # leopard-workloads: benchmark workloads for the Leopard experiments
//!
//! The workload generators and the multi-threaded runner driving the
//! `leopard-db` substrate — the reproduction's stand-in for OLTP-Bench:
//!
//! * [`ycsb`] — YCSB-A (Zipfian skew, configurable read ratio), used for
//!   the overlap-ratio study of §IV-B / Fig. 4.
//! * [`blindw`] — Cobra's BlindW family (-W, -RW, -RW+), the paper's
//!   quantitatively controllable key-value workload.
//! * [`smallbank`] — SmallBank with its duplicate-value `amalgamate`.
//! * [`tpcc`] — a simplified TPC-C preserving the dependency structure.
//! * [`runner`] — N client threads, traced sessions, per-client streams.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blindw;
pub mod bundled;
pub mod chaos;
pub mod runner;
pub mod smallbank;
pub mod soak;
pub mod spec;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use blindw::{BlindW, BlindWVariant};
pub use bundled::{bundled_workload, bundled_workload_mini, WorkloadSet, BUNDLED_WORKLOADS};
pub use chaos::{ChaosClock, ChaosPlan, ChaosSink, RetryPolicy};
pub use runner::{
    execute_txn, preload_database, run_chaos_with_sinks, run_chaos_with_sinks_stoppable,
    run_collect, run_with_sinks, RunLimit, RunOutput, RunStats,
};
pub use smallbank::SmallBank;
pub use soak::{run_soak, SoakOptions, SoakReport, StreamOutcome};
pub use spec::{TxnStep, UniqueValues, ValueRule, WorkloadGen};
pub use tpcc::TpcC;
pub use ycsb::YcsbA;
pub use zipf::Zipfian;
