//! Workload specification: transactions as declarative step lists.
//!
//! Generators emit [`TxnStep`]s; the runner interprets them against a
//! traced session. Keeping transactions declarative lets the same
//! workload drive the live engine, the offline trace collector, and the
//! property tests.

use leopard_core::{Key, Value};
use rand::rngs::SmallRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a write derives the value it installs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueRule {
    /// A globally unique value (BlindW's "uniquely written values").
    Unique,
    /// A constant (SmallBank's `amalgamate` zeroing balances — the source
    /// of the duplicate-value uncertainty in Fig. 13(a)).
    Const(u64),
    /// The value read earlier in this transaction from `key`, plus a
    /// wrapping delta (read-modify-write, e.g. balance updates).
    AddToRead(Key, i64),
}

/// One operation of a declarative transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnStep {
    /// Point read.
    Read(Key),
    /// Range read of up to `usize` records starting at `Key`.
    RangeRead(Key, usize),
    /// Locking read (`SELECT ... FOR UPDATE`).
    LockedRead(Key),
    /// Write with a derived value.
    Write(Key, ValueRule),
}

/// Shared source of globally unique written values.
#[derive(Debug, Clone, Default)]
pub struct UniqueValues {
    counter: Arc<AtomicU64>,
}

impl UniqueValues {
    /// A fresh counter starting above the preload value range.
    #[must_use]
    pub fn new() -> UniqueValues {
        UniqueValues {
            counter: Arc::new(AtomicU64::new(1_000_000_000)),
        }
    }

    /// Next unique value.
    #[must_use]
    pub fn next(&self) -> Value {
        // relaxed: the unique-writes guarantee needs distinct values, which
        // the RMW provides; no ordering against other memory is implied.
        Value(self.counter.fetch_add(1, Ordering::Relaxed))
    }
}

/// A transaction generator: one instance per client thread.
pub trait WorkloadGen: Send {
    /// Initial database contents. Called once, on one instance.
    fn preload(&self) -> Vec<(Key, Value)>;

    /// The next transaction this client should run.
    fn next_txn(&mut self, rng: &mut SmallRng) -> Vec<TxnStep>;

    /// Workload name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_values_never_repeat() {
        let u = UniqueValues::new();
        let a = u.next();
        let b = u.next();
        assert_ne!(a, b);
        let u2 = u.clone();
        assert_ne!(u2.next(), b, "clones share the counter");
    }
}
