//! Zipfian key sampling, the access-skew model of YCSB (§IV-B, Fig. 4).
//!
//! Implements the classic Gray et al. rejection-free Zipfian generator
//! YCSB uses, plus the "scrambled" variant that spreads the hot ranks
//! across the key space with a multiplicative hash.

use rand::Rng;

/// Zipfian distribution over `0..n` with skew parameter `theta`
/// (`theta = 0` is uniform-ish; YCSB's default hot skew is `0.99`).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// Unscrambled generator: rank 0 is the hottest key.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n >= 2, "need at least two items");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            scramble: false,
        }
    }

    /// Scrambled generator: hot ranks are spread over the key space, as in
    /// YCSB's `ScrambledZipfianGenerator`.
    #[must_use]
    pub fn scrambled(n: u64, theta: f64) -> Zipfian {
        Zipfian {
            scramble: true,
            ..Zipfian::new(n, theta)
        }
    }

    /// Number of items.
    #[must_use]
    pub fn items(&self) -> u64 {
        self.n
    }

    /// Samples one item in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            // Fibonacci-style multiplicative hash keeps the marginal
            // distribution Zipfian while decorrelating rank from key id
            // (the +1 keeps rank 0 from fixing to key 0).
            rank.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipfian, samples: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut h = vec![0u64; z.items() as usize];
        for _ in 0..samples {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn high_theta_concentrates_on_rank_zero() {
        let z = Zipfian::new(1000, 0.99);
        let h = histogram(&z, 100_000);
        // Rank 0 should take a large share under heavy skew: its
        // theoretical probability is 1/ζ(1000, 0.99) ≈ 13 %.
        assert!(h[0] > 10_000, "rank0 got {}", h[0]);
        // And the head must dominate the tail.
        let head: u64 = h[..10].iter().sum();
        let tail: u64 = h[990..].iter().sum();
        assert!(head > 20 * tail.max(1));
    }

    #[test]
    fn low_theta_is_flatter() {
        let z = Zipfian::new(1000, 0.1);
        let h = histogram(&z, 100_000);
        assert!(h[0] < 5_000, "theta=0.1 should be flat-ish, rank0={}", h[0]);
    }

    #[test]
    fn ranks_are_monotone_in_popularity() {
        let z = Zipfian::new(100, 0.9);
        let h = histogram(&z, 200_000);
        assert!(h[0] > h[10]);
        assert!(h[10] > h[80]);
    }

    #[test]
    fn scrambled_moves_the_hot_key() {
        let z = Zipfian::scrambled(1000, 0.99);
        let h = histogram(&z, 100_000);
        let hottest = h.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        assert_ne!(hottest, 0, "scrambling should displace the hot key");
        // Distribution is still skewed (theoretical max share ≈ 13 %).
        assert!(*h.iter().max().unwrap() > 10_000);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_theta_one() {
        let _ = Zipfian::new(10, 1.0);
    }
}
