//! The registry of bundled workloads, shared by the CLI, the oracle's
//! corpus generator and the soundness tests.
//!
//! Two sizings are offered: [`bundled_workload`] keeps the CLI's
//! scale-factor semantics (scale 1 ≈ thousands of rows), while
//! [`bundled_workload_mini`] builds deliberately tiny instances for tests
//! that create thousands of short-lived databases.

use crate::blindw::{BlindW, BlindWVariant};
use crate::smallbank::SmallBank;
use crate::spec::WorkloadGen;
use crate::tpcc::TpcC;
use crate::ycsb::YcsbA;

/// Names accepted by [`bundled_workload`], in stable order.
pub const BUNDLED_WORKLOADS: [&str; 6] = [
    "smallbank",
    "tpcc",
    "ycsb",
    "blindw-w",
    "blindw-rw",
    "blindw-rw+",
];

/// A workload prototype (for preloading) plus one generator per client.
pub type WorkloadSet = (Box<dyn WorkloadGen>, Vec<Box<dyn WorkloadGen>>);

fn blindw_variant(name: &str) -> Option<BlindWVariant> {
    match name {
        "blindw-w" => Some(BlindWVariant::WriteOnly),
        "blindw-rw" => Some(BlindWVariant::ReadWrite),
        "blindw-rw+" => Some(BlindWVariant::ReadWriteRange),
        _ => None,
    }
}

/// Builds a bundled workload by name at the CLI's scale-factor sizing
/// (scale 1: SmallBank 1000 accounts, TPC-C 1 warehouse, YCSB 1000
/// records, BlindW 2000 rows).
///
/// # Errors
/// Returns a message naming the unknown workload.
pub fn bundled_workload(name: &str, scale: u64, clients: usize) -> Result<WorkloadSet, String> {
    let forks = |g: &dyn Fn() -> Box<dyn WorkloadGen>| (0..clients).map(|_| g()).collect();
    match name {
        "smallbank" => {
            let g = SmallBank::new(scale.max(1) * 1_000);
            let gens = forks(&|| Box::new(g.clone()) as _);
            Ok((Box::new(g), gens))
        }
        "tpcc" => {
            let g = TpcC::new(scale.max(1));
            let gens = (0..clients)
                .map(|_| Box::new(g.for_client()) as Box<dyn WorkloadGen>)
                .collect();
            Ok((Box::new(g), gens))
        }
        "ycsb" => {
            let g = YcsbA::new(scale.max(1) * 1_000, 0.9);
            let gens = forks(&|| Box::new(g.clone()) as _);
            Ok((Box::new(g), gens))
        }
        _ => match blindw_variant(name) {
            Some(variant) => {
                let g = BlindW::new(variant).with_table_size(scale.max(1) * 2_000);
                let gens = forks(&|| Box::new(g.clone()) as _);
                Ok((Box::new(g), gens))
            }
            None => Err(format!("unknown workload `{name}`")),
        },
    }
}

/// Builds a tiny instance of a bundled workload: about `rows` preloaded
/// records regardless of the workload's natural scale. Meant for test
/// harnesses (the oracle's corpus generator, the soundness smoke test)
/// that build thousands of short-lived databases.
///
/// # Errors
/// Returns a message naming the unknown workload.
pub fn bundled_workload_mini(name: &str, rows: u64, clients: usize) -> Result<WorkloadSet, String> {
    let rows = rows.max(4);
    let forks = |g: &dyn Fn() -> Box<dyn WorkloadGen>| (0..clients).map(|_| g()).collect();
    match name {
        "smallbank" => {
            // Two rows (checking + savings) per account.
            let g = SmallBank::new(rows / 2);
            let gens = forks(&|| Box::new(g.clone()) as _);
            Ok((Box::new(g), gens))
        }
        "tpcc" => {
            let g = TpcC::new(1);
            let gens = (0..clients)
                .map(|_| Box::new(g.for_client()) as Box<dyn WorkloadGen>)
                .collect();
            Ok((Box::new(g), gens))
        }
        "ycsb" => {
            let g = YcsbA::new(rows, 0.9);
            let gens = forks(&|| Box::new(g.clone()) as _);
            Ok((Box::new(g), gens))
        }
        _ => match blindw_variant(name) {
            Some(variant) => {
                let g = BlindW::new(variant).with_table_size(rows);
                let gens = forks(&|| Box::new(g.clone()) as _);
                Ok((Box::new(g), gens))
            }
            None => Err(format!("unknown workload `{name}`")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundled_name_resolves() {
        for name in BUNDLED_WORKLOADS {
            let (proto, gens) = bundled_workload(name, 1, 3).expect(name);
            assert_eq!(gens.len(), 3, "{name}");
            assert!(!proto.preload().is_empty(), "{name} preloads nothing");
            let (proto, gens) = bundled_workload_mini(name, 32, 2).expect(name);
            assert_eq!(gens.len(), 2, "{name}");
            assert!(!proto.preload().is_empty(), "{name} mini preloads nothing");
        }
    }

    #[test]
    fn mini_instances_are_small() {
        for name in BUNDLED_WORKLOADS {
            if name == "tpcc" {
                continue; // TPC-C's floor is one warehouse.
            }
            let (proto, _) = bundled_workload_mini(name, 32, 1).expect(name);
            assert!(
                proto.preload().len() <= 64,
                "{name} mini preloads {} rows",
                proto.preload().len()
            );
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(bundled_workload("nope", 1, 1).is_err());
        assert!(bundled_workload_mini("nope", 8, 1).is_err());
    }
}
