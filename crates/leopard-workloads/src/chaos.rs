//! Chaos injection for workload runs: client failures and degraded trace
//! transport, all seeded and reproducible.
//!
//! Where [`leopard_db::FaultPlan`] makes the *engine* misbehave (to test
//! that the verifier catches real isolation bugs), a [`ChaosPlan`] makes
//! the *environment* misbehave — clients die mid-transaction without a
//! terminal trace, stall while holding locks, trace deliveries get
//! dropped, duplicated or cut off, and client clocks drift in bursts.
//! None of these are isolation violations, so a sound verifier must
//! never report one because of them; it may only *degrade coverage*
//! (indeterminate transactions, demoted reads, evicted clients).
//!
//! The plan's trigger machinery mirrors [`leopard_db::FaultPlan`]:
//! everything derives deterministically from one seed, so a chaotic run
//! replays bit-identically.

use leopard_core::lockwitness::TrackedMutex;
use leopard_core::Timestamp;
use leopard_core::Trace;
use leopard_db::{Clock, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A seeded chaos scenario for one run. All probabilities are per
/// opportunity (per transaction for client fates, per delivery for
/// transport faults, per clock reading for skew bursts); zero disables
/// the respective fault.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Master seed; every per-client random stream derives from it.
    pub seed: u64,
    /// Probability that a transaction's client is killed mid-transaction:
    /// the connection drops after a prefix of the statements, the engine
    /// rolls back server-side, and — crucially — *no terminal trace is
    /// ever recorded*.
    pub kill_prob: f64,
    /// Probability that a client stalls for [`ChaosPlan::stall`]
    /// mid-transaction (holding its locks, pinning the watermark).
    pub stall_prob: f64,
    /// How long a stalling client sleeps.
    pub stall: Duration,
    /// Probability that a recorded trace is dropped in transport and
    /// never reaches the pipeline.
    pub drop_prob: f64,
    /// Probability that a recorded trace is delivered twice.
    pub dup_prob: f64,
    /// Cut each client's trace stream off after this many deliveries
    /// (the collector-side file/socket truncates); `None` disables.
    pub truncate_after: Option<u64>,
    /// Probability that a clock reading triggers a skew burst, jumping
    /// this client's clock forward by [`ChaosPlan::skew_magnitude`].
    pub skew_burst_prob: f64,
    /// Nanoseconds one skew burst adds to the client's clock offset.
    pub skew_magnitude: u64,
    /// Maximum bursts per client, bounding total divergence so the
    /// verifier can be configured with a sound
    /// [`ChaosPlan::skew_bound`].
    pub max_skew_bursts: u64,
    /// Probability of each seeded disk fault (short write, torn write,
    /// read error, fsync failure, delayed write error) injected into the
    /// verifier's spill tier; see [`ChaosPlan::fault_spec`].
    pub disk_fault_prob: f64,
    /// Spill-tier ENOSPC threshold in bytes (`None` = unlimited disk).
    pub disk_enospc_after_bytes: Option<u64>,
}

impl ChaosPlan {
    /// No chaos: every fault disabled. Runs behave exactly like the
    /// plain runner.
    #[must_use]
    pub fn none() -> ChaosPlan {
        ChaosPlan {
            seed: 0,
            kill_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::ZERO,
            drop_prob: 0.0,
            dup_prob: 0.0,
            truncate_after: None,
            skew_burst_prob: 0.0,
            skew_magnitude: 0,
            max_skew_bursts: 0,
            disk_fault_prob: 0.0,
            disk_enospc_after_bytes: None,
        }
    }

    /// `true` if any fault can fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.kill_prob > 0.0
            || self.stall_prob > 0.0
            || self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.truncate_after.is_some()
            || (self.skew_burst_prob > 0.0 && self.skew_magnitude > 0 && self.max_skew_bursts > 0)
            || self.disk_fault_prob > 0.0
            || self.disk_enospc_after_bytes.is_some()
    }

    /// Maps the plan's disk-fault knobs onto the spill tier's injector
    /// spec: one probability drives every transient shape (short write,
    /// torn write, read error, fsync failure, delayed write error), the
    /// ENOSPC threshold caps the virtual disk, and the injector's seed
    /// derives from the master seed on a private lane so disk faults
    /// replay independently of client fates and transport losses.
    #[must_use]
    pub fn fault_spec(&self) -> leopard_core::FaultSpec {
        leopard_core::FaultSpec {
            seed: self.seed ^ 0xD15C_FA17_5EED_0001,
            enospc_after_bytes: self.disk_enospc_after_bytes,
            short_write_prob: self.disk_fault_prob,
            torn_write_prob: self.disk_fault_prob,
            sync_fail_prob: self.disk_fault_prob,
            read_err_prob: self.disk_fault_prob,
            delayed_write_err_prob: self.disk_fault_prob,
        }
    }

    /// The worst-case clock divergence any client can accumulate under
    /// this plan — feed it to `VerifierConfig::clock_skew_bound` so
    /// interval comparisons stay sound under skew bursts.
    #[must_use]
    pub fn skew_bound(&self) -> u64 {
        if self.skew_burst_prob > 0.0 {
            self.skew_magnitude.saturating_mul(self.max_skew_bursts)
        } else {
            0
        }
    }

    /// The deterministic per-client random stream for client `i` and
    /// `lane` (distinct lanes keep client-fate, transport and clock
    /// randomness independent).
    #[must_use]
    pub(crate) fn client_rng(&self, client: u64, lane: u64) -> SmallRng {
        // SplitMix-style mixing: distinct (seed, client, lane) triples
        // give uncorrelated streams.
        let mut x = self
            .seed
            .wrapping_add(client.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        SmallRng::seed_from_u64(x)
    }
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::none()
    }
}

/// What chaos decided for one transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxnFate {
    /// Execute normally.
    Normal,
    /// Execute the first `steps` statements, then the client dies: the
    /// engine rolls back, no terminal trace is recorded.
    Kill {
        /// Number of leading statements executed before the kill.
        steps: usize,
    },
    /// Sleep for the plan's stall duration before statement `at_step`.
    Stall {
        /// Statement index before which the client stalls.
        at_step: usize,
    },
}

/// Per-client chaos state: fate sampling for each transaction.
#[derive(Debug)]
pub(crate) struct ClientChaos {
    kill_prob: f64,
    stall_prob: f64,
    pub(crate) stall: Duration,
    rng: SmallRng,
}

impl ClientChaos {
    pub(crate) fn new(plan: &ChaosPlan, client: u64) -> ClientChaos {
        ClientChaos {
            kill_prob: plan.kill_prob,
            stall_prob: plan.stall_prob,
            stall: plan.stall,
            rng: plan.client_rng(client, 0),
        }
    }

    /// Samples the fate of the next transaction with `n_steps` statements.
    pub(crate) fn fate(&mut self, n_steps: usize) -> TxnFate {
        if self.kill_prob > 0.0 && self.rng.random_bool(self.kill_prob) {
            return TxnFate::Kill {
                steps: self.rng.random_range(0..=n_steps),
            };
        }
        if self.stall_prob > 0.0 && self.rng.random_bool(self.stall_prob) {
            return TxnFate::Stall {
                at_step: self.rng.random_range(0..=n_steps),
            };
        }
        TxnFate::Normal
    }
}

/// A [`TraceSink`] decorator that models a lossy trace transport:
/// deliveries are dropped, duplicated (back-to-back, as a retrying
/// transport would), or cut off entirely after a point.
#[derive(Debug)]
pub struct ChaosSink<S> {
    inner: S,
    rng: SmallRng,
    drop_prob: f64,
    dup_prob: f64,
    truncate_after: Option<u64>,
    delivered: u64,
    dropped: u64,
    duplicated: u64,
}

impl<S: TraceSink> ChaosSink<S> {
    /// Wraps `inner` with the transport faults of `plan` for `client`.
    #[must_use]
    pub fn new(plan: &ChaosPlan, client: u64, inner: S) -> ChaosSink<S> {
        ChaosSink {
            inner,
            rng: plan.client_rng(client, 1),
            drop_prob: plan.drop_prob,
            dup_prob: plan.dup_prob,
            truncate_after: plan.truncate_after,
            delivered: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Unwraps the underlying sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Deliveries dropped (including everything past a truncation point).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Deliveries duplicated.
    #[must_use]
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
}

impl<S: TraceSink> TraceSink for ChaosSink<S> {
    fn record(&mut self, trace: Trace) {
        if let Some(cut) = self.truncate_after {
            if self.delivered >= cut {
                self.dropped += 1;
                return;
            }
        }
        if self.drop_prob > 0.0 && self.rng.random_bool(self.drop_prob) {
            self.dropped += 1;
            return;
        }
        let dup = self.dup_prob > 0.0 && self.rng.random_bool(self.dup_prob);
        if dup {
            self.inner.record(trace.clone());
            self.duplicated += 1;
        }
        self.inner.record(trace);
        self.delivered += 1;
    }
}

/// A [`Clock`] decorator modelling a client whose clock synchronisation
/// degrades in bursts: each burst jumps this client's readings forward by
/// a fixed magnitude (forward-only, so per-client trace order — the
/// pipeline's Theorem 1 precondition — is preserved), up to a bounded
/// number of bursts so total divergence never exceeds
/// [`ChaosPlan::skew_bound`].
#[derive(Debug)]
pub struct ChaosClock<C> {
    inner: C,
    offset: AtomicU64,
    bursts: AtomicU64,
    burst_prob: f64,
    magnitude: u64,
    max_bursts: u64,
    rng: TrackedMutex<SmallRng>,
}

impl<C: Clock> ChaosClock<C> {
    /// Wraps `inner` with the skew faults of `plan` for `client`.
    #[must_use]
    pub fn new(plan: &ChaosPlan, client: u64, inner: C) -> ChaosClock<C> {
        ChaosClock {
            inner,
            offset: AtomicU64::new(0),
            bursts: AtomicU64::new(0),
            burst_prob: plan.skew_burst_prob,
            magnitude: plan.skew_magnitude,
            max_bursts: plan.max_skew_bursts,
            rng: TrackedMutex::new("ChaosClock.rng", plan.client_rng(client, 2)),
        }
    }

    /// Skew bursts that have fired so far.
    #[must_use]
    pub fn bursts(&self) -> u64 {
        self.bursts.load(Ordering::Relaxed) // relaxed: statistic; read after the session quiesces
    }
}

impl<C: Clock> Clock for ChaosClock<C> {
    fn now(&self) -> Timestamp {
        if self.burst_prob > 0.0
            && self.magnitude > 0
            // relaxed: per-client counter; one client's clock readings are
            // already serialized by the session.
            && self.bursts.load(Ordering::Relaxed) < self.max_bursts
            && self.rng.lock().random_bool(self.burst_prob)
        {
            self.bursts.fetch_add(1, Ordering::Relaxed); // relaxed: per-client counter, session-serialized
            self.offset.fetch_add(self.magnitude, Ordering::Relaxed); // relaxed: per-client counter, session-serialized
        }
        Timestamp(
            self.inner
                .now()
                .0
                // relaxed: per-client counter; one client's clock readings
                // are already serialized by the session.
                .saturating_add(self.offset.load(Ordering::Relaxed)),
        )
    }
}

/// Bounded-retry policy for aborted transaction attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per transaction (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent attempt
    /// (exponential backoff).
    pub base_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is drawn uniformly from
    /// `[backoff·(1−jitter), backoff·(1+jitter)]` (then re-capped at
    /// 1 s), decorrelating retry storms where every aborted client would
    /// otherwise wake at the same instant and collide again. `0` keeps
    /// the classic deterministic schedule.
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries: one attempt per transaction, the classic runner
    /// behavior.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Up to `max_attempts` attempts with exponential backoff starting at
    /// `base_backoff`.
    #[must_use]
    pub fn with_backoff(max_attempts: u32, base_backoff: Duration) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
            jitter: 0.0,
        }
    }

    /// Adds a bounded jitter fraction (clamped to `[0, 1]`) to the
    /// backoff schedule.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> RetryPolicy {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The deterministic backoff before retry number `retry` (1-based):
    /// exponential, capped at 1 s so a long attempt budget cannot sleep
    /// for minutes. This is the jitter-free midpoint; the runner sleeps
    /// [`RetryPolicy::backoff_jittered`].
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(Duration::from_secs(1))
    }

    /// [`RetryPolicy::backoff`] perturbed by the policy's jitter using
    /// `rng` — seeded per client, so a chaotic run still replays
    /// bit-identically. With `jitter == 0` no random draw is made at all
    /// and the schedule (and rng stream) is exactly the classic one.
    #[must_use]
    pub fn backoff_jittered(&self, retry: u32, rng: &mut SmallRng) -> Duration {
        let base = self.backoff(retry);
        if self.jitter <= 0.0 || base.is_zero() {
            return base;
        }
        // A uniform fraction in [0, 1) from the top 53 bits, then mapped
        // to the multiplier band [1-jitter, 1+jitter].
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mult = 1.0 - self.jitter + 2.0 * self.jitter * frac;
        Duration::from_secs_f64(base.as_secs_f64() * mult).min(Duration::from_secs(1))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_core::{ClientId, Interval, OpKind, TxnId};

    fn t(lo: u64) -> Trace {
        Trace::new(
            Interval::new(Timestamp(lo), Timestamp(lo + 1)),
            ClientId(0),
            TxnId(lo),
            OpKind::Commit,
        )
    }

    #[test]
    fn quiet_plan_is_inactive_and_transparent() {
        let plan = ChaosPlan::none();
        assert!(!plan.is_active());
        assert!(
            plan.fault_spec().is_noop(),
            "quiet plan must not fault the disk"
        );
        assert_eq!(plan.skew_bound(), 0);
        let mut sink = ChaosSink::new(&plan, 0, Vec::new());
        for i in 0..100u64 {
            sink.record(t(i));
        }
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.duplicated(), 0);
        assert_eq!(sink.into_inner().len(), 100);
    }

    #[test]
    fn disk_fault_mapping_is_deterministic_and_activates_plan() {
        let plan = ChaosPlan {
            seed: 42,
            disk_fault_prob: 0.25,
            disk_enospc_after_bytes: Some(1 << 20),
            ..ChaosPlan::none()
        };
        assert!(plan.is_active(), "disk faults alone must activate the plan");
        let a = plan.fault_spec();
        let b = plan.fault_spec();
        assert_eq!(a, b, "mapping must be pure");
        assert!(!a.is_noop());
        assert_eq!(a.enospc_after_bytes, Some(1 << 20));
        assert!((a.short_write_prob - 0.25).abs() < f64::EPSILON);
        assert!((a.read_err_prob - 0.25).abs() < f64::EPSILON);
        assert_ne!(
            a.seed,
            ChaosPlan {
                seed: 43,
                ..plan.clone()
            }
            .fault_spec()
            .seed,
            "injector seed must track the master seed"
        );
        assert_ne!(a.seed, plan.seed, "injector seed must be a private lane");
    }

    #[test]
    fn fates_are_reproducible_per_seed() {
        let plan = ChaosPlan {
            seed: 7,
            kill_prob: 0.3,
            stall_prob: 0.3,
            ..ChaosPlan::none()
        };
        let sample = || {
            let mut c = ClientChaos::new(&plan, 2);
            (0..64).map(|_| c.fate(5)).collect::<Vec<_>>()
        };
        assert_eq!(sample(), sample());
        assert!(sample().iter().any(|f| matches!(f, TxnFate::Kill { .. })));
        assert!(sample().iter().any(|f| matches!(f, TxnFate::Stall { .. })));
    }

    #[test]
    fn sink_drops_and_duplicates_deterministically() {
        let plan = ChaosPlan {
            seed: 3,
            drop_prob: 0.2,
            dup_prob: 0.2,
            ..ChaosPlan::none()
        };
        let run = || {
            let mut sink = ChaosSink::new(&plan, 1, Vec::new());
            for i in 0..200u64 {
                sink.record(t(i));
            }
            let (d, dup) = (sink.dropped(), sink.duplicated());
            (sink.into_inner(), d, dup)
        };
        let (a, dropped, duplicated) = run();
        let (b, _, _) = run();
        assert_eq!(a, b);
        assert!(dropped > 0, "p=0.2 over 200 deliveries must drop some");
        assert!(duplicated > 0);
        assert_eq!(a.len() as u64, 200 - dropped + duplicated);
    }

    #[test]
    fn sink_truncates_the_stream() {
        let plan = ChaosPlan {
            truncate_after: Some(10),
            ..ChaosPlan::none()
        };
        let mut sink = ChaosSink::new(&plan, 0, Vec::new());
        for i in 0..50u64 {
            sink.record(t(i));
        }
        assert_eq!(sink.dropped(), 40);
        assert_eq!(sink.into_inner().len(), 10);
    }

    #[test]
    fn clock_bursts_are_forward_only_and_bounded() {
        let plan = ChaosPlan {
            seed: 5,
            skew_burst_prob: 0.5,
            skew_magnitude: 1_000,
            max_skew_bursts: 3,
            ..ChaosPlan::none()
        };
        let base = leopard_db::SimClock::new(1);
        let clock = ChaosClock::new(&plan, 0, base);
        let mut last = Timestamp::ZERO;
        for _ in 0..100 {
            let now = clock.now();
            assert!(now >= last, "chaos clock went backwards");
            last = now;
        }
        assert!(clock.bursts() <= 3);
        assert!(clock.bursts() > 0, "p=0.5 over 100 readings must burst");
        // 100 base ticks + at most 3 bursts of 1000.
        assert!(last.0 <= 100 + plan.skew_bound());
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let r = RetryPolicy::with_backoff(5, Duration::from_millis(10));
        assert_eq!(r.backoff(1), Duration::from_millis(10));
        assert_eq!(r.backoff(2), Duration::from_millis(20));
        assert_eq!(r.backoff(3), Duration::from_millis(40));
        assert_eq!(r.backoff(30), Duration::from_secs(1), "capped at 1 s");
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn jittered_backoff_is_bounded_and_reproducible() {
        let r = RetryPolicy::with_backoff(5, Duration::from_millis(100)).with_jitter(0.5);
        let sample = || {
            let mut rng = SmallRng::seed_from_u64(42);
            (1..=4)
                .map(|i| r.backoff_jittered(i, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = sample();
        assert_eq!(a, sample(), "same seed must give the same schedule");
        for (i, d) in a.iter().enumerate() {
            let base = r.backoff(i as u32 + 1);
            let lo = base.mul_f64(0.5);
            let hi = base.mul_f64(1.5).min(Duration::from_secs(1));
            assert!(
                *d >= lo && *d <= hi,
                "retry {}: {d:?} outside [{lo:?}, {hi:?}]",
                i + 1
            );
        }
        // Zero jitter never draws from the rng and returns the midpoint.
        let plain = RetryPolicy::with_backoff(5, Duration::from_millis(100));
        let mut rng = SmallRng::seed_from_u64(42);
        assert_eq!(plain.backoff_jittered(2, &mut rng), plain.backoff(2));
        let mut rng2 = SmallRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), rng2.next_u64(), "rng stream untouched");
        // Out-of-range jitter clamps.
        assert_eq!(RetryPolicy::none().with_jitter(7.0).jitter, 1.0);
    }
}
