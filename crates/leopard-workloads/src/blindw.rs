//! BlindW: the key-value workload family Cobra introduced and the paper
//! uses for quantitative sweeps (§VI, "Workload").
//!
//! A table of `table_size` keys (2 K by default), 8 operations per
//! transaction, keys accessed uniformly. Three variants:
//!
//! * **BlindW-W** — 100 % blind-write transactions with uniquely written
//!   values (hard for ww tracking: no read precedes a write).
//! * **BlindW-RW** — an even mix of item-read transactions and blind-write
//!   transactions.
//! * **BlindW-RW+** — BlindW-RW with half of the item-reads replaced by
//!   10-key range reads (more dependencies per trace).

use crate::spec::{TxnStep, ValueRule, WorkloadGen};
use leopard_core::{Key, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Which BlindW variant to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlindWVariant {
    /// 100 % blind writes.
    WriteOnly,
    /// 50 % read transactions / 50 % blind-write transactions.
    ReadWrite,
    /// ReadWrite with half the reads turned into 10-key range reads.
    ReadWriteRange,
}

/// BlindW generator.
#[derive(Debug, Clone)]
pub struct BlindW {
    variant: BlindWVariant,
    table_size: u64,
    ops_per_txn: usize,
    range_len: usize,
}

impl BlindW {
    /// Paper defaults: 2 K keys, 8 operations per transaction, 10-key
    /// range reads.
    #[must_use]
    pub fn new(variant: BlindWVariant) -> BlindW {
        BlindW {
            variant,
            table_size: 2_000,
            ops_per_txn: 8,
            range_len: 10,
        }
    }

    /// Overrides the table size.
    #[must_use]
    pub fn with_table_size(mut self, n: u64) -> BlindW {
        self.table_size = n.max(2);
        self
    }

    /// Overrides the transaction length (Fig. 11(c)'s sweep parameter).
    #[must_use]
    pub fn with_ops_per_txn(mut self, n: usize) -> BlindW {
        self.ops_per_txn = n.max(1);
        self
    }

    /// Number of keys in the table.
    #[must_use]
    pub fn table_size(&self) -> u64 {
        self.table_size
    }

    fn key(&self, rng: &mut SmallRng) -> Key {
        Key(rng.random_range(0..self.table_size))
    }
}

impl WorkloadGen for BlindW {
    fn preload(&self) -> Vec<(Key, Value)> {
        (0..self.table_size).map(|k| (Key(k), Value(k))).collect()
    }

    fn next_txn(&mut self, rng: &mut SmallRng) -> Vec<TxnStep> {
        let write_txn = match self.variant {
            BlindWVariant::WriteOnly => true,
            BlindWVariant::ReadWrite | BlindWVariant::ReadWriteRange => rng.random_bool(0.5),
        };
        let mut steps = Vec::with_capacity(self.ops_per_txn);
        if write_txn {
            // Blind writes to distinct keys (a second write to the same key
            // in one transaction would not be blind).
            let mut used = Vec::with_capacity(self.ops_per_txn);
            while used.len() < self.ops_per_txn.min(self.table_size as usize) {
                let k = self.key(rng);
                if !used.contains(&k) {
                    used.push(k);
                }
            }
            for k in used {
                steps.push(TxnStep::Write(k, ValueRule::Unique));
            }
        } else {
            for _ in 0..self.ops_per_txn {
                let range = self.variant == BlindWVariant::ReadWriteRange && rng.random_bool(0.5);
                if range {
                    steps.push(TxnStep::RangeRead(self.key(rng), self.range_len));
                } else {
                    steps.push(TxnStep::Read(self.key(rng)));
                }
            }
        }
        steps
    }

    fn name(&self) -> &'static str {
        match self.variant {
            BlindWVariant::WriteOnly => "BlindW-W",
            BlindWVariant::ReadWrite => "BlindW-RW",
            BlindWVariant::ReadWriteRange => "BlindW-RW+",
        }
    }
}

/// The unique-value pool used by a BlindW family so that clones of a
/// generator (one per client) never write duplicate values.
impl BlindW {
    /// Clones the generator for another client, sharing the unique-value
    /// counter.
    #[must_use]
    pub fn for_client(&self) -> BlindW {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn write_only_produces_only_unique_writes() {
        let mut w = BlindW::new(BlindWVariant::WriteOnly);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let txn = w.next_txn(&mut rng);
            assert_eq!(txn.len(), 8);
            assert!(txn
                .iter()
                .all(|s| matches!(s, TxnStep::Write(_, ValueRule::Unique))));
            // Distinct keys within the transaction.
            let mut keys: Vec<&Key> = txn
                .iter()
                .map(|s| match s {
                    TxnStep::Write(k, _) => k,
                    _ => unreachable!(),
                })
                .collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), 8);
        }
    }

    #[test]
    fn read_write_mixes_txn_kinds() {
        let mut w = BlindW::new(BlindWVariant::ReadWrite);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..200 {
            let txn = w.next_txn(&mut rng);
            match &txn[0] {
                TxnStep::Read(_) => reads += 1,
                TxnStep::Write(..) => writes += 1,
                other => panic!("unexpected step {other:?}"),
            }
        }
        assert!(reads > 50 && writes > 50, "reads={reads} writes={writes}");
    }

    #[test]
    fn range_variant_contains_range_reads() {
        let mut w = BlindW::new(BlindWVariant::ReadWriteRange);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut saw_range = false;
        for _ in 0..100 {
            for s in w.next_txn(&mut rng) {
                if matches!(s, TxnStep::RangeRead(_, 10)) {
                    saw_range = true;
                }
            }
        }
        assert!(saw_range);
    }

    #[test]
    fn preload_covers_the_table() {
        let w = BlindW::new(BlindWVariant::WriteOnly).with_table_size(100);
        assert_eq!(w.preload().len(), 100);
        assert_eq!(w.table_size(), 100);
    }
}
