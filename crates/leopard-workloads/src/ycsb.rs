//! YCSB-A: the update-heavy cloud-serving benchmark used in §IV-B (Fig. 4)
//! to measure the interval-overlap ratio β.
//!
//! Single-record transactions over a Zipfian-skewed key space; the read
//! ratio, skew θ and thread count are the experiment's sweep parameters.

use crate::spec::{TxnStep, ValueRule, WorkloadGen};
use crate::zipf::Zipfian;
use leopard_core::{Key, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// YCSB-A generator.
#[derive(Debug, Clone)]
pub struct YcsbA {
    zipf: Zipfian,
    read_ratio: f64,
}

impl YcsbA {
    /// YCSB-A over `records` keys with skew `theta` and a 50/50 read/update
    /// mix.
    #[must_use]
    pub fn new(records: u64, theta: f64) -> YcsbA {
        YcsbA {
            zipf: Zipfian::scrambled(records, theta),
            read_ratio: 0.5,
        }
    }

    /// Overrides the read ratio (Fig. 4(c)'s sweep).
    #[must_use]
    pub fn with_read_ratio(mut self, r: f64) -> YcsbA {
        self.read_ratio = r.clamp(0.0, 1.0);
        self
    }

    /// Number of records.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.zipf.items()
    }
}

impl WorkloadGen for YcsbA {
    fn preload(&self) -> Vec<(Key, Value)> {
        (0..self.zipf.items()).map(|k| (Key(k), Value(k))).collect()
    }

    fn next_txn(&mut self, rng: &mut SmallRng) -> Vec<TxnStep> {
        let key = Key(self.zipf.sample(rng));
        if rng.random_bool(self.read_ratio) {
            vec![TxnStep::Read(key)]
        } else {
            vec![TxnStep::Write(key, ValueRule::Unique)]
        }
    }

    fn name(&self) -> &'static str {
        "YCSB-A"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_follows_read_ratio() {
        let mut w = YcsbA::new(1000, 0.5).with_read_ratio(0.8);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut reads = 0;
        for _ in 0..1000 {
            if matches!(w.next_txn(&mut rng)[0], TxnStep::Read(_)) {
                reads += 1;
            }
        }
        assert!((700..900).contains(&reads), "reads={reads}");
    }

    #[test]
    fn single_op_transactions() {
        let mut w = YcsbA::new(100, 0.9);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(w.next_txn(&mut rng).len(), 1);
        }
    }

    #[test]
    fn preload_matches_record_count() {
        let w = YcsbA::new(123, 0.5);
        assert_eq!(w.preload().len(), 123);
        assert_eq!(w.records(), 123);
        assert_eq!(w.name(), "YCSB-A");
    }
}
