//! SmallBank: the banking micro-benchmark of Alomari et al., used by the
//! paper as a "complex application logic" workload (§VI).
//!
//! Each account has a savings and a checking balance. Six transaction
//! types exercise read-modify-write chains; `amalgamate` zeroes balances
//! with constant values, which is exactly why some of its dependencies
//! stay uncertain in Fig. 13(a) — duplicate written values cannot be told
//! apart in a candidate version set.

use crate::spec::{TxnStep, ValueRule, WorkloadGen};
use leopard_core::{Key, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// Initial balance of every savings/checking record.
pub const INITIAL_BALANCE: u64 = 10_000;

/// SmallBank generator.
#[derive(Debug, Clone)]
pub struct SmallBank {
    accounts: u64,
    /// Fraction of accounts forming the contended hotspot.
    hotspot: f64,
}

impl SmallBank {
    /// A bank with `accounts` accounts (paper scale factor 1 ≈ 1 000
    /// per-warehouse accounts; pick the size to tune contention).
    #[must_use]
    pub fn new(accounts: u64) -> SmallBank {
        SmallBank {
            accounts: accounts.max(2),
            hotspot: 0.25,
        }
    }

    /// Key of account `a`'s savings balance.
    #[must_use]
    pub fn savings(a: u64) -> Key {
        Key(2 * a)
    }

    /// Key of account `a`'s checking balance.
    #[must_use]
    pub fn checking(a: u64) -> Key {
        Key(2 * a + 1)
    }

    /// Number of accounts.
    #[must_use]
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    fn account(&self, rng: &mut SmallRng) -> u64 {
        // 90 % of accesses hit the hotspot, as in the original benchmark's
        // skewed configuration.
        if rng.random_bool(0.9) {
            let hot = ((self.accounts as f64 * self.hotspot) as u64).max(1);
            rng.random_range(0..hot)
        } else {
            rng.random_range(0..self.accounts)
        }
    }

    fn two_accounts(&self, rng: &mut SmallRng) -> (u64, u64) {
        let a = self.account(rng);
        let mut b = self.account(rng);
        if b == a {
            b = (a + 1) % self.accounts;
        }
        (a, b)
    }
}

impl WorkloadGen for SmallBank {
    fn preload(&self) -> Vec<(Key, Value)> {
        (0..self.accounts)
            .flat_map(|a| {
                [
                    (SmallBank::savings(a), Value(INITIAL_BALANCE)),
                    (SmallBank::checking(a), Value(INITIAL_BALANCE)),
                ]
            })
            .collect()
    }

    fn next_txn(&mut self, rng: &mut SmallRng) -> Vec<TxnStep> {
        let a = self.account(rng);
        let amount = rng.random_range(1..100) as i64;
        match rng.random_range(0..6) {
            // Balance: read both balances.
            0 => vec![
                TxnStep::Read(SmallBank::savings(a)),
                TxnStep::Read(SmallBank::checking(a)),
            ],
            // DepositChecking: checking += amount.
            1 => vec![
                TxnStep::Read(SmallBank::checking(a)),
                TxnStep::Write(
                    SmallBank::checking(a),
                    ValueRule::AddToRead(SmallBank::checking(a), amount),
                ),
            ],
            // TransactSavings: savings += amount.
            2 => vec![
                TxnStep::Read(SmallBank::savings(a)),
                TxnStep::Write(
                    SmallBank::savings(a),
                    ValueRule::AddToRead(SmallBank::savings(a), amount),
                ),
            ],
            // Amalgamate(a, b): move everything from a to b; a's balances
            // are zeroed with *constant* values (the duplicate-value case).
            3 => {
                let (a, b) = self.two_accounts(rng);
                vec![
                    TxnStep::Read(SmallBank::savings(a)),
                    TxnStep::Read(SmallBank::checking(a)),
                    TxnStep::Read(SmallBank::checking(b)),
                    TxnStep::Write(SmallBank::savings(a), ValueRule::Const(0)),
                    TxnStep::Write(SmallBank::checking(a), ValueRule::Const(0)),
                    TxnStep::Write(
                        SmallBank::checking(b),
                        ValueRule::AddToRead(SmallBank::checking(b), amount),
                    ),
                ]
            }
            // WriteCheck: read both balances, checking -= amount.
            4 => vec![
                TxnStep::Read(SmallBank::savings(a)),
                TxnStep::Read(SmallBank::checking(a)),
                TxnStep::Write(
                    SmallBank::checking(a),
                    ValueRule::AddToRead(SmallBank::checking(a), -amount),
                ),
            ],
            // SendPayment(a, b): checking a -= amount, checking b += amount.
            _ => {
                let (a, b) = self.two_accounts(rng);
                vec![
                    TxnStep::Read(SmallBank::checking(a)),
                    TxnStep::Read(SmallBank::checking(b)),
                    TxnStep::Write(
                        SmallBank::checking(a),
                        ValueRule::AddToRead(SmallBank::checking(a), -amount),
                    ),
                    TxnStep::Write(
                        SmallBank::checking(b),
                        ValueRule::AddToRead(SmallBank::checking(b), amount),
                    ),
                ]
            }
        }
    }

    fn name(&self) -> &'static str {
        "SmallBank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn preload_creates_two_keys_per_account() {
        let w = SmallBank::new(10);
        let preload = w.preload();
        assert_eq!(preload.len(), 20);
        assert!(preload.iter().all(|(_, v)| *v == Value(INITIAL_BALANCE)));
    }

    #[test]
    fn savings_and_checking_keys_are_disjoint() {
        for a in 0..100 {
            assert_ne!(SmallBank::savings(a), SmallBank::checking(a));
            assert_ne!(SmallBank::savings(a), SmallBank::checking(a + 1));
            assert_ne!(SmallBank::savings(a + 1), SmallBank::checking(a));
        }
    }

    #[test]
    fn amalgamate_writes_constants() {
        let mut w = SmallBank::new(100);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut saw_const = false;
        for _ in 0..500 {
            for s in w.next_txn(&mut rng) {
                if matches!(s, TxnStep::Write(_, ValueRule::Const(0))) {
                    saw_const = true;
                }
            }
        }
        assert!(saw_const, "amalgamate never generated");
    }

    #[test]
    fn all_six_transaction_shapes_appear() {
        let mut w = SmallBank::new(100);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..500 {
            lens.insert(w.next_txn(&mut rng).len());
        }
        // Shapes have lengths 2 (balance/deposit/transact), 3 (write
        // check), 4 (send payment) and 6 (amalgamate).
        assert!(lens.contains(&2) && lens.contains(&3) && lens.contains(&4) && lens.contains(&6));
    }

    #[test]
    fn writes_always_follow_a_read_of_the_same_key_or_constant() {
        // Every AddToRead write must reference a key that an earlier step
        // in the same transaction read.
        let mut w = SmallBank::new(50);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..500 {
            let txn = w.next_txn(&mut rng);
            let mut read_keys = Vec::new();
            for s in &txn {
                match s {
                    TxnStep::Read(k) => read_keys.push(*k),
                    TxnStep::Write(_, ValueRule::AddToRead(src, _)) => {
                        assert!(read_keys.contains(src), "write depends on unread key");
                    }
                    _ => {}
                }
            }
        }
    }
}
