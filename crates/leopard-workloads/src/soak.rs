//! Soak driver for the `leopard serve` daemon: simulated wire clients
//! hammering a live daemon over the real binary protocol under a
//! [`ChaosPlan`].
//!
//! Each soak stream generates a real workload history (its own little
//! database at the target isolation level), then plays it into the
//! daemon as a sequenced trace stream — while chaos cuts connections
//! (cleanly at frame boundaries or *mid-frame*, the torn tail a killed
//! client leaves behind), duplicates frames, and stalls. Every fault is
//! recoverable by protocol design: duplicates are idempotently dropped
//! by the server's sequence cursor, cuts are resumed from the
//! handshake's `Ack` cursor after a jittered backoff, so every stream
//! must still converge to a clean verdict. The driver is what the CI
//! soak job runs against a daemon that is additionally being `kill -9`ed
//! and restarted underneath it.
//!
//! [`ChaosPlan`] fields are mapped to wire faults: `kill_prob` is the
//! per-frame probability of dropping the connection (half the time
//! mid-frame), `dup_prob` duplicates the frame, `stall_prob` sleeps
//! [`ChaosPlan::stall`] before sending. Engine-side fields
//! (`drop_prob`, skew) are not used — a dropped frame would be a
//! sequence gap, which the server rightly refuses to paper over.

use crate::bundled::bundled_workload_mini;
use crate::chaos::{ChaosPlan, RetryPolicy};
use crate::runner::{preload_database, run_collect, RunLimit};
use leopard_core::serve::{Endpoint, IngestError, StreamVerdict};
use leopard_core::wire::{
    read_frame, write_frame, Frame, Hello, RejectReason, TraceFrame, WIRE_VERSION,
};
use leopard_core::{IsolationLevel, Trace};
use leopard_db::{Database, DbConfig};
use rand::Rng;
use std::io::Write;
use std::sync::Arc;

/// Configuration for one soak run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// The daemon's ingest endpoint.
    pub endpoint: Endpoint,
    /// Number of concurrent client streams.
    pub streams: usize,
    /// Bundled workload name feeding each stream's history.
    pub workload: String,
    /// Transactions per workload client (each stream runs
    /// [`SoakOptions::clients`] workload clients to build its history).
    pub txns: u64,
    /// Workload clients per stream.
    pub clients: usize,
    /// Isolation level each stream asks the daemon to verify.
    pub level: IsolationLevel,
    /// Master seed: workload histories and chaos derive from it.
    pub seed: u64,
    /// Wire chaos (see the module docs for the field mapping).
    pub chaos: ChaosPlan,
    /// Reconnect backoff (jittered) after a chaos cut or a daemon
    /// restart.
    pub retry: RetryPolicy,
    /// Per-stream memory budget sent in the handshake (0 = unlimited).
    pub mem_budget: u64,
    /// Give up on a stream after this many consecutive failed
    /// reconnect attempts (the daemon is presumed gone for good).
    pub max_reconnect_attempts: u32,
}

impl SoakOptions {
    /// A small default soak against `endpoint`: 4 streams of SmallBank.
    #[must_use]
    pub fn new(endpoint: Endpoint) -> SoakOptions {
        SoakOptions {
            endpoint,
            streams: 4,
            workload: "smallbank".to_string(),
            txns: 50,
            clients: 3,
            level: IsolationLevel::Serializable,
            seed: 1,
            chaos: ChaosPlan::none(),
            retry: RetryPolicy::with_backoff(10, std::time::Duration::from_millis(5))
                .with_jitter(0.5),
            mem_budget: 0,
            max_reconnect_attempts: 200,
        }
    }
}

/// Per-stream soak outcome.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Stream name (`soak-<i>`).
    pub stream: String,
    /// Traces in the stream's history.
    pub traces: u64,
    /// Connection cuts chaos injected (clean and torn).
    pub cuts: u64,
    /// Of those, cuts that tore a frame in half.
    pub torn: u64,
    /// Frames delivered twice.
    pub dup_frames: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Connections established: 1 for an undisturbed stream, plus one
    /// per reconnect after a chaos cut or daemon restart.
    pub connections: u64,
    /// The daemon's verdict, or the error that ended the stream.
    pub result: Result<StreamVerdict, String>,
}

/// Aggregated soak report.
#[derive(Debug)]
pub struct SoakReport {
    /// Per-stream outcomes, in stream order.
    pub outcomes: Vec<StreamOutcome>,
}

impl SoakReport {
    /// `true` iff every stream converged to a clean, complete verdict.
    #[must_use]
    pub fn all_clean(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(&o.result, Ok(v) if v.status == "ok" && v.clean && v.complete))
    }

    /// Total chaos injections across all streams.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.cuts + o.dup_frames + o.stalls)
            .sum()
    }

    /// Writes a one-line-per-stream summary.
    pub fn render(&self, out: &mut dyn Write) {
        for o in &self.outcomes {
            match &o.result {
                Ok(v) => {
                    let _ = writeln!(
                        out,
                        "{}: {} traces={} cuts={} (torn {}) dups={} stalls={} connections={} \
                         clean={} complete={}",
                        o.stream,
                        v.status,
                        o.traces,
                        o.cuts,
                        o.torn,
                        o.dup_frames,
                        o.stalls,
                        o.connections,
                        v.clean,
                        v.complete
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "{}: FAILED after {} connections: {e}",
                        o.stream, o.connections
                    );
                }
            }
        }
    }
}

/// Runs the soak: spawns one thread per stream and drives them all to a
/// verdict (or a terminal failure).
pub fn run_soak(opts: &SoakOptions) -> SoakReport {
    let mut joins = Vec::with_capacity(opts.streams);
    for i in 0..opts.streams {
        let opts = opts.clone();
        joins.push(std::thread::spawn(move || drive_stream(&opts, i as u64)));
    }
    let outcomes = joins
        .into_iter()
        .map(|j| match j.join() {
            Ok(o) => o,
            Err(_) => StreamOutcome {
                stream: "?".to_string(),
                traces: 0,
                cuts: 0,
                torn: 0,
                dup_frames: 0,
                stalls: 0,
                connections: 0,
                result: Err("soak client thread panicked".to_string()),
            },
        })
        .collect();
    SoakReport { outcomes }
}

/// A generated stream history plus the preload the verifier needs to
/// seed its database image with.
type History = (Vec<Trace>, Vec<(leopard_core::Key, leopard_core::Value)>);

/// Builds stream `i`'s history: a real workload run against a private
/// database at the soak's isolation level.
fn build_history(opts: &SoakOptions, i: u64) -> Result<History, String> {
    let (proto, gens) = bundled_workload_mini(&opts.workload, 64, opts.clients)?;
    let db = Arc::new(Database::new(DbConfig::at(opts.level)));
    let preload = preload_database(&db, proto.as_ref());
    let out = run_collect(
        &db,
        gens,
        RunLimit::Txns(opts.txns),
        opts.seed
            .wrapping_add(i.wrapping_mul(0x517c_c1b7_2722_0a95)),
    );
    Ok((out.merged_sorted(), preload))
}

/// Drives one stream to its verdict over the chaotic wire.
fn drive_stream(opts: &SoakOptions, i: u64) -> StreamOutcome {
    let stream = format!("soak-{i}");
    let mut outcome = StreamOutcome {
        stream: stream.clone(),
        traces: 0,
        cuts: 0,
        torn: 0,
        dup_frames: 0,
        stalls: 0,
        connections: 0,
        result: Err("did not run".to_string()),
    };
    let (traces, preload) = match build_history(opts, i) {
        Ok(x) => x,
        Err(e) => {
            outcome.result = Err(e);
            return outcome;
        }
    };
    outcome.traces = traces.len() as u64;
    // Lane 3: wire chaos, independent of the engine-side lanes 0-2.
    let mut rng = opts.chaos.client_rng(i, 3);
    let mut failures = 0u32;
    'reconnect: loop {
        if failures >= opts.max_reconnect_attempts {
            outcome.result = Err(format!(
                "gave up after {failures} consecutive failed attempts"
            ));
            return outcome;
        }
        if failures > 0 || outcome.connections > 0 {
            std::thread::sleep(opts.retry.backoff_jittered(failures.max(1), &mut rng));
        }
        let mut sock = match opts.endpoint.connect() {
            Ok(s) => s,
            Err(_) => {
                // Daemon down (restarting under external kill -9).
                failures += 1;
                continue 'reconnect;
            }
        };
        let hello = Frame::Hello(Hello {
            version: WIRE_VERSION,
            stream: stream.clone(),
            description: format!("soak {} {}", opts.workload, opts.level),
            level: opts.level,
            mem_budget: opts.mem_budget,
            preload: preload.clone(),
        });
        if write_frame(&mut sock, &hello)
            .and_then(|()| Ok(sock.flush()?))
            .is_err()
        {
            failures += 1;
            continue 'reconnect;
        }
        let resume_from = match read_frame(&mut sock) {
            Ok(Some(Frame::Ack { resume_from })) => resume_from,
            Ok(Some(Frame::Reject { reason, message })) => match reason {
                // Transient: the server may not have reaped our previous
                // connection yet, or is draining before a restart.
                RejectReason::Admission | RejectReason::Draining => {
                    failures += 1;
                    continue 'reconnect;
                }
                _ => {
                    outcome.result = Err(IngestError::Rejected { reason, message }.to_string());
                    return outcome;
                }
            },
            _ => {
                failures += 1;
                continue 'reconnect;
            }
        };
        failures = 0;
        outcome.connections += 1;
        let mut seq = resume_from;
        for trace in traces.iter().skip(resume_from as usize) {
            seq += 1;
            if opts.chaos.stall_prob > 0.0 && rng.random_bool(opts.chaos.stall_prob) {
                outcome.stalls += 1;
                std::thread::sleep(opts.chaos.stall);
            }
            let frame = Frame::Trace(TraceFrame {
                seq,
                trace: trace.clone(),
            });
            let bytes = frame.to_bytes();
            if opts.chaos.kill_prob > 0.0 && rng.random_bool(opts.chaos.kill_prob) {
                outcome.cuts += 1;
                // Half the cuts tear the frame mid-bytes: the torn tail a
                // killed client leaves on the socket.
                if bytes.len() > 1 && rng.random_bool(0.5) {
                    outcome.torn += 1;
                    let cut = rng.random_range(1..bytes.len() as u64) as usize;
                    let _ = sock.write_all(&bytes[..cut]);
                }
                let _ = sock.flush();
                drop(sock);
                continue 'reconnect;
            }
            let dup = opts.chaos.dup_prob > 0.0 && rng.random_bool(opts.chaos.dup_prob);
            let mut payload = bytes.clone();
            if dup {
                outcome.dup_frames += 1;
                payload.extend_from_slice(&bytes);
            }
            if sock.write_all(&payload).is_err() {
                failures += 1;
                continue 'reconnect;
            }
        }
        let bye = Frame::Bye { traces_sent: seq };
        if write_frame(&mut sock, &bye)
            .and_then(|()| Ok(sock.flush()?))
            .is_err()
        {
            failures += 1;
            continue 'reconnect;
        }
        match read_frame(&mut sock) {
            Ok(Some(Frame::Verdict { json })) => {
                outcome.result =
                    StreamVerdict::from_json(&json).map_err(|e| format!("bad verdict json: {e}"));
                return outcome;
            }
            Ok(Some(Frame::Reject { reason, message })) => {
                outcome.result = Err(IngestError::Rejected { reason, message }.to_string());
                return outcome;
            }
            _ => {
                // Daemon died between Bye and Verdict; replay converges.
                failures += 1;
                continue 'reconnect;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_core::serve::{ServeOptions, Server};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leopard-soak-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chaotic_soak_converges_to_clean_verdicts() {
        let dir = temp_dir("chaos");
        let ingest = Endpoint::Unix(dir.join("ingest.sock"));
        let mut sopts = ServeOptions::new(dir.join("ckpt"));
        sopts.checkpoint_every = 16;
        let server = Server::bind(&ingest, None, sopts).unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());

        let mut opts = SoakOptions::new(ingest);
        opts.streams = 3;
        opts.txns = 20;
        opts.clients = 2;
        opts.chaos = ChaosPlan {
            seed: 11,
            kill_prob: 0.02,
            dup_prob: 0.05,
            stall_prob: 0.0,
            ..ChaosPlan::none()
        };
        let report = run_soak(&opts);
        let mut rendered = Vec::new();
        report.render(&mut rendered);
        assert!(
            report.all_clean(),
            "soak must converge despite chaos:\n{}",
            String::from_utf8_lossy(&rendered)
        );
        assert!(
            report.outcomes.iter().any(|o| o.cuts > 0),
            "chaos must actually fire for the soak to mean anything"
        );
        assert!(report.outcomes.iter().any(|o| o.dup_frames > 0));
        handle.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
