//! A simplified TPC-C over the key-value substrate: the paper's "complex
//! application logic" workload (§VI).
//!
//! The five standard transaction profiles (NewOrder, Payment, OrderStatus,
//! Delivery, StockLevel) are mapped onto the KV engine with the usual
//! region encoding of composite keys. Semantics are simplified — order
//! lines are numbered per client instead of through the district counter —
//! but the *dependency structure* the verifier sees is faithful:
//! read-modify-write chains over contended counters, blind inserts of new
//! order lines, range reads, and repeated constant writes (carrier ids),
//! which reproduce TPC-C's residual uncertain dependencies in Fig. 13(b)
//! (the paper's cause is partial-attribute access; ours is duplicate
//! values — both manifest as candidate-set ambiguity).

use crate::spec::{TxnStep, ValueRule, WorkloadGen};
use leopard_core::{Key, Value};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Districts per warehouse (TPC-C standard).
pub const DISTRICTS: u64 = 10;

const WAREHOUSE_BASE: u64 = 1_000_000;
const DISTRICT_BASE: u64 = 2_000_000;
const DELIVERY_BASE: u64 = 3_000_000;
const CARRIER_BASE: u64 = 4_000_000;
const CUSTOMER_BASE: u64 = 10_000_000;
const STOCK_BASE: u64 = 100_000_000;
const ORDER_BASE: u64 = 1_000_000_000;

/// Simplified TPC-C generator. One instance per client (use
/// [`TpcC::for_client`]); clones share nothing but the sizing parameters
/// and the client-id allocator.
#[derive(Debug)]
pub struct TpcC {
    warehouses: u64,
    customers_per_district: u64,
    items: u64,
    client_ids: Arc<AtomicU64>,
    my_client: u64,
    next_order: u64,
}

impl TpcC {
    /// `scale_factor` warehouses with downsized customer/item counts that
    /// preserve TPC-C's contention profile at laptop scale.
    #[must_use]
    pub fn new(scale_factor: u64) -> TpcC {
        let ids = Arc::new(AtomicU64::new(0));
        TpcC {
            warehouses: scale_factor.max(1),
            customers_per_district: 100,
            items: 1_000,
            // relaxed: client-id allocation needs uniqueness only.
            my_client: ids.fetch_add(1, Ordering::Relaxed),
            client_ids: ids,
            next_order: 0,
        }
    }

    /// A generator for another client, sharing the sizing and the client
    /// id allocator.
    #[must_use]
    pub fn for_client(&self) -> TpcC {
        TpcC {
            warehouses: self.warehouses,
            customers_per_district: self.customers_per_district,
            items: self.items,
            // relaxed: client-id allocation needs uniqueness only.
            my_client: self.client_ids.fetch_add(1, Ordering::Relaxed),
            client_ids: Arc::clone(&self.client_ids),
            next_order: 0,
        }
    }

    /// Warehouse YTD key.
    #[must_use]
    pub fn warehouse(w: u64) -> Key {
        Key(WAREHOUSE_BASE + w)
    }

    /// District order-counter key.
    #[must_use]
    pub fn district(w: u64, d: u64) -> Key {
        Key(DISTRICT_BASE + w * DISTRICTS + d)
    }

    /// District delivery-counter key.
    #[must_use]
    pub fn delivery_counter(w: u64, d: u64) -> Key {
        Key(DELIVERY_BASE + w * DISTRICTS + d)
    }

    /// District carrier-assignment key (written with small constant ids).
    #[must_use]
    pub fn carrier(w: u64, d: u64) -> Key {
        Key(CARRIER_BASE + w * DISTRICTS + d)
    }

    /// Customer balance key.
    #[must_use]
    pub fn customer(&self, w: u64, d: u64, c: u64) -> Key {
        Key(CUSTOMER_BASE + (w * DISTRICTS + d) * self.customers_per_district + c)
    }

    /// Stock quantity key.
    #[must_use]
    pub fn stock(&self, w: u64, i: u64) -> Key {
        Key(STOCK_BASE + w * self.items + i)
    }

    fn order_line(&self, order: u64, line: u64) -> Key {
        Key(ORDER_BASE + self.my_client * 10_000_000 + order * 20 + line)
    }

    fn wh(&self, rng: &mut SmallRng) -> u64 {
        rng.random_range(0..self.warehouses)
    }
}

impl WorkloadGen for TpcC {
    fn preload(&self) -> Vec<(Key, Value)> {
        let mut rows = Vec::new();
        for w in 0..self.warehouses {
            rows.push((TpcC::warehouse(w), Value(0)));
            for d in 0..DISTRICTS {
                rows.push((TpcC::district(w, d), Value(1)));
                rows.push((TpcC::delivery_counter(w, d), Value(1)));
                rows.push((TpcC::carrier(w, d), Value(0)));
                for c in 0..self.customers_per_district {
                    rows.push((self.customer(w, d, c), Value(1_000)));
                }
            }
            for i in 0..self.items {
                rows.push((self.stock(w, i), Value(100)));
            }
        }
        rows
    }

    fn next_txn(&mut self, rng: &mut SmallRng) -> Vec<TxnStep> {
        let w = self.wh(rng);
        let d = rng.random_range(0..DISTRICTS);
        let c = rng.random_range(0..self.customers_per_district);
        // Standard TPC-C mix: 45/43/4/4/4.
        match rng.random_range(0..100) {
            // NewOrder.
            0..45 => {
                let mut steps = vec![
                    TxnStep::Read(TpcC::warehouse(w)),
                    TxnStep::Read(TpcC::district(w, d)),
                    TxnStep::Write(
                        TpcC::district(w, d),
                        ValueRule::AddToRead(TpcC::district(w, d), 1),
                    ),
                    TxnStep::Read(self.customer(w, d, c)),
                ];
                let order = self.next_order;
                self.next_order += 1;
                let lines = rng.random_range(5..=15u64);
                for line in 0..lines {
                    let item = rng.random_range(0..self.items);
                    let qty = rng.random_range(1..=10i64);
                    let stock = self.stock(w, item);
                    steps.push(TxnStep::Read(stock));
                    steps.push(TxnStep::Write(stock, ValueRule::AddToRead(stock, -qty)));
                    steps.push(TxnStep::Write(
                        self.order_line(order, line),
                        ValueRule::Unique,
                    ));
                }
                steps
            }
            // Payment.
            45..88 => {
                let amount = rng.random_range(1..500) as i64;
                vec![
                    TxnStep::Read(TpcC::warehouse(w)),
                    TxnStep::Write(
                        TpcC::warehouse(w),
                        ValueRule::AddToRead(TpcC::warehouse(w), amount),
                    ),
                    TxnStep::Read(TpcC::district(w, d)),
                    TxnStep::Read(self.customer(w, d, c)),
                    TxnStep::Write(
                        self.customer(w, d, c),
                        ValueRule::AddToRead(self.customer(w, d, c), -amount),
                    ),
                ]
            }
            // OrderStatus: customer + the client's recent order lines.
            88..92 => {
                let recent = self.next_order.saturating_sub(1);
                vec![
                    TxnStep::Read(self.customer(w, d, c)),
                    TxnStep::RangeRead(self.order_line(recent, 0), 15),
                ]
            }
            // Delivery: bump the delivery counter, assign a (repeating)
            // carrier id, credit the customer.
            92..96 => {
                let carrier = rng.random_range(1..=10u64);
                vec![
                    TxnStep::Read(TpcC::delivery_counter(w, d)),
                    TxnStep::Write(
                        TpcC::delivery_counter(w, d),
                        ValueRule::AddToRead(TpcC::delivery_counter(w, d), 1),
                    ),
                    TxnStep::Write(TpcC::carrier(w, d), ValueRule::Const(carrier)),
                    TxnStep::Read(self.customer(w, d, c)),
                    TxnStep::Write(
                        self.customer(w, d, c),
                        ValueRule::AddToRead(self.customer(w, d, c), 50),
                    ),
                ]
            }
            // StockLevel: district + a window of stock records.
            _ => {
                let from = rng.random_range(0..self.items.saturating_sub(20).max(1));
                vec![
                    TxnStep::Read(TpcC::district(w, d)),
                    TxnStep::RangeRead(self.stock(w, from), 20),
                ]
            }
        }
    }

    fn name(&self) -> &'static str {
        "TPC-C"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn key_regions_do_not_collide() {
        let t = TpcC::new(4);
        let keys = [
            TpcC::warehouse(3),
            TpcC::district(3, 9),
            TpcC::delivery_counter(3, 9),
            TpcC::carrier(3, 9),
            t.customer(3, 9, 99),
            t.stock(3, 999),
            t.order_line(49_999, 19),
        ];
        let mut sorted = keys.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn preload_size_scales_with_warehouses() {
        let one = TpcC::new(1).preload().len();
        let two = TpcC::new(2).preload().len();
        assert_eq!(two, 2 * one);
        // 1 warehouse + 10*(district+delivery+carrier) + 10*100 customers
        // + 1000 stocks.
        assert_eq!(one, 1 + 30 + 1000 + 1000);
    }

    #[test]
    fn new_order_reads_before_writing_stock() {
        let mut t = TpcC::new(1);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let txn = t.next_txn(&mut rng);
            let mut read: Vec<Key> = Vec::new();
            for s in &txn {
                match s {
                    TxnStep::Read(k) => read.push(*k),
                    TxnStep::Write(_, ValueRule::AddToRead(src, _)) => {
                        assert!(read.contains(src));
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn clients_get_disjoint_order_regions() {
        let a = TpcC::new(1);
        let b = a.for_client();
        assert_ne!(a.order_line(0, 0), b.order_line(0, 0));
    }

    #[test]
    fn mix_contains_all_five_profiles() {
        let mut t = TpcC::new(1);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut has_carrier_write = false;
        let mut has_range = false;
        let mut has_order_insert = false;
        let mut has_payment = false;
        for _ in 0..500 {
            let txn = t.next_txn(&mut rng);
            for s in &txn {
                match s {
                    TxnStep::Write(k, ValueRule::Const(_)) if k.0 >= CARRIER_BASE => {
                        has_carrier_write = true;
                    }
                    TxnStep::Write(k, ValueRule::Unique) if k.0 >= ORDER_BASE => {
                        has_order_insert = true;
                    }
                    TxnStep::RangeRead(..) => has_range = true,
                    TxnStep::Write(k, _) if k.0 < DISTRICT_BASE => has_payment = true,
                    _ => {}
                }
            }
        }
        assert!(has_carrier_write && has_range && has_order_insert && has_payment);
    }
}
