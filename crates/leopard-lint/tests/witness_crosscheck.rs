//! Cross-check the runtime lock-order witness against the static L101
//! graph.
//!
//! Drives a multithreaded workload through every `TrackedMutex` in the
//! workspace — engine sessions under a probability fault (`Storage.map`,
//! `Database.active`, `Trigger.rng`), an online verifier chain
//! (`Shared.open`), and a chaos clock (`ChaosClock.rng`) — then asserts
//! that what the witness recorded is consistent with what the static
//! analyzer derived from source:
//!
//! 1. no runtime lock-order violation was observed;
//! 2. every lock the runtime registered is in the static inventory,
//!    under the same `Owner.field` identity;
//! 3. the union of static and observed acquired-while-held edges is
//!    acyclic — the runtime never acquires in an order the static graph
//!    believes to be reversed.

use leopard_core::lockwitness;
use leopard_core::{IsolationLevel, Key, OnlineLeopard, Value, VerifierConfig};
use leopard_db::{Database, DbConfig, FaultKind, FaultPlan, SimClock};
use leopard_workloads::{ChaosClock, ChaosPlan};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

/// DFS cycle check over a string-labelled edge set.
fn acyclic(edges: &BTreeSet<(String, String)>) -> bool {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges {
        adj.entry(from).or_default().push(to);
    }
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let mut on_path: BTreeSet<&str> = BTreeSet::new();
    fn visit<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        done: &mut BTreeSet<&'a str>,
        on_path: &mut BTreeSet<&'a str>,
    ) -> bool {
        if done.contains(node) {
            return true;
        }
        if !on_path.insert(node) {
            return false;
        }
        for next in adj.get(node).into_iter().flatten() {
            if !visit(next, adj, done, on_path) {
                return false;
            }
        }
        on_path.remove(node);
        done.insert(node);
        true
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    nodes
        .iter()
        .all(|n| visit(n, &adj, &mut done, &mut on_path))
}

fn run_workload() {
    // Engine sessions from several threads, with a probability fault so
    // Trigger.rng is drawn on every opportunity check.
    let db = Database::with_faults(
        DbConfig::at(IsolationLevel::Serializable),
        FaultPlan::with_probability(FaultKind::SkipCertifier, 0.2, 42),
    );
    db.preload(Key(1), Value(0));
    let threads: Vec<_> = (0..4)
        .map(|t: u64| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut s = db.session();
                for i in 0..50 {
                    s.begin();
                    let _ = s.read(Key(1));
                    let _ = s.write(Key(1), Value(t * 100 + i));
                    let _ = s.commit();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("workload thread");
    }

    // An online chain: the worker publishes open clients via Shared.open.
    let (online, handles) = OnlineLeopard::start(
        2,
        VerifierConfig::for_level(IsolationLevel::Serializable),
        vec![(Key(1), Value(0))],
    );
    drop(handles);
    let _ = online.finish();

    // A chaos clock with skew bursts enabled draws from ChaosClock.rng.
    let mut plan = ChaosPlan::none();
    plan.skew_burst_prob = 0.5;
    plan.skew_magnitude = 2;
    plan.max_skew_bursts = 3;
    let clock = ChaosClock::new(&plan, 0, SimClock::new(1));
    for _ in 0..32 {
        let _ = leopard_db::Clock::now(&clock);
    }
}

#[test]
fn runtime_witness_is_consistent_with_the_static_graph() {
    run_workload();

    let violations = lockwitness::order_violations();
    assert!(
        violations.is_empty(),
        "runtime lock-order violations: {violations:?}"
    );

    let registered: BTreeSet<String> = lockwitness::registered_locks()
        .into_iter()
        .map(str::to_string)
        .collect();
    if cfg!(debug_assertions) {
        // The workload above touches every tracked lock.
        for expected in [
            "Storage.map",
            "Database.active",
            "Trigger.rng",
            "Shared.open",
            "ChaosClock.rng",
        ] {
            assert!(
                registered.contains(expected),
                "workload never acquired {expected}; registered: {registered:?}"
            );
        }
    } else {
        assert!(registered.is_empty());
        return;
    }

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = leopard_lint::analyze_workspace(&root).expect("workspace scan");

    // Every runtime lock identity exists in the static shared-state
    // inventory as a lock-kind entry.
    let static_locks: BTreeSet<&str> = analysis
        .manifest
        .iter()
        .filter(|e| matches!(e.kind.as_str(), "mutex" | "rwlock" | "condvar"))
        .map(|e| e.id.as_str())
        .collect();
    for name in &registered {
        assert!(
            static_locks.contains(name.as_str()),
            "runtime lock {name} is unknown to the static inventory"
        );
    }

    // The union of static and observed acquired-while-held edges must be
    // acyclic: a cycle would mean the runtime took locks in an order the
    // static graph holds in the opposite direction (or vice versa).
    let mut union: BTreeSet<(String, String)> = analysis
        .lock_graph
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    for (from, to) in lockwitness::observed_edges() {
        // Only workspace locks participate; unit tests elsewhere in this
        // process could register scratch locks, but this test binary runs
        // alone, so observed edges are ours.
        union.insert((from.to_string(), to.to_string()));
    }
    assert!(
        acyclic(&union),
        "static + observed lock-order edges contain a cycle: {union:?}"
    );
}
