//! Property test: the hand-rolled lexer never desyncs on raw strings,
//! nested block comments, or `//` sequences inside string literals.
//!
//! Every fragment below is a self-contained chunk that returns the lexer
//! to plain-code state, seeded with sentinels that may only ever surface
//! in one channel:
//!
//! * `ZQCMT` appears only inside comments — it must land in the comment
//!   channel, never in code;
//! * `ZQSTR` appears only inside string/raw-string literals — the lexer
//!   blanks literal contents (so token lints cannot fire on strings), so
//!   it must appear in *neither* channel;
//! * `zqcode` appears exactly once per fragment as real code — losing
//!   one means a literal or comment swallowed the rest of a line.
//!
//! For any concatenation of fragments, each sentinel's occurrence count
//! per channel must match: nothing lost, nothing leaked across channels,
//! line structure intact, state back in sync at every fragment boundary.

use leopard_lint::lexer;
use proptest::prelude::*;

const FRAGMENTS: &[&str] = &[
    "let zqcode = 0;\n",
    "// ZQCMT plain line comment\nlet zqcode = 1;\n",
    "let s = \"ZQSTR // /* not special */ \\\" still ZQSTR\"; let zqcode = 2;\n",
    "let r = r#\"ZQSTR \" // /* \"#; let zqcode = 3;\n",
    "/* ZQCMT spanning\nZQCMT lines */ let zqcode = 4;\n",
    "/* a /* nested ZQCMT */ ZQCMT */ let zqcode = 5;\n",
    "let url = \"http://e.com/ZQSTR\"; let zqcode = 6; // ZQCMT trail\n",
];

fn count(hay: &str, needle: &str) -> usize {
    hay.matches(needle).count()
}

proptest! {
    #[test]
    fn lexer_routes_every_sentinel_to_its_channel(
        idxs in prop::collection::vec(0usize..7, 1..40)
    ) {
        let source: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let scan = lexer::scan_lines(&source);

        let code: String = scan
            .lines
            .iter()
            .map(|l| format!("{}\n", l.code))
            .collect();
        let comment: String = scan
            .lines
            .iter()
            .map(|l| format!("{}\n", l.comment))
            .collect();

        // Line structure is preserved exactly.
        prop_assert_eq!(scan.lines.len(), source.lines().count());
        // Real code is never swallowed: one `zqcode` per fragment.
        prop_assert_eq!(count(&code, "zqcode"), idxs.len());
        // Comment text never leaks into code, and is never dropped.
        prop_assert_eq!(count(&code, "ZQCMT"), 0);
        prop_assert_eq!(count(&comment, "ZQCMT"), count(&source, "ZQCMT"));
        // String contents are blanked: they surface in neither channel.
        prop_assert_eq!(count(&code, "ZQSTR"), 0);
        prop_assert_eq!(count(&comment, "ZQSTR"), 0);
    }
}
