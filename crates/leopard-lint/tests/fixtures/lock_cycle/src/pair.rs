//! Seeded L101 fixture: two locks acquired in opposite orders by two
//! methods — the canonical AB/BA deadlock. The fixture test pins the
//! exact cycle finding the analyzer must produce.

use std::sync::Mutex;

pub struct Pair {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.second.lock().unwrap();
        let a = self.first.lock().unwrap();
        *a + *b
    }
}
