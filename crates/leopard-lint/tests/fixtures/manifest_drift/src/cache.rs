//! Seeded L103 fixture: one shared-state field the baseline does not
//! know about, while the baseline names a field that no longer exists.

use std::sync::Mutex;

pub struct Cache {
    entries: Mutex<Vec<u64>>,
}

impl Cache {
    pub fn push(&self, v: u64) {
        self.entries.lock().unwrap().push(v);
    }
}
