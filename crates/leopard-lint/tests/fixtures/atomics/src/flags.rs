//! Seeded L102/L003 fixture: an unpaired Release store, a Relaxed access
//! to a field that elsewhere uses stronger orderings, and an unjustified
//! Relaxed counter. The fixture test pins the exact findings.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Flags {
    ready: AtomicBool,
    state: AtomicU64,
    ticks: AtomicU64,
}

impl Flags {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    pub fn advance(&self) -> u64 {
        self.state.store(1, Ordering::Release);
        let _ = self.state.load(Ordering::Acquire);
        // relaxed: deliberate mixed-ordering seed for the L102 fixture
        self.state.load(Ordering::Relaxed)
    }

    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }
}
