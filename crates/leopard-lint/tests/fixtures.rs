//! Golden fixture corpus: each directory under `tests/fixtures/` seeds
//! one violation class, and the analyzer must report *exactly* the
//! expected findings — same file, line, code, and message. The fixture
//! trees are skipped by the workspace walk (`collect_rust_files` prunes
//! any directory named `fixtures`), so these violations never pollute
//! the real workspace scan; only these tests analyze them, each as its
//! own miniature workspace root.

use leopard_lint::{analyze_workspace, Analysis};
use std::path::PathBuf;

fn analyze(fixture: &str) -> Analysis {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    analyze_workspace(&root).expect("fixture scan")
}

fn rendered(analysis: &Analysis) -> Vec<String> {
    analysis.findings.iter().map(|f| f.to_string()).collect()
}

#[test]
fn lock_cycle_fixture_yields_the_exact_cycle_finding() {
    let analysis = analyze("lock_cycle");
    assert_eq!(
        rendered(&analysis),
        vec![
            "src/pair.rs:15: L101: lock-order cycle among {Pair.first, Pair.second}: \
             Pair.first -> Pair.second (src/pair.rs:15 in Pair::forward); \
             Pair.second -> Pair.first (src/pair.rs:21 in Pair::backward)"
                .to_string()
        ]
    );
    // Both directions are present in the exported graph.
    assert!(analysis.lock_graph.has_edge("Pair.first", "Pair.second"));
    assert!(analysis.lock_graph.has_edge("Pair.second", "Pair.first"));
}

#[test]
fn atomics_fixture_yields_the_exact_pairing_findings() {
    let analysis = analyze("atomics");
    assert_eq!(
        rendered(&analysis),
        vec![
            "src/flags.rs:15: L102: Release-ordered write to Flags.ready is never paired \
             with an Acquire-or-stronger load"
                .to_string(),
            "src/flags.rs:22: L102: Relaxed access to Flags.state, which is elsewhere \
             accessed with stronger orderings"
                .to_string(),
            "src/flags.rs:26: L003: `Ordering::Relaxed` without a justification comment; \
             add `// relaxed: <why this ordering is sufficient>` or use a stronger ordering"
                .to_string(),
        ]
    );
}

#[test]
fn manifest_drift_fixture_yields_the_exact_baseline_findings() {
    let analysis = analyze("manifest_drift");
    assert_eq!(
        rendered(&analysis),
        vec![
            "crates/leopard-lint/shared_state_baseline.json:1: L103: baseline entry \
             Cache.retired (mutex) no longer exists in the workspace — regenerate the \
             baseline with `leopard-lint --update-baseline`"
                .to_string(),
            "src/cache.rs:7: L103: new shared state Cache.entries (mutex) is not in \
             crates/leopard-lint/shared_state_baseline.json — review it and regenerate \
             the baseline with `leopard-lint --update-baseline`"
                .to_string(),
        ]
    );
    // The manifest itself still records the live field.
    assert!(analysis.manifest.iter().any(|e| e.id == "Cache.entries"));
}
