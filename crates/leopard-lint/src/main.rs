//! `leopard-lint` — run the workspace lints (L001–L004) and exit non-zero
//! on any violation. See the library docs for the lint table and the
//! allow-comment escape hatch.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
leopard-lint — Leopard workspace static analysis (L001-L004)

USAGE:
  leopard-lint [--root <DIR>]

Scans every .rs file under the workspace root (default: the workspace this
binary was built from), reports violations as `file:line: Lxxx: message`,
and exits 1 if any are found.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a value\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // The crate lives at <workspace>/crates/leopard-lint.
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    match leopard_lint::scan_workspace(&root) {
        Ok((findings, scanned)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("leopard-lint: {scanned} files clean");
                ExitCode::SUCCESS
            } else {
                println!(
                    "leopard-lint: {} violation(s) across {scanned} scanned files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("leopard-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
