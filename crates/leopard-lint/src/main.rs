//! `leopard-lint` — run the workspace lints (token lints L001–L004 plus
//! the concurrency passes L101–L103) and exit non-zero on any violation.
//! See the library docs for the lint table and the allow-comment escape
//! hatch.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
leopard-lint — Leopard workspace static analysis (L001-L004, L101-L103)

USAGE:
  leopard-lint [--root <DIR>] [--json] [--manifest-out <FILE>] [--update-baseline]

OPTIONS:
  --root <DIR>          Workspace root to scan (default: the workspace this
                        binary was built from)
  --json                Print findings as a JSON array instead of
                        `file:line: Lxxx: message` lines
  --manifest-out <FILE> Write the shared-state manifest (shared_state.json)
                        to FILE after the scan
  --update-baseline     Rewrite crates/leopard-lint/shared_state_baseline.json
                        from the current workspace instead of diffing against
                        it (L103 findings are recomputed after the update)

Exits 0 when clean, 1 on violations, 2 on usage or I/O errors.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut manifest_out: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a value\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--manifest-out" => match args.next() {
                Some(path) => manifest_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --manifest-out needs a value\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // The crate lives at <workspace>/crates/leopard-lint.
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    if update_baseline {
        // Rewrite the baseline first so the analysis below diffs cleanly.
        match leopard_lint::analyze_workspace(&root) {
            Ok(analysis) => {
                let path = root.join(leopard_lint::manifest::BASELINE_REL);
                if let Err(e) = std::fs::write(&path, &analysis.manifest_json) {
                    eprintln!("leopard-lint: writing {} failed: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!(
                    "leopard-lint: baseline updated ({} shared-state entries)",
                    analysis.manifest.len()
                );
            }
            Err(e) => {
                eprintln!("leopard-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match leopard_lint::analyze_workspace(&root) {
        Ok(analysis) => {
            if let Some(path) = &manifest_out {
                if let Err(e) = std::fs::write(path, &analysis.manifest_json) {
                    eprintln!("leopard-lint: writing {} failed: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            let findings = &analysis.findings;
            let scanned = analysis.scanned;
            if json {
                println!("[");
                for (i, f) in findings.iter().enumerate() {
                    println!(
                        "  {}{}",
                        f.to_json(),
                        if i + 1 < findings.len() { "," } else { "" }
                    );
                }
                println!("]");
            } else {
                for f in findings {
                    println!("{f}");
                }
            }
            if findings.is_empty() {
                eprintln!(
                    "leopard-lint: {scanned} files clean ({} shared-state entries, {} lock-order edges)",
                    analysis.manifest.len(),
                    analysis.lock_graph.edges.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "leopard-lint: {} violation(s) across {scanned} scanned files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("leopard-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
