//! `leopard-lint` — run the workspace lints (token lints L001–L004 plus
//! the concurrency passes L101–L103) and exit non-zero on any violation.
//! See the library docs for the lint table and the allow-comment escape
//! hatch.
//!
//! Findings go to stdout (text or `--json`); everything else — progress,
//! summaries, failures — is emitted on stderr as single-line JSON events
//! (`{"tool":"leopard-lint","level":...,"event":...,"message":...}`) so
//! wrapper scripts can grep for machine-stable markers instead of prose.
//! `--quiet` suppresses `info` events; `error` events always print.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
leopard-lint — Leopard workspace static analysis (L001-L004, L101-L103)

USAGE:
  leopard-lint [--root <DIR>] [--json] [--manifest-out <FILE>] [--update-baseline] [--quiet]

OPTIONS:
  --root <DIR>          Workspace root to scan (default: the workspace this
                        binary was built from)
  --json                Print findings as a JSON array instead of
                        `file:line: Lxxx: message` lines
  --manifest-out <FILE> Write the shared-state manifest (shared_state.json)
                        to FILE after the scan
  --update-baseline     Rewrite crates/leopard-lint/shared_state_baseline.json
                        from the current workspace instead of diffing against
                        it (L103 findings are recomputed after the update)
  --quiet               Suppress info-level stderr events (summaries,
                        progress); error events always print

Exits 0 when clean, 1 on violations, 2 on usage or I/O errors.";

/// Severity of a stderr event. `Info` is suppressed by `--quiet`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Level {
    Info,
    Error,
}

/// Emits one structured event line on stderr. Findings stay on stdout;
/// this channel carries only tool status, JSON-framed so scripts can
/// match on `"event":"..."` instead of prose that may be reworded.
fn event(quiet: bool, level: Level, kind: &str, message: &str) {
    if quiet && level == Level::Info {
        return;
    }
    let lvl = match level {
        Level::Info => "info",
        Level::Error => "error",
    };
    eprintln!(
        "{{\"tool\":\"leopard-lint\",\"level\":\"{lvl}\",\"event\":\"{kind}\",\"message\":\"{}\"}}",
        escape_json(message)
    );
}

/// Minimal JSON string escaping for event messages.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn usage_error(message: &str) -> ExitCode {
    event(false, Level::Error, "usage", message);
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut manifest_out: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a value"),
            },
            "--manifest-out" => match args.next() {
                Some(path) => manifest_out = Some(PathBuf::from(path)),
                None => return usage_error("--manifest-out needs a value"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    // The crate lives at <workspace>/crates/leopard-lint.
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    if update_baseline {
        // Rewrite the baseline first so the analysis below diffs cleanly.
        match leopard_lint::analyze_workspace(&root) {
            Ok(analysis) => {
                let path = root.join(leopard_lint::manifest::BASELINE_REL);
                if let Err(e) = std::fs::write(&path, &analysis.manifest_json) {
                    event(
                        quiet,
                        Level::Error,
                        "io",
                        &format!("writing {} failed: {e}", path.display()),
                    );
                    return ExitCode::from(2);
                }
                event(
                    quiet,
                    Level::Info,
                    "baseline-updated",
                    &format!("{} shared-state entries", analysis.manifest.len()),
                );
            }
            Err(e) => {
                event(quiet, Level::Error, "scan-failed", &e.to_string());
                return ExitCode::from(2);
            }
        }
    }

    match leopard_lint::analyze_workspace(&root) {
        Ok(analysis) => {
            if let Some(path) = &manifest_out {
                if let Err(e) = std::fs::write(path, &analysis.manifest_json) {
                    event(
                        quiet,
                        Level::Error,
                        "io",
                        &format!("writing {} failed: {e}", path.display()),
                    );
                    return ExitCode::from(2);
                }
            }
            let findings = &analysis.findings;
            let scanned = analysis.scanned;
            if json {
                println!("[");
                for (i, f) in findings.iter().enumerate() {
                    println!(
                        "  {}{}",
                        f.to_json(),
                        if i + 1 < findings.len() { "," } else { "" }
                    );
                }
                println!("]");
            } else {
                for f in findings {
                    println!("{f}");
                }
            }
            if findings.is_empty() {
                event(
                    quiet,
                    Level::Info,
                    "clean",
                    &format!(
                        "{scanned} files clean ({} shared-state entries, {} lock-order edges)",
                        analysis.manifest.len(),
                        analysis.lock_graph.edges.len()
                    ),
                );
                ExitCode::SUCCESS
            } else {
                event(
                    quiet,
                    Level::Error,
                    "violations",
                    &format!(
                        "{} violation(s) across {scanned} scanned files",
                        findings.len()
                    ),
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            event(quiet, Level::Error, "scan-failed", &e.to_string());
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::escape_json;

    #[test]
    fn event_messages_are_json_safe() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
