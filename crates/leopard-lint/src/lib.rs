//! Repo-specific static analysis for the Leopard workspace.
//!
//! This is **level 1** of Leopard's two-level static analysis story: the
//! verifier's verdicts are only as trustworthy as the verifier's own code,
//! so a small hand-rolled scanner (no `syn`, no external dependencies)
//! enforces the source-level invariants the design relies on:
//!
//! | code | invariant |
//! |------|-----------|
//! | L001 | no `unwrap()` / `expect()` / `panic!` in `leopard-core/src/verify/**` and `pipeline/**` |
//! | L002 | no raw `std::collections::HashMap`/`HashSet` outside `fxhash.rs` |
//! | L003 | every `Ordering::Relaxed` carries a justification comment (`// relaxed: <why>`) |
//! | L004 | no `Instant::now()` / `SystemTime::now()` inside `leopard-core` |
//!
//! A violation can be acknowledged in place with an **allow comment** that
//! must carry a reason:
//!
//! ```text
//! // lint: allow(L001): the key was inserted two lines above
//! let info = self.txns.get_mut(txn).expect("observed");
//! ```
//!
//! The allow applies to the same line when trailing, or to the next
//! code-bearing line when it stands alone. An allow without a reason is
//! ignored.
//!
//! The scanner strips string literals and comments before matching, tracks
//! multi-line strings and nested block comments, and stops at the first
//! `#[cfg(test)]` attribute of a file — by repo convention the trailing
//! unit-test module, which is free to `unwrap()` at will.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint code, e.g. `"L001"`.
    pub code: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.code, self.message
        )
    }
}

/// Lexer state carried across lines of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Plain code.
    Code,
    /// Inside a `"..."` string literal (they may span lines).
    Str,
    /// Inside a raw string literal with the given number of `#` marks.
    RawStr(u8),
    /// Inside a (possibly nested) block comment at the given depth.
    Block(u32),
}

/// Splits one source line into (code text, comment text), updating the
/// cross-line lexer state. String-literal contents are dropped from both.
fn split_line(line: &str, st: &mut State) -> (String, String) {
    let chars: Vec<char> = line.chars().collect();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        match *st {
            State::Str => {
                match chars[i] {
                    '\\' => i += 1, // skip the escaped character
                    '"' => *st = State::Code,
                    _ => {}
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if chars[i] == '"' {
                    let n = hashes as usize;
                    if chars[i + 1..].iter().take(n).filter(|&&c| c == '#').count() == n {
                        *st = State::Code;
                        i += n;
                    }
                }
                i += 1;
            }
            State::Block(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *st = if depth <= 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *st = State::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            State::Code => {
                let c = chars[i];
                let prev_ident = i
                    .checked_sub(1)
                    .map(|p| chars[p].is_alphanumeric() || chars[p] == '_')
                    .unwrap_or(false);
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line.
                    comment.extend(&chars[i + 2..]);
                    break;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *st = State::Block(1);
                    i += 2;
                } else if c == '"' {
                    *st = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string opener: r", r#", b", br#"...
                    let mut j = i + 1;
                    let mut raw = c == 'r';
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        raw = true;
                        j += 1;
                    }
                    let mut hashes = 0u8;
                    while raw && chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        *st = if raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_ident {
                    // Char literal vs lifetime. `'\...'` and `'x'` are
                    // literals; `'a` followed by anything else is a lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        i += 2; // opening quote + backslash
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1; // closing quote
                    } else if chars.get(i + 2) == Some(&'\'') {
                        i += 3;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comment)
}

/// Extracts the lint codes acknowledged by `lint: allow(Lxxx): <reason>`
/// directives in a comment. Directives without a non-empty reason are
/// ignored — the escape hatch requires an argument.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let code = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reasoned = after
            .strip_prefix(':')
            .map(|r| {
                let r = r.trim();
                !r.is_empty() && !r.starts_with("<")
            })
            .unwrap_or(false);
        if reasoned && !code.is_empty() {
            out.push(code);
        }
        rest = after;
    }
    out
}

/// Substring occurrences of `needle` in `hay` whose preceding character is
/// not part of an identifier (so `FxHashMap` does not match `HashMap`).
fn word_starts(hay: &str, needle: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let boundary = abs == 0
            || hay[..abs]
                .chars()
                .next_back()
                .map(|p| !(p.is_alphanumeric() || p == '_'))
                .unwrap_or(true);
        if boundary {
            count += 1;
        }
        from = abs + needle.len();
    }
    count
}

/// Occurrences of `.{method}(` — method calls only, so free functions or
/// identifiers that merely contain the name do not match.
fn method_calls(hay: &str, method: &str) -> usize {
    let pat = format!(".{method}(");
    hay.matches(&pat).count()
}

/// Which lints apply to a workspace-relative path.
#[derive(Debug, Clone, Copy)]
struct Scope {
    l001: bool,
    l002: bool,
    l004: bool,
}

fn scope_for(rel: &str) -> Scope {
    Scope {
        l001: rel.starts_with("crates/leopard-core/src/verify/")
            || rel.starts_with("crates/leopard-core/src/pipeline/"),
        l002: rel != "crates/leopard-core/src/fxhash.rs",
        l004: rel.starts_with("crates/leopard-core/"),
    }
}

/// Scans one file's source text, returning its violations.
///
/// `rel` is the workspace-relative path (used both for scoping and for
/// reporting).
#[must_use]
pub fn scan_file(rel: &str, content: &str) -> Vec<Finding> {
    let scope = scope_for(rel);
    let mut st = State::Code;
    let mut findings = Vec::new();
    // Allows from standalone comment lines, pending for the next code line.
    let mut pending_allows: Vec<String> = Vec::new();
    // Comment block immediately above the current line (for L003
    // justifications), reset by any code-bearing or blank line.
    let mut comment_above = String::new();

    for (idx, raw) in content.lines().enumerate() {
        let line = idx + 1;
        let (code, comment) = split_line(raw, &mut st);
        let code_trim = code.trim();
        if code_trim.starts_with("#[cfg(test)]") {
            break; // trailing unit-test module: out of lint scope
        }
        let mut allows = parse_allows(&comment);
        if code_trim.is_empty() {
            if comment.trim().is_empty() {
                // Blank line: breaks comment-block contiguity.
                pending_allows.clear();
                comment_above.clear();
            } else {
                pending_allows.append(&mut allows);
                comment_above.push_str(&comment);
                comment_above.push('\n');
            }
            continue;
        }
        allows.append(&mut pending_allows);
        let allowed = |code: &str| allows.iter().any(|a| a == code);

        if scope.l001 && !allowed("L001") {
            for (hits, what) in [
                (method_calls(&code, "unwrap"), "unwrap()"),
                (method_calls(&code, "expect"), "expect()"),
                (word_starts(&code, "panic!"), "panic!"),
            ] {
                for _ in 0..hits {
                    findings.push(Finding {
                        code: "L001",
                        file: rel.to_string(),
                        line,
                        message: format!(
                            "`{what}` in a verifier/pipeline hot path; return a typed \
                             error or annotate with `// lint: allow(L001): <reason>`"
                        ),
                    });
                }
            }
        }
        if scope.l002 && !allowed("L002") {
            for what in ["HashMap", "HashSet"] {
                for _ in 0..word_starts(&code, what) {
                    findings.push(Finding {
                        code: "L002",
                        file: rel.to_string(),
                        line,
                        message: format!(
                            "raw std `{what}` outside fxhash.rs; hot-path maps must use \
                             Fx{what} (crate::fxhash)"
                        ),
                    });
                }
            }
        }
        if !allowed("L003") && code.contains("Ordering::Relaxed") {
            let justified = comment.to_lowercase().contains("relaxed")
                || comment_above.to_lowercase().contains("relaxed");
            if !justified {
                findings.push(Finding {
                    code: "L003",
                    file: rel.to_string(),
                    line,
                    message: "`Ordering::Relaxed` without a justification comment; add \
                              `// relaxed: <why this ordering is sufficient>` or use a \
                              stronger ordering"
                        .to_string(),
                });
            }
        }
        if scope.l004 && !allowed("L004") {
            for what in ["Instant::now", "SystemTime::now"] {
                for _ in 0..word_starts(&code, what) {
                    findings.push(Finding {
                        code: "L004",
                        file: rel.to_string(),
                        line,
                        message: format!(
                            "wall-clock read `{what}` inside leopard-core; the verifier \
                             must be deterministic — clock access belongs to leopard-db \
                             or the capture layer"
                        ),
                    });
                }
            }
        }
        comment_above.clear();
    }
    findings
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | ".claude" | "results" | "devtools"
            ) {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under `root` (skipping `target/`, `.git/`,
/// `results/`, `devtools/`). Returns the findings, sorted by file and
/// line, plus the number of files scanned.
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let content = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_file(&rel, &content));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    Ok((findings, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const VERIFY_PATH: &str = "crates/leopard-core/src/verify/mod.rs";

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn l001_fires_only_in_hot_paths() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"no\"); }\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001", "L001", "L001"]);
        assert_eq!(found[0].line, 1);
        assert!(scan_file("crates/leopard-db/src/engine.rs", src).is_empty());
    }

    #[test]
    fn l001_allow_with_reason_suppresses() {
        let src = "\
// lint: allow(L001): inserted two lines above, lookup cannot fail
let info = table.get_mut(txn).expect(\"observed\");
let other = table.get_mut(txn).expect(\"observed\"); // lint: allow(L001): same
let bad = table.get_mut(txn).expect(\"observed\");
";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn allow_without_reason_is_ignored() {
        let src = "// lint: allow(L001)\nx.unwrap();\n// lint: allow(L001):   \ny.unwrap();\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001", "L001"]);
    }

    #[test]
    fn l002_spares_fx_wrappers_and_fxhash_rs() {
        let src =
            "use std::collections::HashMap;\nlet m: FxHashMap<K, V> = FxHashMap::default();\n";
        let found = scan_file("crates/leopard-db/src/storage.rs", src);
        assert_eq!(codes(&found), vec!["L002"]);
        assert_eq!(found[0].line, 1);
        assert!(scan_file("crates/leopard-core/src/fxhash.rs", src).is_empty());
    }

    #[test]
    fn l003_requires_justification() {
        let bare = "let n = c.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(
            codes(&scan_file("crates/leopard-db/src/clock.rs", bare)),
            vec!["L003"]
        );
        let trailing = "let n = c.fetch_add(1, Ordering::Relaxed); // relaxed: counter only\n";
        assert!(scan_file("crates/leopard-db/src/clock.rs", trailing).is_empty());
        let above = "// relaxed: id allocation needs uniqueness, not ordering\nlet n = c.fetch_add(1, Ordering::Relaxed);\n";
        assert!(scan_file("crates/leopard-db/src/clock.rs", above).is_empty());
        // A blank line breaks the justification block.
        let gap = "// relaxed: stale\n\nlet n = c.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(
            codes(&scan_file("crates/leopard-db/src/clock.rs", gap)),
            vec!["L003"]
        );
    }

    #[test]
    fn l004_confined_to_core() {
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\n";
        let found = scan_file("crates/leopard-core/src/stats.rs", src);
        assert_eq!(codes(&found), vec!["L004", "L004"]);
        assert!(scan_file("crates/leopard-db/src/engine.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r#"
let s = "call unwrap() and panic! here";
let r = r"HashMap inside a raw string";
// a comment mentioning x.unwrap() and HashMap
/* block comment: Ordering::Relaxed */
"#;
        assert!(scan_file(VERIFY_PATH, src).is_empty());
    }

    #[test]
    fn multiline_strings_are_tracked() {
        let src = "const USAGE: &str = \"\\\nline with unwrap() inside string\nstill HashMap inside\";\nx.unwrap();\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn char_literals_do_not_derail_lexer() {
        let src = "let q = '\"';\nlet c = 'a';\nlet lt: &'static str = \"x\";\nx.unwrap();\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn scanning_stops_at_test_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(scan_file(VERIFY_PATH, src).is_empty());
    }

    #[test]
    fn identifier_containing_pattern_does_not_match() {
        let src = "fn my_unwrap() {}\nlet do_panic!_ish = 0;\nstruct NotHashMapped;\n";
        // `NotHashMapped` begins mid-identifier; `my_unwrap` is not a
        // method call; only a real `.unwrap()` would fire.
        assert!(scan_file(VERIFY_PATH, "let x = my_unwrap();\n").is_empty());
        assert!(scan_file("crates/leopard-db/src/x.rs", "struct NotHashMapped;\n").is_empty());
        let _ = src;
    }

    #[test]
    fn workspace_scan_walks_and_reports_relative_paths() {
        let dir = std::env::temp_dir().join(format!("leopard_lint_ws_{}", std::process::id()));
        let hot = dir.join("crates/leopard-core/src/verify");
        std::fs::create_dir_all(&hot).unwrap();
        std::fs::write(hot.join("mod.rs"), "fn f() { x.unwrap(); }\n").unwrap();
        std::fs::write(dir.join("crates/leopard-core/src/ok.rs"), "fn g() {}\n").unwrap();
        let (findings, scanned) = scan_workspace(&dir).unwrap();
        assert_eq!(scanned, 2);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/leopard-core/src/verify/mod.rs");
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[0].code, "L001");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
