//! Repo-specific static analysis for the Leopard workspace.
//!
//! This is **level 1** of Leopard's two-level static analysis story: the
//! verifier's verdicts are only as trustworthy as the verifier's own code,
//! so a hand-rolled analyzer (no `syn`, no external dependencies)
//! enforces the source-level invariants the design relies on.
//!
//! The per-line *token lints*:
//!
//! | code | invariant |
//! |------|-----------|
//! | L001 | no `unwrap()` / `expect()` / `panic!` in `leopard-core/src/verify/**`, `pipeline/**`, `online.rs`, `budget.rs` |
//! | L002 | no raw `std::collections::HashMap`/`HashSet` outside `fxhash.rs` |
//! | L003 | every `Ordering::Relaxed` carries a justification comment (`// relaxed: <why>`) |
//! | L004 | no `Instant::now()` / `SystemTime::now()` inside `leopard-core` |
//!
//! And the workspace-level *concurrency passes* (built on a real item
//! model — see [`model`]):
//!
//! | code | invariant |
//! |------|-----------|
//! | L101 | the inter-procedural acquired-while-held lock graph is acyclic ([`lockorder`]) |
//! | L102 | atomic `Ordering`s pair up: Release writes ⇄ Acquire reads, no Relaxed on strongly-ordered fields ([`atomics`]) |
//! | L103 | every piece of shared state is in the committed `shared_state_baseline.json` ([`manifest`]) |
//!
//! A violation can be acknowledged in place with an **allow comment** that
//! must carry a reason:
//!
//! ```text
//! // lint: allow(L001): the key was inserted two lines above
//! let info = self.txns.get_mut(txn).expect("observed");
//! ```
//!
//! The allow applies to the same line when trailing, or to the next
//! code-bearing line when it stands alone. An allow without a reason is
//! ignored.
//!
//! The lexer underneath ([`lexer`]) strips string literals and comments
//! before matching, tracks multi-line strings and nested block comments,
//! and stops at the first `#[cfg(test)]` attribute of a file — by repo
//! convention the trailing unit-test module, which is free to `unwrap()`
//! at will. The static lock graph is cross-checked at runtime by
//! `leopard_core::lockwitness`, which records actual acquisition order
//! in debug builds while the test suites run.

pub mod atomics;
pub mod lexer;
pub mod lockorder;
pub mod manifest;
pub mod model;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint code, e.g. `"L001"`.
    pub code: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.code, self.message
        )
    }
}

impl Finding {
    /// Serializes this finding as a JSON object (hand-rolled — the lint
    /// crate stays dependency-free).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        format!(
            "{{ \"code\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\" }}",
            self.code,
            esc(&self.file),
            self.line,
            esc(&self.message)
        )
    }
}

/// Which token lints apply to a workspace-relative path.
#[derive(Debug, Clone, Copy)]
struct Scope {
    l001: bool,
    l002: bool,
    l004: bool,
}

fn scope_for(rel: &str) -> Scope {
    Scope {
        l001: rel.starts_with("crates/leopard-core/src/verify/")
            || rel.starts_with("crates/leopard-core/src/pipeline/")
            || rel == "crates/leopard-core/src/online.rs"
            || rel == "crates/leopard-core/src/budget.rs",
        l002: rel != "crates/leopard-core/src/fxhash.rs",
        l004: rel.starts_with("crates/leopard-core/"),
    }
}

/// Scans one file's source text with the per-line token lints
/// (L001–L004), returning its violations.
///
/// `rel` is the workspace-relative path (used both for scoping and for
/// reporting). The workspace-level passes (L101–L103) need the whole
/// workspace — see [`analyze_workspace`].
#[must_use]
pub fn scan_file(rel: &str, content: &str) -> Vec<Finding> {
    let scope = scope_for(rel);
    let scan = lexer::scan_lines(content);
    let mut findings = Vec::new();
    for (idx, line_scan) in scan.lines.iter().enumerate() {
        let line = idx + 1;
        let code = &line_scan.code;
        if code.trim().is_empty() {
            continue;
        }
        let allowed = |c: &str| line_scan.allowed(c);

        if scope.l001 && !allowed("L001") {
            for (hits, what) in [
                (lexer::method_calls(code, "unwrap"), "unwrap()"),
                (lexer::method_calls(code, "expect"), "expect()"),
                (lexer::word_starts(code, "panic!"), "panic!"),
            ] {
                for _ in 0..hits {
                    findings.push(Finding {
                        code: "L001",
                        file: rel.to_string(),
                        line,
                        message: format!(
                            "`{what}` in a verifier/pipeline hot path; return a typed \
                             error or annotate with `// lint: allow(L001): <reason>`"
                        ),
                    });
                }
            }
        }
        if scope.l002 && !allowed("L002") {
            for what in ["HashMap", "HashSet"] {
                for _ in 0..lexer::word_starts(code, what) {
                    findings.push(Finding {
                        code: "L002",
                        file: rel.to_string(),
                        line,
                        message: format!(
                            "raw std `{what}` outside fxhash.rs; hot-path maps must use \
                             Fx{what} (crate::fxhash)"
                        ),
                    });
                }
            }
        }
        if !allowed("L003") {
            let relaxed = scan
                .ordering_aliases
                .iter()
                .any(|a| code.contains(&format!("{a}::Relaxed")));
            if relaxed {
                let justified = line_scan.comment.to_lowercase().contains("relaxed")
                    || line_scan.above.to_lowercase().contains("relaxed");
                if !justified {
                    findings.push(Finding {
                        code: "L003",
                        file: rel.to_string(),
                        line,
                        message: "`Ordering::Relaxed` without a justification comment; add \
                                  `// relaxed: <why this ordering is sufficient>` or use a \
                                  stronger ordering"
                            .to_string(),
                    });
                }
            }
        }
        if scope.l004 && !allowed("L004") {
            for what in ["Instant::now", "SystemTime::now"] {
                for _ in 0..lexer::word_starts(code, what) {
                    findings.push(Finding {
                        code: "L004",
                        file: rel.to_string(),
                        line,
                        message: format!(
                            "wall-clock read `{what}` inside leopard-core; the verifier \
                             must be deterministic — clock access belongs to leopard-db \
                             or the capture layer"
                        ),
                    });
                }
            }
        }
    }
    findings
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds deliberately-bad lint corpus files — they
            // are scanned by the fixture tests, never as workspace code.
            if matches!(
                name.as_ref(),
                "target" | ".git" | ".claude" | "results" | "devtools" | "fixtures"
            ) {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The result of a full workspace analysis.
#[derive(Debug)]
pub struct Analysis {
    /// All findings (token lints + concurrency passes), sorted by file,
    /// line, and code.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub scanned: usize,
    /// The shared-state manifest entries.
    pub manifest: Vec<manifest::ManifestEntry>,
    /// The serialized `shared_state.json` document.
    pub manifest_json: String,
    /// The static lock-order graph (exported for the runtime witness).
    pub lock_graph: lockorder::LockGraph,
}

/// Runs every pass over the workspace rooted at `root`: token lints per
/// file, then the L101 lock-order pass, the L102 atomics audit, and the
/// L103 manifest diff against the committed baseline (silently skipped
/// when no baseline exists — fresh checkouts and test sandboxes).
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        let content = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_file(&rel, &content));
        sources.push((rel, content));
    }
    let model = model::Model::build(&sources);
    let (l101, lock_graph) = lockorder::analyze(&model);
    findings.extend(l101);
    findings.extend(atomics::analyze(&model));
    let entries = manifest::build(&model);
    let manifest_json = manifest::to_json(&entries, &lock_graph);
    let baseline_path = root.join(manifest::BASELINE_REL);
    if let Ok(text) = fs::read_to_string(&baseline_path) {
        let baseline = manifest::parse_baseline(&text);
        findings.extend(manifest::diff(&entries, &baseline));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    Ok(Analysis {
        findings,
        scanned: files.len(),
        manifest: entries,
        manifest_json,
        lock_graph,
    })
}

/// Scans every `.rs` file under `root` (skipping `target/`, `.git/`,
/// `results/`, `devtools/`, fixture corpora) with all passes. Returns
/// the findings, sorted by file and line, plus the number of files
/// scanned. Thin compatibility wrapper over [`analyze_workspace`].
pub fn scan_workspace(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let analysis = analyze_workspace(root)?;
    Ok((analysis.findings, analysis.scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    const VERIFY_PATH: &str = "crates/leopard-core/src/verify/mod.rs";

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn l001_fires_only_in_hot_paths() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"no\"); }\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001", "L001", "L001"]);
        assert_eq!(found[0].line, 1);
        assert!(scan_file("crates/leopard-db/src/engine.rs", src).is_empty());
    }

    #[test]
    fn l001_covers_online_and_budget() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            codes(&scan_file("crates/leopard-core/src/online.rs", src)),
            vec!["L001"]
        );
        assert_eq!(
            codes(&scan_file("crates/leopard-core/src/budget.rs", src)),
            vec!["L001"]
        );
    }

    #[test]
    fn l001_allow_with_reason_suppresses() {
        let src = "\
// lint: allow(L001): inserted two lines above, lookup cannot fail
let info = table.get_mut(txn).expect(\"observed\");
let other = table.get_mut(txn).expect(\"observed\"); // lint: allow(L001): same
let bad = table.get_mut(txn).expect(\"observed\");
";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn allow_without_reason_is_ignored() {
        let src = "// lint: allow(L001)\nx.unwrap();\n// lint: allow(L001):   \ny.unwrap();\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001", "L001"]);
    }

    #[test]
    fn l002_spares_fx_wrappers_and_fxhash_rs() {
        let src =
            "use std::collections::HashMap;\nlet m: FxHashMap<K, V> = FxHashMap::default();\n";
        let found = scan_file("crates/leopard-db/src/storage.rs", src);
        assert_eq!(codes(&found), vec!["L002"]);
        assert_eq!(found[0].line, 1);
        assert!(scan_file("crates/leopard-core/src/fxhash.rs", src).is_empty());
    }

    #[test]
    fn l003_requires_justification() {
        let bare = "let n = c.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(
            codes(&scan_file("crates/leopard-db/src/clock.rs", bare)),
            vec!["L003"]
        );
        let trailing = "let n = c.fetch_add(1, Ordering::Relaxed); // relaxed: counter only\n";
        assert!(scan_file("crates/leopard-db/src/clock.rs", trailing).is_empty());
        let above = "// relaxed: id allocation needs uniqueness, not ordering\nlet n = c.fetch_add(1, Ordering::Relaxed);\n";
        assert!(scan_file("crates/leopard-db/src/clock.rs", above).is_empty());
        // A blank line breaks the justification block.
        let gap = "// relaxed: stale\n\nlet n = c.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(
            codes(&scan_file("crates/leopard-db/src/clock.rs", gap)),
            vec!["L003"]
        );
    }

    #[test]
    fn l003_sees_aliased_orderings() {
        let src = "use std::sync::atomic::Ordering as O;\nlet n = c.fetch_add(1, O::Relaxed);\n";
        assert_eq!(
            codes(&scan_file("crates/leopard-db/src/clock.rs", src)),
            vec!["L003"]
        );
    }

    #[test]
    fn l004_confined_to_core() {
        let src = "let t = Instant::now();\nlet s = SystemTime::now();\n";
        let found = scan_file("crates/leopard-core/src/stats.rs", src);
        assert_eq!(codes(&found), vec!["L004", "L004"]);
        assert!(scan_file("crates/leopard-db/src/engine.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r#"
let s = "call unwrap() and panic! here";
let r = r"HashMap inside a raw string";
// a comment mentioning x.unwrap() and HashMap
/* block comment: Ordering::Relaxed */
"#;
        assert!(scan_file(VERIFY_PATH, src).is_empty());
    }

    #[test]
    fn multiline_strings_are_tracked() {
        let src = "const USAGE: &str = \"\\\nline with unwrap() inside string\nstill HashMap inside\";\nx.unwrap();\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn char_literals_do_not_derail_lexer() {
        let src = "let q = '\"';\nlet c = 'a';\nlet lt: &'static str = \"x\";\nx.unwrap();\n";
        let found = scan_file(VERIFY_PATH, src);
        assert_eq!(codes(&found), vec!["L001"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn scanning_stops_at_test_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(scan_file(VERIFY_PATH, src).is_empty());
    }

    #[test]
    fn identifier_containing_pattern_does_not_match() {
        let src = "fn my_unwrap() {}\nlet do_panic!_ish = 0;\nstruct NotHashMapped;\n";
        // `NotHashMapped` begins mid-identifier; `my_unwrap` is not a
        // method call; only a real `.unwrap()` would fire.
        assert!(scan_file(VERIFY_PATH, "let x = my_unwrap();\n").is_empty());
        assert!(scan_file("crates/leopard-db/src/x.rs", "struct NotHashMapped;\n").is_empty());
        let _ = src;
    }

    #[test]
    fn workspace_scan_walks_and_reports_relative_paths() {
        let dir = std::env::temp_dir().join(format!("leopard_lint_ws_{}", std::process::id()));
        let hot = dir.join("crates/leopard-core/src/verify");
        std::fs::create_dir_all(&hot).unwrap();
        std::fs::write(hot.join("mod.rs"), "fn f() { x.unwrap(); }\n").unwrap();
        std::fs::write(dir.join("crates/leopard-core/src/ok.rs"), "fn g() {}\n").unwrap();
        let (findings, scanned) = scan_workspace(&dir).unwrap();
        assert_eq!(scanned, 2);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/leopard-core/src/verify/mod.rs");
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[0].code, "L001");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finding_json_escapes_and_shapes() {
        let f = Finding {
            code: "L101",
            file: "src/a.rs".to_string(),
            line: 3,
            message: "cycle \"x\"".to_string(),
        };
        assert_eq!(
            f.to_json(),
            "{ \"code\": \"L101\", \"file\": \"src/a.rs\", \"line\": 3, \"message\": \"cycle \\\"x\\\"\" }"
        );
    }
}
