//! L102: the atomics-pairing audit.
//!
//! Every atomic field in the workspace inventory is checked for coherent
//! `Ordering` use across all of its access sites:
//!
//! * a `Release`-ordered store (or `AcqRel`/`SeqCst` write) must be
//!   observable — the field needs at least one `Acquire`-or-stronger
//!   load somewhere, else the release fence orders nothing;
//! * symmetrically, an `Acquire`-ordered load of a field that nothing
//!   ever writes with `Release`-or-stronger synchronizes with nothing;
//! * a `Relaxed` access to a field that is *elsewhere* accessed with
//!   stronger orderings is flagged — mixing disciplines on one cell is
//!   how a counter quietly stops being a synchronization point.
//!
//! Pure-`Relaxed` fields are L003's business (they need a `// relaxed:`
//! justification comment), not L102's. RMW operations (`fetch_*`,
//! `swap`, `compare_exchange*`) count as both read and write; only the
//! *success* ordering of a compare-exchange is classified, since a
//! `Relaxed` failure ordering is idiomatic. Sites can be acknowledged
//! with `// lint: allow(L102): <reason>`.

use crate::model::{Field, FieldKind, Model};
use crate::Finding;

/// The five ordering names, matched as whole words inside argument
/// lists (works for `Ordering::X`, aliased `O::X`, and bare `X`).
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic access methods and whether they read / write the cell.
const METHODS: &[(&str, bool, bool)] = &[
    ("load", true, false),
    ("store", false, true),
    ("swap", true, true),
    ("fetch_add", true, true),
    ("fetch_sub", true, true),
    ("fetch_and", true, true),
    ("fetch_or", true, true),
    ("fetch_xor", true, true),
    ("fetch_nand", true, true),
    ("fetch_max", true, true),
    ("fetch_min", true, true),
    ("fetch_update", true, true),
    ("compare_exchange", true, true),
    ("compare_exchange_weak", true, true),
    ("compare_and_swap", true, true),
];

/// One classified access to an atomic field.
#[derive(Debug, Clone)]
struct Access {
    file: String,
    line: usize,
    ordering: String,
    reads: bool,
    writes: bool,
}

impl Access {
    fn is_acquire_read(&self) -> bool {
        self.reads && matches!(self.ordering.as_str(), "Acquire" | "AcqRel" | "SeqCst")
    }

    fn is_release_write(&self) -> bool {
        self.writes && matches!(self.ordering.as_str(), "Release" | "AcqRel" | "SeqCst")
    }

    fn is_relaxed(&self) -> bool {
        self.ordering == "Relaxed"
    }
}

/// Ordering words in an argument list, in textual order.
fn ordering_words(args: &str) -> Vec<String> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for name in ORDERINGS {
        let mut from = 0;
        while let Some(pos) = args[from..].find(name) {
            let abs = from + pos;
            let before_ok = abs == 0
                || args[..abs]
                    .chars()
                    .next_back()
                    .map(|c| !(c.is_alphanumeric() || c == '_'))
                    .unwrap_or(true);
            let after = args[abs + name.len()..].chars().next();
            let after_ok = !matches!(after, Some(c) if c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                out.push((abs, (*name).to_string()));
            }
            from = abs + name.len();
        }
    }
    out.sort_by_key(|(pos, _)| *pos);
    out.into_iter().map(|(_, w)| w).collect()
}

/// The ordering that governs this access, from the words found in its
/// argument list. Loads put the ordering first; writes put it last
/// (nested atomic reads in value position come earlier); compare-
/// exchange carries (success, failure) as the last two, and only the
/// success ordering is classified.
fn pick_ordering(method: &str, words: &[String]) -> Option<String> {
    match method {
        "load" => words.first().cloned(),
        "compare_exchange" | "compare_exchange_weak" | "fetch_update" => {
            if words.len() >= 2 {
                words.get(words.len() - 2).cloned()
            } else {
                words.first().cloned()
            }
        }
        _ => words.last().cloned(),
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Resolves an access receiver against the atomic-field inventory:
/// same file, then same `impl` owner, then workspace-unique.
fn resolve_atomic<'m>(
    atomics: &[&'m Field],
    file: &str,
    owner: Option<&str>,
    name: &str,
) -> Option<&'m Field> {
    let matches: Vec<&&Field> = atomics.iter().filter(|f| f.name == name).collect();
    if let Some(f) = matches.iter().find(|f| f.file == file) {
        return Some(f);
    }
    if let Some(o) = owner {
        if let Some(f) = matches.iter().find(|f| f.owner == o) {
            return Some(f);
        }
    }
    (matches.len() == 1).then(|| *matches[0])
}

/// Runs the pass.
#[must_use]
pub fn analyze(model: &Model) -> Vec<Finding> {
    let atomics: Vec<&Field> = model
        .fields
        .iter()
        .filter(|f| f.kind == FieldKind::Atomic)
        .collect();
    if atomics.is_empty() {
        return Vec::new();
    }
    // Accesses grouped by field identity.
    let mut accesses: Vec<(String, Access)> = Vec::new();
    for func in &model.functions {
        for (line, text) in &func.body {
            let chars: Vec<char> = text.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if chars[i] == '.' {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident(chars[j]) {
                        j += 1;
                    }
                    let method: String = chars[i + 1..j].iter().collect();
                    let spec = METHODS.iter().find(|(m, _, _)| *m == method);
                    if let (Some((_, reads, writes)), Some('(')) = (spec, chars.get(j).copied()) {
                        // Receiver: the identifier chain segment before the dot.
                        let mut s = i;
                        while s > 0 && is_ident(chars[s - 1]) {
                            s -= 1;
                        }
                        let recv: String = chars[s..i].iter().collect();
                        if let Some(field) =
                            resolve_atomic(&atomics, &func.file, func.owner.as_deref(), &recv)
                        {
                            // Argument text to the matching close paren
                            // (single line; multi-line arg lists fall back
                            // to rest-of-line, enough for ordering words).
                            let mut depth = 0i32;
                            let mut k = j;
                            let mut close = chars.len();
                            while k < chars.len() {
                                match chars[k] {
                                    '(' => depth += 1,
                                    ')' => {
                                        depth -= 1;
                                        if depth == 0 {
                                            close = k;
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            let args: String =
                                chars[j + 1..close.min(chars.len())].iter().collect();
                            let words = ordering_words(&args);
                            if let Some(ordering) = pick_ordering(&method, &words) {
                                accesses.push((
                                    field.id(),
                                    Access {
                                        file: func.file.clone(),
                                        line: *line,
                                        ordering,
                                        reads: *reads,
                                        writes: *writes,
                                    },
                                ));
                            }
                        }
                    }
                    i = j.max(i + 1);
                } else {
                    i += 1;
                }
            }
        }
    }

    let allowed = |file: &str, line: usize| -> bool {
        model
            .scan_of(file)
            .and_then(|s| s.lines.get(line - 1))
            .map(|l| l.allowed("L102"))
            .unwrap_or(false)
    };

    let mut findings = Vec::new();
    let mut ids: Vec<String> = accesses.iter().map(|(id, _)| id.clone()).collect();
    ids.sort();
    ids.dedup();
    for id in &ids {
        let of_field: Vec<&Access> = accesses
            .iter()
            .filter(|(i, _)| i == id)
            .map(|(_, a)| a)
            .collect();
        let has_acquire_read = of_field.iter().any(|a| a.is_acquire_read());
        let has_release_write = of_field.iter().any(|a| a.is_release_write());
        let has_strong = has_acquire_read || has_release_write;
        for a in &of_field {
            if allowed(&a.file, a.line) {
                continue;
            }
            if a.is_release_write() && !has_acquire_read {
                findings.push(Finding {
                    code: "L102",
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "{}-ordered write to {id} is never paired with an Acquire-or-stronger load",
                        a.ordering
                    ),
                });
            } else if a.is_acquire_read() && !has_release_write {
                findings.push(Finding {
                    code: "L102",
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "{}-ordered load of {id} is never paired with a Release-or-stronger write",
                        a.ordering
                    ),
                });
            } else if a.is_relaxed() && has_strong {
                findings.push(Finding {
                    code: "L102",
                    file: a.file.clone(),
                    line: a.line,
                    message: format!(
                        "Relaxed access to {id}, which is elsewhere accessed with stronger orderings"
                    ),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn run(src: &str) -> Vec<Finding> {
        let model = Model::build(&[("src/lib.rs".to_string(), src.to_string())]);
        analyze(&model)
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let f = run(
            "struct S { seq: AtomicU64 }\nimpl S {\n    fn bump(&self) { self.seq.store(1, Ordering::Release); }\n    fn see(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unpaired_release_store_is_flagged() {
        let f = run(
            "struct S { seq: AtomicU64 }\nimpl S {\n    fn bump(&self) { self.seq.store(1, Ordering::Release); }\n    fn see(&self) -> u64 { self.seq.load(Ordering::Relaxed) }\n}\n",
        );
        assert!(
            f.iter()
                .any(|x| x.code == "L102" && x.message.contains("never paired with an Acquire")),
            "{f:?}"
        );
    }

    #[test]
    fn mixed_relaxed_on_strong_field_is_flagged() {
        let f = run(
            "struct S { seq: AtomicU64 }\nimpl S {\n    fn bump(&self) { self.seq.fetch_add(1, Ordering::Relaxed); }\n    fn publish(&self) { self.seq.store(1, Ordering::Release); }\n    fn see(&self) -> u64 { self.seq.load(Ordering::Acquire) }\n}\n",
        );
        assert!(
            f.iter()
                .any(|x| x.code == "L102" && x.message.contains("stronger orderings")),
            "{f:?}"
        );
    }

    #[test]
    fn pure_relaxed_counter_is_not_l102s_business() {
        let f = run(
            "struct S { shed: AtomicU64 }\nimpl S {\n    fn bump(&self) { self.shed.fetch_add(1, Ordering::Relaxed); }\n    fn see(&self) -> u64 { self.shed.load(Ordering::Relaxed) }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn seqcst_rmw_self_pairs() {
        let f = run(
            "struct S { flag: AtomicBool }\nimpl S {\n    fn arm(&self) -> bool { self.flag.swap(true, Ordering::SeqCst) }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn compare_exchange_failure_ordering_is_ignored() {
        let f = run(
            "struct S { st: AtomicU8 }\nimpl S {\n    fn cas(&self) { let _ = self.st.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed); }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn alias_orderings_are_recognized() {
        let f = run(
            "use std::sync::atomic::Ordering as O;\nstruct S { seq: AtomicU64 }\nimpl S {\n    fn bump(&self) { self.seq.store(1, O::Release); }\n    fn see(&self) -> u64 { self.seq.load(O::Relaxed) }\n}\n",
        );
        assert!(
            !f.is_empty(),
            "alias Release store should still be analyzed"
        );
    }

    #[test]
    fn allow_comment_suppresses() {
        let f = run(
            "struct S { seq: AtomicU64 }\nimpl S {\n    fn bump(&self) { self.seq.store(1, Ordering::Release); } // lint: allow(L102): init-only publish\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
