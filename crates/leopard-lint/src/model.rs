//! The item model: a workspace-wide inventory of functions, struct/enum
//! fields, and the concurrency primitives among them.
//!
//! Built from the [`crate::lexer`] output with a brace-depth tracker — no
//! `syn`, no type inference. The model is deliberately *syntactic*: field
//! types are the literal source text, function bodies are flat code text
//! tagged with line numbers, and resolution (which lock does `self.db
//! .active.lock()` acquire?) happens in the analysis passes on top of the
//! field inventory. The passes document where this approximation can
//! miss; the runtime lock-order witness (`leopard_core::lockwitness`)
//! exists to cross-check it from the executable side.

use crate::lexer::{scan_lines, FileScan};

/// What a field's declared type makes it, for the concurrency passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FieldKind {
    /// `Mutex<..>` (std, parking_lot, or `TrackedMutex`).
    Mutex,
    /// `RwLock<..>`.
    RwLock,
    /// `Condvar`.
    Condvar,
    /// `AtomicUsize`/`AtomicU64`/`AtomicBool`/... (possibly `Arc`-wrapped).
    Atomic,
    /// A channel endpoint: `Sender<..>`, `SyncSender<..>`, `Receiver<..>`.
    Channel,
    /// Anything else.
    Plain,
}

impl FieldKind {
    /// Classifies a declared type's source text.
    #[must_use]
    pub fn of_type(ty: &str) -> FieldKind {
        // Order matters: a `Mutex<AtomicU64>` (hypothetical) is a mutex.
        if contains_type(ty, "Mutex") || contains_type(ty, "TrackedMutex") {
            FieldKind::Mutex
        } else if contains_type(ty, "RwLock") {
            FieldKind::RwLock
        } else if contains_type(ty, "Condvar") {
            FieldKind::Condvar
        } else if ty_has_atomic(ty) {
            FieldKind::Atomic
        } else if contains_type(ty, "Sender")
            || contains_type(ty, "Receiver")
            || contains_type(ty, "SyncSender")
        {
            FieldKind::Channel
        } else {
            FieldKind::Plain
        }
    }

    /// True for the kinds the L101 pass treats as acquirable locks.
    #[must_use]
    pub fn is_lock(self) -> bool {
        matches!(
            self,
            FieldKind::Mutex | FieldKind::RwLock | FieldKind::Condvar
        )
    }

    /// Lowercase label used in the shared-state manifest.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FieldKind::Mutex => "mutex",
            FieldKind::RwLock => "rwlock",
            FieldKind::Condvar => "condvar",
            FieldKind::Atomic => "atomic",
            FieldKind::Channel => "channel",
            FieldKind::Plain => "plain",
        }
    }
}

/// True if `ty` contains `name` as a whole path segment (so `Sender`
/// does not match `WatermarkSender`'s suffix, and `TrackedMutex`
/// does not double-count as `Mutex`).
fn contains_type(ty: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = ty[from..].find(name) {
        let abs = from + pos;
        let before_ok = abs == 0
            || ty[..abs]
                .chars()
                .next_back()
                .map(|c| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(true);
        let after = ty[abs + name.len()..].chars().next();
        let after_ok = !matches!(after, Some(c) if c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = abs + name.len();
    }
    false
}

/// True if the type mentions a `std::sync::atomic` cell type.
fn ty_has_atomic(ty: &str) -> bool {
    for prim in [
        "AtomicBool",
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicI8",
        "AtomicI16",
        "AtomicI32",
        "AtomicI64",
        "AtomicIsize",
        "AtomicPtr",
    ] {
        if contains_type(ty, prim) {
            return true;
        }
    }
    false
}

/// One declared field of a struct, enum variant, or module-level static.
#[derive(Debug, Clone)]
pub struct Field {
    /// Declaring type (struct or enum name; `"static"` for statics).
    pub owner: String,
    /// Field (or static) name.
    pub name: String,
    /// Declared type, verbatim source text.
    pub ty: String,
    /// Concurrency classification of the type.
    pub kind: FieldKind,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

impl Field {
    /// The stable identity used across passes, the manifest, and the
    /// runtime witness: `Owner.field`.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}.{}", self.owner, self.name)
    }
}

/// One function item with its (lexed) body text.
#[derive(Debug, Clone)]
pub struct Function {
    /// `impl`/`trait` owner type, if any.
    pub owner: Option<String>,
    /// Bare function name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body code, one entry per source line: (1-based line, code text).
    pub body: Vec<(usize, String)>,
}

impl Function {
    /// `Owner::name` or bare `name` for free functions.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One lexed file plus its workspace-relative path.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Lexer output (truncated at the trailing test module).
    pub scan: FileScan,
}

/// The workspace model the analysis passes run on.
#[derive(Debug, Default)]
pub struct Model {
    /// Every lexed file.
    pub files: Vec<SourceFile>,
    /// Every declared field (and lock/atomic static) across the workspace.
    pub fields: Vec<Field>,
    /// Every function item across the workspace.
    pub functions: Vec<Function>,
}

impl Model {
    /// Builds the model from `(rel_path, content)` pairs.
    #[must_use]
    pub fn build(sources: &[(String, String)]) -> Model {
        let mut model = Model::default();
        for (rel, content) in sources {
            let scan = scan_lines(content);
            parse_file(rel, &scan, &mut model);
            model.files.push(SourceFile {
                rel: rel.clone(),
                scan,
            });
        }
        model
    }

    /// Fields of the given kind-filter across the workspace.
    pub fn fields_where(&self, f: impl Fn(&Field) -> bool) -> Vec<&Field> {
        self.fields.iter().filter(|fl| f(fl)).collect()
    }

    /// The scan for a file, by workspace-relative path.
    #[must_use]
    pub fn scan_of(&self, rel: &str) -> Option<&FileScan> {
        self.files.iter().find(|f| f.rel == rel).map(|f| &f.scan)
    }
}

/// Item context the brace tracker maintains.
#[derive(Debug)]
enum Ctx {
    Struct(String),
    Enum(String),
    Impl(String),
    Trait(String),
    Fn(usize), // index into model.functions
    Other,
}

/// What a block-opening head line declares.
fn classify_head(head: &str) -> Option<Ctx> {
    let tokens: Vec<&str> = head
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect();
    // The *first* item keyword wins: `impl` can appear later in a `fn`
    // head as `impl Trait` in argument or return position, and
    // attributes before a declaration never contain these bare keywords
    // as whole tokens.
    for (i, tok) in tokens.iter().enumerate() {
        match *tok {
            "fn" => {
                // Index is resolved by the caller once the Function is
                // pushed; usize::MAX is a sentinel that never escapes.
                tokens.get(i + 1)?;
                return Some(Ctx::Fn(usize::MAX));
            }
            "struct" | "union" => {
                return tokens.get(i + 1).map(|n| Ctx::Struct((*n).to_string()));
            }
            "enum" => {
                return tokens.get(i + 1).map(|n| Ctx::Enum((*n).to_string()));
            }
            "trait" => {
                return tokens.get(i + 1).map(|n| Ctx::Trait((*n).to_string()));
            }
            "impl" => {
                return Some(Ctx::Impl(impl_target(head)));
            }
            _ => {}
        }
    }
    None
}

/// The self-type of an `impl` head: the path after `for` when present
/// (trait impls), else the first type after `impl`, generics stripped.
fn impl_target(head: &str) -> String {
    // Work on the text after the (last) `impl` token.
    let after = match find_token(head, "impl") {
        Some(pos) => &head[pos + 4..],
        None => head,
    };
    // Strip a leading generics list `<...>`.
    let after = strip_leading_generics(after);
    // Trait impl: the target is after ` for `.
    let target_src = match find_token(after, "for") {
        Some(pos) => &after[pos + 3..],
        None => after,
    };
    first_path_segment_tail(target_src)
}

/// Byte offset of `tok` in `s` as a standalone word, if any.
fn find_token(s: &str, tok: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = s[from..].find(tok) {
        let abs = from + pos;
        let before_ok = abs == 0
            || s[..abs]
                .chars()
                .next_back()
                .map(|c| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(true);
        let after = s[abs + tok.len()..].chars().next();
        let after_ok = !matches!(after, Some(c) if c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        from = abs + tok.len();
    }
    None
}

/// Drops a balanced leading `<...>` group (plus surrounding whitespace).
fn strip_leading_generics(s: &str) -> &str {
    let t = s.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let mut depth = 0i32;
    for (i, c) in t.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// The last path segment of the first type in `s` (generics and `where`
/// clauses dropped): `crate::foo::Bar<T> where ...` → `Bar`.
fn first_path_segment_tail(s: &str) -> String {
    let mut name = String::new();
    let mut last = String::new();
    for c in s.trim_start().chars() {
        if c.is_alphanumeric() || c == '_' {
            last.push(c);
        } else if c == ':' {
            if !last.is_empty() {
                name.clear();
                last.clear();
            }
        } else {
            // Generics, whitespace, bodies, or any other punctuation all
            // terminate the path.
            break;
        }
        if !last.is_empty() {
            name = last.clone();
        }
    }
    name
}

/// One open block on the context stack.
struct Frame {
    ctx: Ctx,
    /// Brace depth right after this block opened.
    open_depth: u32,
    /// When this block is a field-declaring body (struct, enum, or a
    /// named-field variant's inline block), the owner type — and a
    /// buffer accumulating the current field declaration's text.
    field_owner: Option<String>,
    field_buf: String,
    field_line: usize,
}

impl Frame {
    /// Flushes the accumulated field-declaration text, if it parses as
    /// one and its generics/parens are balanced (an unbalanced buffer
    /// means the `,` was inside `FxHashMap<K, V>` or a tuple).
    fn flush_field(&mut self, rel: &str, model: &mut Model) -> bool {
        let balanced = {
            let mut angle = 0i32;
            let mut paren = 0i32;
            for c in self.field_buf.chars() {
                match c {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    _ => {}
                }
            }
            angle == 0 && paren == 0
        };
        if !balanced {
            return false;
        }
        if let Some(owner) = &self.field_owner {
            if let Some((name, ty)) = parse_field_decl(&self.field_buf) {
                model.fields.push(Field {
                    owner: owner.clone(),
                    kind: FieldKind::of_type(&ty),
                    name,
                    ty,
                    file: rel.to_string(),
                    line: self.field_line,
                });
            }
        }
        self.field_buf.clear();
        true
    }
}

/// Parses one lexed file's items into the model.
fn parse_file(rel: &str, scan: &FileScan, model: &mut Model) {
    let mut stack: Vec<Frame> = Vec::new();
    let mut depth: u32 = 0;
    let mut head = String::new();
    let mut head_line = 1usize;

    for (idx, line) in scan.lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;
        // Module-level statics holding locks/atomics are shared state too.
        if stack.is_empty() || matches!(stack.last(), Some(f) if matches!(f.ctx, Ctx::Other)) {
            let t = code.trim();
            let decl = t.strip_prefix("pub ").unwrap_or(t).trim_start_matches(' ');
            if let Some(rest) = decl.strip_prefix("static ") {
                if let Some((name, ty)) = rest.split_once(':') {
                    let ty = ty.trim().trim_end_matches([';', '=', ' ']);
                    let ty = ty.split('=').next().unwrap_or(ty).trim();
                    let kind = FieldKind::of_type(ty);
                    if kind != FieldKind::Plain {
                        model.fields.push(Field {
                            owner: "static".to_string(),
                            name: name.trim().trim_start_matches("mut ").to_string(),
                            ty: ty.to_string(),
                            kind,
                            file: rel.to_string(),
                            line: lineno,
                        });
                    }
                }
            }
        }
        // Char-level brace tracking for item boundaries, field
        // declarations, and body capture.
        for c in code.chars() {
            // Accumulate field-declaration text in the innermost frame
            // when it is a field-declaring body (structural chars are
            // handled below).
            if !matches!(c, '{' | '}') {
                if let Some(top) = stack.last_mut() {
                    if top.field_owner.is_some() {
                        if c == ',' {
                            // Only a field separator when generics and
                            // parens are balanced.
                            if !top.flush_field(rel, model) {
                                top.field_buf.push(c);
                            }
                        } else {
                            if top.field_buf.trim().is_empty() && !c.is_whitespace() {
                                top.field_line = lineno;
                            }
                            top.field_buf.push(c);
                        }
                    }
                }
            }
            match c {
                '{' => {
                    let ctx = match classify_head(&head) {
                        Some(Ctx::Fn(_)) => {
                            let name = fn_name(&head).unwrap_or_default();
                            let owner = stack.iter().rev().find_map(|f| match &f.ctx {
                                Ctx::Impl(t) | Ctx::Trait(t) => Some(t.clone()),
                                _ => None,
                            });
                            model.functions.push(Function {
                                owner,
                                name,
                                file: rel.to_string(),
                                line: head_line,
                                body: Vec::new(),
                            });
                            Ctx::Fn(model.functions.len() - 1)
                        }
                        Some(ctx) => ctx,
                        None => Ctx::Other,
                    };
                    // A named-field enum variant opens a plain block
                    // directly under its enum; treat it as the enum's
                    // field body. Drop the variant-name text the parent
                    // frame buffered on the way here.
                    let owner = match &ctx {
                        Ctx::Struct(n) | Ctx::Enum(n) => Some(n.clone()),
                        Ctx::Other => stack.last().and_then(|f| match &f.ctx {
                            Ctx::Enum(n) => Some(n.clone()),
                            _ => None,
                        }),
                        _ => None,
                    };
                    if let Some(top) = stack.last_mut() {
                        top.field_buf.clear();
                    }
                    depth += 1;
                    stack.push(Frame {
                        ctx,
                        open_depth: depth,
                        field_owner: owner,
                        field_buf: String::new(),
                        field_line: lineno,
                    });
                    head.clear();
                    head_line = lineno;
                }
                '}' => {
                    if let Some(top) = stack.last_mut() {
                        if top.open_depth == depth {
                            top.flush_field(rel, model);
                            stack.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                    head.clear();
                    head_line = lineno;
                }
                ';' => {
                    head.clear();
                    head_line = lineno;
                }
                other => {
                    if head.trim().is_empty() && !other.is_whitespace() {
                        head_line = lineno;
                    }
                    head.push(other);
                }
            }
            // Capture body text for the innermost enclosing function.
            if let Some(fi) = stack.iter().rev().find_map(|f| match f.ctx {
                Ctx::Fn(i) => Some(i),
                _ => None,
            }) {
                let body = &mut model.functions[fi].body;
                match body.last_mut() {
                    Some((l, text)) if *l == lineno => text.push(c),
                    _ => body.push((lineno, c.to_string())),
                }
            }
        }
        // Preserve line boundaries inside bodies even for the tracker.
        if let Some(fi) = stack.iter().rev().find_map(|f| match f.ctx {
            Ctx::Fn(i) => Some(i),
            _ => None,
        }) {
            let body = &mut model.functions[fi].body;
            if !matches!(body.last(), Some((l, _)) if *l == lineno) {
                body.push((lineno, String::new()));
            }
        }
    }
}

/// `name: Type` (with optional attributes and visibility) →
/// `(name, Type)`.
fn parse_field_decl(code: &str) -> Option<(String, String)> {
    let mut t = code.trim();
    // Strip leading field attributes: `#[serde(default)] pub a: u32`.
    while let Some(rest) = t.strip_prefix("#[") {
        let mut depth = 1i32;
        let mut cut = None;
        for (i, c) in rest.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        t = rest[cut?..].trim_start();
    }
    let t = t
        .strip_prefix("pub")
        .map(|r| {
            // `pub`, `pub(crate)`, `pub(super)`, ...
            let r = r.trim_start();
            if let Some(stripped) = r.strip_prefix('(') {
                stripped
                    .split_once(')')
                    .map(|(_, rest)| rest.trim_start())
                    .unwrap_or(r)
            } else {
                r
            }
        })
        .unwrap_or(t);
    let (name, ty) = t.split_once(':')?;
    let name = name.trim();
    // A real field name is one bare identifier (rejects `match x`,
    // `let y: T`, paths, etc.).
    if name.is_empty()
        || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return None;
    }
    // `::` means this was a path expression, not a field declaration.
    if ty.starts_with(':') {
        return None;
    }
    let ty = ty.trim().trim_end_matches(',').trim();
    if ty.is_empty() {
        return None;
    }
    Some((name.to_string(), ty.to_string()))
}

/// The identifier after the `fn` token of a head.
fn fn_name(head: &str) -> Option<String> {
    let pos = find_token(head, "fn")?;
    let after = &head[pos + 2..];
    let name: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        Model::build(&[("src/lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn fields_and_kinds_are_inventoried() {
        let m = model_of(
            "pub struct S {\n    pub a: Arc<Mutex<Vec<u32>>>,\n    b: AtomicU64,\n    tx: Sender<Msg>,\n    plain: u32,\n}\n",
        );
        let ids: Vec<(String, FieldKind)> = m.fields.iter().map(|f| (f.id(), f.kind)).collect();
        assert_eq!(
            ids,
            vec![
                ("S.a".to_string(), FieldKind::Mutex),
                ("S.b".to_string(), FieldKind::Atomic),
                ("S.tx".to_string(), FieldKind::Channel),
                ("S.plain".to_string(), FieldKind::Plain),
            ]
        );
    }

    #[test]
    fn enum_named_variant_fields_attribute_to_enum() {
        let m = model_of(
            "enum Trigger {\n    Always,\n    Probability { p: f64, rng: Mutex<SmallRng> },\n}\n",
        );
        let locks: Vec<String> = m
            .fields
            .iter()
            .filter(|f| f.kind.is_lock())
            .map(Field::id)
            .collect();
        assert_eq!(locks, vec!["Trigger.rng".to_string()]);
    }

    #[test]
    fn functions_carry_impl_owner_and_bodies() {
        let m = model_of(
            "struct S;\nimpl S {\n    fn one(&self) {\n        self.two();\n    }\n}\nfn free() { let x = 1; }\n",
        );
        let names: Vec<String> = m.functions.iter().map(Function::qualified).collect();
        assert_eq!(names, vec!["S::one".to_string(), "free".to_string()]);
        let one = &m.functions[0];
        assert_eq!(one.line, 3);
        assert!(one.body.iter().any(|(_, t)| t.contains("self.two()")));
    }

    #[test]
    fn trait_impl_target_resolves_after_for() {
        let m = model_of(
            "impl<C: Clock> Clock for ChaosClock<C> {\n    fn now(&self) -> Timestamp { t() }\n}\n",
        );
        assert_eq!(m.functions[0].qualified(), "ChaosClock::now");
    }

    #[test]
    fn let_bindings_are_not_fields() {
        let m = model_of("fn f() {\n    let x: Mutex<u32> = Mutex::new(0);\n}\n");
        assert!(m.fields.is_empty());
    }

    #[test]
    fn statics_with_locks_are_inventoried() {
        let m = model_of("static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n");
        assert_eq!(m.fields.len(), 1);
        assert_eq!(m.fields[0].id(), "static.REGISTRY");
        assert_eq!(m.fields[0].kind, FieldKind::Mutex);
    }
}
