//! The hand-rolled source lexer underneath every lint pass.
//!
//! Rust source is split, line by line, into *code text* and *comment
//! text*: string-literal contents are dropped from both, `//` comments
//! and (possibly nested) `/* */` block comments land in the comment
//! channel, and everything else stays in the code channel. The lexer
//! carries its [`State`] across lines, so multi-line strings, raw strings
//! (`r#"…"#`), and nested block comments never desync the scan.
//!
//! On top of the raw split, [`scan_lines`] resolves the repo's
//! `lint: allow(Lxxx): <reason>` escape-hatch comments (trailing on the
//! same line, or standalone applying to the next code-bearing line) and
//! the contiguous comment block above each code line (used by L003 for
//! `// relaxed:` justifications), and truncates the scan at the file's
//! trailing `#[cfg(test)]` module — by repo convention the unit-test
//! module, which is out of lint scope.

/// Lexer state carried across lines of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Plain code.
    Code,
    /// Inside a `"..."` string literal (they may span lines).
    Str,
    /// Inside a raw string literal with the given number of `#` marks.
    RawStr(u8),
    /// Inside a (possibly nested) block comment at the given depth.
    Block(u32),
}

/// Splits one source line into (code text, comment text), updating the
/// cross-line lexer state. String-literal contents are dropped from both.
pub fn split_line(line: &str, st: &mut State) -> (String, String) {
    let chars: Vec<char> = line.chars().collect();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        match *st {
            State::Str => {
                match chars[i] {
                    '\\' => i += 1, // skip the escaped character
                    '"' => *st = State::Code,
                    _ => {}
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if chars[i] == '"' {
                    let n = hashes as usize;
                    if chars[i + 1..].iter().take(n).filter(|&&c| c == '#').count() == n {
                        *st = State::Code;
                        i += n;
                    }
                }
                i += 1;
            }
            State::Block(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *st = if depth <= 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *st = State::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            State::Code => {
                let c = chars[i];
                let prev_ident = i
                    .checked_sub(1)
                    .map(|p| chars[p].is_alphanumeric() || chars[p] == '_')
                    .unwrap_or(false);
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line.
                    comment.extend(&chars[i + 2..]);
                    break;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *st = State::Block(1);
                    i += 2;
                } else if c == '"' {
                    *st = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw/byte string opener: r", r#", b", br#"...
                    let mut j = i + 1;
                    let mut raw = c == 'r';
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        raw = true;
                        j += 1;
                    }
                    let mut hashes = 0u8;
                    while raw && chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        *st = if raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_ident {
                    // Char literal vs lifetime. `'\...'` and `'x'` are
                    // literals; `'a` followed by anything else is a lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        i += 2; // opening quote + backslash
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1; // closing quote
                    } else if chars.get(i + 2) == Some(&'\'') {
                        i += 3;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comment)
}

/// Extracts the lint codes acknowledged by `lint: allow(Lxxx): <reason>`
/// directives in a comment. Directives without a non-empty reason are
/// ignored — the escape hatch requires an argument.
pub fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let code = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let reasoned = after
            .strip_prefix(':')
            .map(|r| {
                let r = r.trim();
                !r.is_empty() && !r.starts_with("<")
            })
            .unwrap_or(false);
        if reasoned && !code.is_empty() {
            out.push(code);
        }
        rest = after;
    }
    out
}

/// Substring occurrences of `needle` in `hay` whose preceding character is
/// not part of an identifier (so `FxHashMap` does not match `HashMap`).
pub fn word_starts(hay: &str, needle: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let boundary = abs == 0
            || hay[..abs]
                .chars()
                .next_back()
                .map(|p| !(p.is_alphanumeric() || p == '_'))
                .unwrap_or(true);
        if boundary {
            count += 1;
        }
        from = abs + needle.len();
    }
    count
}

/// Occurrences of `.{method}(` — method calls only, so free functions or
/// identifiers that merely contain the name do not match.
pub fn method_calls(hay: &str, method: &str) -> usize {
    let pat = format!(".{method}(");
    hay.matches(&pat).count()
}

/// One source line after lexing and allow-resolution.
#[derive(Debug, Clone, Default)]
pub struct LineScan {
    /// Code text with string contents dropped.
    pub code: String,
    /// Comment text of this line.
    pub comment: String,
    /// Lint codes allowed for this line (trailing allow directives plus
    /// standalone ones from the comment block directly above).
    pub allows: Vec<String>,
    /// The contiguous comment block directly above this line (empty when
    /// a blank line or another code line intervenes).
    pub above: String,
}

impl LineScan {
    /// True if this line's allow set acknowledges `code`.
    #[must_use]
    pub fn allowed(&self, code: &str) -> bool {
        self.allows.iter().any(|a| a == code)
    }
}

/// A file after lexing: one [`LineScan`] per line *up to* (exclusive) the
/// trailing `#[cfg(test)]` module, if any.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    /// The lexed lines. `lines[i]` is source line `i + 1`.
    pub lines: Vec<LineScan>,
    /// Aliases under which `std::sync::atomic::Ordering` is in scope in
    /// this file (always contains `"Ordering"`; `use ... Ordering as O`
    /// adds `"O"`).
    pub ordering_aliases: Vec<String>,
}

/// Lexes a whole file: splits every line, resolves allow directives and
/// comment-above blocks, stops at the first `#[cfg(test)]` attribute.
#[must_use]
pub fn scan_lines(content: &str) -> FileScan {
    let mut st = State::Code;
    let mut out = FileScan {
        ordering_aliases: vec!["Ordering".to_string()],
        ..FileScan::default()
    };
    let mut pending_allows: Vec<String> = Vec::new();
    let mut comment_above = String::new();
    for raw in content.lines() {
        let (code, comment) = split_line(raw, &mut st);
        let code_trim = code.trim();
        if code_trim.starts_with("#[cfg(test)]") {
            break; // trailing unit-test module: out of lint scope
        }
        // `use std::sync::atomic::Ordering as O;` brings an alias into
        // scope that the atomics pass must recognize in `O::Relaxed`.
        if let Some(rest) = code_trim.strip_prefix("use ") {
            if let Some((path, alias)) = rest.trim_end_matches(';').rsplit_once(" as ") {
                if path.trim_end().ends_with("Ordering") {
                    out.ordering_aliases.push(alias.trim().to_string());
                }
            }
        }
        let mut allows = parse_allows(&comment);
        if code_trim.is_empty() {
            if comment.trim().is_empty() {
                // Blank line: breaks comment-block contiguity.
                pending_allows.clear();
                comment_above.clear();
            } else {
                pending_allows.append(&mut allows);
                comment_above.push_str(&comment);
                comment_above.push('\n');
            }
            out.lines.push(LineScan {
                code,
                comment,
                ..LineScan::default()
            });
            continue;
        }
        allows.append(&mut pending_allows);
        out.lines.push(LineScan {
            code,
            comment,
            allows,
            above: std::mem::take(&mut comment_above),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        let mut st = State::Code;
        src.lines()
            .map(|l| split_line(l, &mut st).0)
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn strings_comments_dropped_from_code() {
        let src = "let s = \"unwrap()\"; // says unwrap()\nlet r = r#\"HashMap\"#;\n/* Ordering::Relaxed */ x.lock();\n";
        let code = code_of(src);
        assert!(!code.contains("unwrap"));
        assert!(!code.contains("HashMap"));
        assert!(!code.contains("Relaxed"));
        assert!(code.contains("x.lock()"));
    }

    #[test]
    fn scan_lines_resolves_standalone_and_trailing_allows() {
        let scan = scan_lines(
            "// lint: allow(L101): seeded\nx.lock();\ny.lock(); // lint: allow(L102): why\n",
        );
        assert!(scan.lines[1].allowed("L101"));
        assert!(!scan.lines[1].allowed("L102"));
        assert!(scan.lines[2].allowed("L102"));
    }

    #[test]
    fn scan_lines_stops_at_test_module_and_tracks_aliases() {
        let scan = scan_lines(
            "use std::sync::atomic::Ordering as O;\nfn f() {}\n#[cfg(test)]\nmod tests {}\n",
        );
        assert_eq!(scan.lines.len(), 2);
        assert!(scan.ordering_aliases.contains(&"O".to_string()));
    }

    #[test]
    fn comment_above_is_contiguous() {
        let scan = scan_lines("// relaxed: why\nx.load();\n\n// stale\n\ny.load();\n");
        assert!(scan.lines[1].above.contains("relaxed"));
        assert!(scan.lines[5].above.is_empty());
    }
}
