//! L101: the inter-procedural lock-order pass.
//!
//! For every function the pass extracts direct lock acquisitions
//! (`.lock(` / `.read(` / `.write(` / `.wait(` resolved against the
//! workspace field inventory) and outgoing calls, models each guard's
//! hold region (let-bound guards to the end of their enclosing block or
//! an explicit `drop(guard)`, temporaries to the end of their statement,
//! lock-acquiring calls for the extent of their argument list — which
//! covers closure bodies such as `storage.with(|map| { .. })`), computes
//! transitive lock sets by fixpoint over the call graph, and records an
//! *acquired-while-held* edge for every lock acquired inside another
//! lock's hold region. A cycle in that edge graph is deadlock potential
//! and fails the lint.
//!
//! The analysis is syntactic and over-approximate in known ways: guard
//! hold regions are lexical scopes (Rust's actual drop semantics), call
//! resolution falls back to a name-union when no typed path resolves
//! (minus a skip-list of ubiquitous std names), and argument-position
//! acquisitions are ordered after the callee's own locks. Each edge is
//! recorded with its site, so a spurious edge can be acknowledged with
//! `// lint: allow(L101): <reason>` on the acquiring line. The runtime
//! lock-order witness (`leopard_core::lockwitness`) cross-checks the
//! graph from the executable side.

use crate::model::{Field, FieldKind, Function, Model};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Method names recorded as *calls* only when no typed resolution
/// exists — these collide with std/container methods so a bare-name
/// union would fabricate edges (e.g. `out.len()` inside a
/// `storage.with` closure resolving to `Storage::len`).
const CALL_SKIP: &[&str] = &[
    "len",
    "is_empty",
    "new",
    "default",
    "clone",
    "iter",
    "iter_mut",
    "next",
    "insert",
    "remove",
    "push",
    "pop",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "write",
    "read",
    "send",
    "recv",
    "drain",
    "clear",
    "fmt",
    "from",
    "into",
    "eq",
    "cmp",
    "hash",
    "drop",
    "now",
    "extend",
    "min",
    "max",
    "take",
    "get_or_insert_with",
    "entry",
    "or_default",
    "to_string",
    "collect",
    "map",
    "filter",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "push_str",
    "retain",
    "abs",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "wrapping_mul",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "record",
    "reset",
    "start",
    "stop",
    "run",
    "tick",
    "emit",
    "flush",
    "close",
    "open",
    "begin",
    "end",
    "apply",
    "check",
    "report",
    "name",
    "id",
    "kind",
    "value",
];

/// Keywords and tuple-ish constructors that look like calls but are not.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "move", "else", "let",
    "impl", "pub", "where", "unsafe", "dyn", "ref", "mut", "box", "Some", "None", "Ok", "Err",
    "Box", "Vec", "Arc", "Rc",
];

/// One acquired-while-held edge with its witness site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// Workspace-relative file of the acquiring site.
    pub file: String,
    /// 1-based line of the acquiring site.
    pub line: usize,
    /// Qualified name of the function containing the site.
    pub via: String,
}

/// The static lock-order graph, exported for the manifest and the
/// runtime witness cross-check.
#[derive(Debug, Default, Clone)]
pub struct LockGraph {
    /// Every lock identity in the workspace (`Owner.field` /
    /// `static.NAME`), sorted.
    pub locks: Vec<String>,
    /// Deduplicated acquired-while-held edges, sorted.
    pub edges: Vec<Edge>,
}

impl LockGraph {
    /// True if the graph contains an edge `from -> to` (any site).
    #[must_use]
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }
}

/// A flattened function body: char stream with per-char line numbers and
/// precomputed depths.
struct Flat {
    chars: Vec<char>,
    line_of: Vec<usize>,
    brace_before: Vec<u32>,
    paren_before: Vec<i32>,
    close_of: BTreeMap<usize, usize>,
}

fn flatten(body: &[(usize, String)]) -> Flat {
    let mut chars = Vec::new();
    let mut line_of = Vec::new();
    for (i, (line, text)) in body.iter().enumerate() {
        for c in text.chars() {
            chars.push(c);
            line_of.push(*line);
        }
        if i + 1 < body.len() {
            chars.push('\n');
            line_of.push(*line);
        }
    }
    let mut brace_before = Vec::with_capacity(chars.len());
    let mut paren_before = Vec::with_capacity(chars.len());
    let mut close_of = BTreeMap::new();
    let mut open_stack = Vec::new();
    let mut brace = 0u32;
    let mut paren = 0i32;
    for (i, c) in chars.iter().enumerate() {
        brace_before.push(brace);
        paren_before.push(paren);
        match c {
            '{' => brace += 1,
            '}' => brace = brace.saturating_sub(1),
            '(' => {
                paren += 1;
                open_stack.push(i);
            }
            ')' => {
                paren -= 1;
                if let Some(open) = open_stack.pop() {
                    close_of.insert(open, i);
                }
            }
            _ => {}
        }
    }
    Flat {
        chars,
        line_of,
        brace_before,
        paren_before,
        close_of,
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The identifier ending just before `end` (exclusive), if any.
fn ident_before(chars: &[char], end: usize) -> Option<(usize, String)> {
    let mut s = end;
    while s > 0 && is_ident(chars[s - 1]) {
        s -= 1;
    }
    if s == end {
        return None;
    }
    Some((s, chars[s..end].iter().collect()))
}

/// The receiver chain ending at `dot` (the `.` before a method name):
/// path segments scanned backwards, balanced `(..)`/`[..]` groups
/// collapsed into a `()` suffix on their segment. `self.db.active` →
/// `["self", "db", "active"]`; `self.rng().lock` → `["self", "rng()"]`.
fn chain_before(chars: &[char], dot: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut i = dot; // exclusive end of the chain text
    let mut suffix = String::new();
    loop {
        if i == 0 {
            break;
        }
        let c = chars[i - 1];
        if is_ident(c) {
            let (s, name) = match ident_before(chars, i) {
                Some(v) => v,
                None => break,
            };
            segs.push(format!("{name}{suffix}"));
            suffix.clear();
            i = s;
        } else if c == ')' || c == ']' {
            let open = if c == ')' { '(' } else { '[' };
            let mut depth = 0i32;
            let mut j = i;
            while j > 0 {
                j -= 1;
                if chars[j] == c {
                    depth += 1;
                } else if chars[j] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            suffix = "()".to_string();
            i = j;
        } else if c == '.' {
            i -= 1;
        } else if c == ':' && i >= 2 && chars[i - 2] == ':' {
            i -= 2;
        } else if c == '?' {
            i -= 1;
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

/// One lock-acquisition or call event inside a function body.
struct Event {
    start: usize,
    end: usize,
    line: usize,
    /// Locks held once this event's acquisition happens.
    holders: Vec<String>,
    /// Locks this event (transitively) acquires.
    acquires: Vec<String>,
}

/// Resolves a lock receiver name against the field inventory.
///
/// Priority: a matching lock field declared in the same file, then one
/// whose owner is the function's `impl` type, then a workspace-unique
/// match. `.lock(` falls back to a file-scoped identity for unknown
/// receivers (local mutexes); `.read(`/`.write(`/`.wait(` resolve only
/// against `RwLock`/`Condvar` fields because those method names are
/// ubiquitous on non-lock types.
fn resolve_lock(fields: &[&Field], func: &Function, name: &str, method: &str) -> Option<String> {
    let wanted: &[FieldKind] = match method {
        "lock" => &[FieldKind::Mutex],
        "read" | "write" => &[FieldKind::RwLock],
        "wait" | "wait_while" | "wait_timeout" => &[FieldKind::Condvar],
        _ => return None,
    };
    let matches: Vec<&&Field> = fields
        .iter()
        .filter(|f| f.name == name && wanted.contains(&f.kind))
        .collect();
    if let Some(f) = matches.iter().find(|f| f.file == func.file) {
        return Some(f.id());
    }
    if let Some(owner) = &func.owner {
        if let Some(f) = matches.iter().find(|f| &f.owner == owner) {
            return Some(f.id());
        }
    }
    if matches.len() == 1 {
        return Some(matches[0].id());
    }
    if !matches.is_empty() {
        // Ambiguous across files: pick deterministically by owner.
        let mut ids: Vec<String> = matches.iter().map(|f| f.id()).collect();
        ids.sort();
        return ids.into_iter().next();
    }
    if method == "lock" {
        let stem = func
            .file
            .rsplit('/')
            .next()
            .unwrap_or(&func.file)
            .trim_end_matches(".rs");
        return Some(format!("{stem}.{name}"));
    }
    None
}

/// All type names known to the model (field owners + function owners).
fn known_types(model: &Model) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for f in &model.fields {
        if f.owner != "static" {
            out.insert(f.owner.clone());
        }
    }
    for f in &model.functions {
        if let Some(o) = &f.owner {
            out.insert(o.clone());
        }
    }
    out
}

/// The single known type a declared type's text mentions, if unique.
fn type_of_ty(ty: &str, known: &BTreeSet<String>) -> Option<String> {
    let mut found = Vec::new();
    for t in known {
        if crate::lexer::word_starts(ty, t) > 0 && !found.contains(t) {
            found.push(t.clone());
        }
    }
    (found.len() == 1).then(|| found[0].clone())
}

/// Resolves a call site to candidate function indices.
#[allow(clippy::too_many_arguments)] // internal resolver over pre-built indices
fn resolve_call(
    model: &Model,
    known: &BTreeSet<String>,
    by_owner: &BTreeMap<(String, String), usize>,
    by_name: &BTreeMap<String, Vec<usize>>,
    func: &Function,
    chain: &[String],
    method: &str,
    is_method: bool,
    path_owner: Option<&str>,
) -> Vec<usize> {
    if let Some(owner) = path_owner {
        let owner = if owner == "Self" {
            func.owner.clone().unwrap_or_default()
        } else {
            owner.to_string()
        };
        return by_owner
            .get(&(owner, method.to_string()))
            .map(|i| vec![*i])
            .unwrap_or_default();
    }
    if is_method {
        // Walk `self.field.field...` through the field-type map.
        if chain.first().map(String::as_str) == Some("self") {
            if let Some(mut cur) = func.owner.clone() {
                let mut ok = true;
                for seg in &chain[1..] {
                    let field = model
                        .fields
                        .iter()
                        .find(|f| f.owner == cur && &f.name == seg);
                    match field.and_then(|f| type_of_ty(&f.ty, known)) {
                        Some(t) => cur = t,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    if let Some(i) = by_owner.get(&(cur, method.to_string())) {
                        return vec![*i];
                    }
                    // `self.m()` with no resolved target: no union — the
                    // receiver type is known, so a name-union would only
                    // add unrelated candidates.
                    if chain.len() == 1 {
                        return Vec::new();
                    }
                }
            }
        }
    }
    // Bare-name union, minus the std-colliding skip-list.
    if CALL_SKIP.contains(&method) {
        return Vec::new();
    }
    by_name.get(method).cloned().unwrap_or_default()
}

/// A direct acquisition site: (start, end, line, lock id).
type DirectAcq = (usize, usize, usize, String);
/// A call site: (start, end, line, candidate callee indices).
type CallSite = (usize, usize, usize, Vec<usize>);

/// Extracts this function's events. `allowed` reports whether a source
/// line carries `lint: allow(L101)`.
#[allow(clippy::too_many_arguments)]
fn extract_events(
    model: &Model,
    known: &BTreeSet<String>,
    lock_fields: &[&Field],
    by_owner: &BTreeMap<(String, String), usize>,
    by_name: &BTreeMap<String, Vec<usize>>,
    func: &Function,
    allowed: &dyn Fn(&str, usize) -> bool,
) -> (Vec<DirectAcq>, Vec<CallSite>) {
    let flat = flatten(&func.body);
    let n = flat.chars.len();
    let mut direct = Vec::new(); // (start, end, line, lock id)
    let mut calls = Vec::new(); // (start, end, line, callee idxs)
    let mut handled_dots = BTreeSet::new();

    // Pass 1: lock-method acquisitions.
    let mut i = 0;
    while i < n {
        if flat.chars[i] == '.' {
            let mut j = i + 1;
            while j < n && is_ident(flat.chars[j]) {
                j += 1;
            }
            let method: String = flat.chars[i + 1..j].iter().collect();
            let is_lock_method = matches!(
                method.as_str(),
                "lock" | "read" | "write" | "wait" | "wait_while" | "wait_timeout"
            );
            if is_lock_method && j < n && flat.chars[j] == '(' {
                let chain = chain_before(&flat.chars, i);
                let recv = chain
                    .iter()
                    .rev()
                    .find(|s| !s.ends_with("()"))
                    .cloned()
                    .or_else(|| chain.last().map(|s| s.trim_end_matches("()").to_string()));
                if let Some(recv) = recv {
                    if let Some(lock) = resolve_lock(lock_fields, func, &recv, &method) {
                        let line = flat.line_of[i];
                        if !allowed(&func.file, line) {
                            let end = hold_region_end(&flat, i, j);
                            direct.push((i, end, line, lock));
                        }
                        handled_dots.insert(i);
                    }
                }
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }

    // Pass 2: call sites.
    let mut i = 0;
    while i < n {
        if flat.chars[i] == '(' {
            if let Some((s, name)) = ident_before(&flat.chars, i) {
                let prev = s.checked_sub(1).map(|p| flat.chars[p]);
                let is_macro = prev == Some('!');
                let keyword = KEYWORDS.contains(&name.as_str());
                let is_method = prev == Some('.');
                let lock_dot = is_method && handled_dots.contains(&(s - 1));
                if !is_macro && !keyword && !lock_dot && !name.is_empty() {
                    let path_owner = if prev == Some(':') && s >= 2 && flat.chars[s - 2] == ':' {
                        ident_before(&flat.chars, s - 2).map(|(_, o)| o)
                    } else {
                        None
                    };
                    let chain = if is_method {
                        chain_before(&flat.chars, s - 1)
                    } else {
                        Vec::new()
                    };
                    let callees = resolve_call(
                        model,
                        known,
                        by_owner,
                        by_name,
                        func,
                        &chain,
                        &name,
                        is_method,
                        path_owner.as_deref(),
                    );
                    if !callees.is_empty() {
                        let end = flat.close_of.get(&i).copied().unwrap_or(n - 1);
                        calls.push((s, end, flat.line_of[s], callees));
                    }
                }
            }
        }
        i += 1;
    }
    (direct, calls)
}

/// The hold region of a direct acquisition starting at `dot` with its
/// opening paren at `open`.
fn hold_region_end(flat: &Flat, dot: usize, open: usize) -> usize {
    let n = flat.chars.len();
    // Statement start: nearest `;`/`{`/`}` before the receiver.
    let chain_start = chain_before_start(&flat.chars, dot);
    let mut stmt = chain_start;
    while stmt > 0 && !matches!(flat.chars[stmt - 1], ';' | '{' | '}') {
        stmt -= 1;
    }
    let stmt_text: String = flat.chars[stmt..chain_start].iter().collect();
    let is_let = crate::lexer::word_starts(&stmt_text, "let") > 0 && stmt_text.contains('=');
    let d = flat.brace_before[chain_start];
    let p0 = flat.paren_before[chain_start];
    let close = flat.close_of.get(&open).copied().unwrap_or(n - 1);
    if is_let {
        // Held to the enclosing block's close, or an explicit
        // `drop(binding)` before it. `.unwrap()`/`.expect(..)` after
        // the lock call are transparent guard continuations.
        let binding = binding_name(&stmt_text);
        let mut end = n - 1;
        let mut k = close + 1;
        while k < n {
            if flat.chars[k] == '}' && flat.brace_before[k] == d {
                end = k;
                break;
            }
            k += 1;
        }
        if let Some(b) = binding {
            let text: String = flat.chars[close..end.min(n - 1)].iter().collect();
            for pat in [format!("drop({b})"), format!("drop({b} )")] {
                if let Some(off) = text.find(&pat) {
                    let abs = close + text[..off].chars().count();
                    if abs < end {
                        end = abs + pat.chars().count();
                    }
                    break;
                }
            }
        }
        end
    } else {
        // Temporary guard: held to the end of the statement.
        let mut k = close + 1;
        while k < n {
            if flat.chars[k] == ';' && flat.brace_before[k] == d && flat.paren_before[k] == p0 {
                return k;
            }
            if flat.chars[k] == '}' && flat.brace_before[k] == d {
                return k; // statement is the block's tail expression
            }
            k += 1;
        }
        close
    }
}

/// The chain's first char index (where the receiver expression begins).
fn chain_before_start(chars: &[char], dot: usize) -> usize {
    let mut i = dot;
    loop {
        if i == 0 {
            return 0;
        }
        let c = chars[i - 1];
        if is_ident(c) {
            while i > 0 && is_ident(chars[i - 1]) {
                i -= 1;
            }
        } else if c == ')' || c == ']' {
            let open = if c == ')' { '(' } else { '[' };
            let mut depth = 0i32;
            let mut j = i;
            while j > 0 {
                j -= 1;
                if chars[j] == c {
                    depth += 1;
                } else if chars[j] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            i = j;
        } else if c == '.' || c == '?' {
            i -= 1;
        } else if c == ':' && i >= 2 && chars[i - 2] == ':' {
            i -= 2;
        } else if c == '*' || c == '&' {
            i -= 1; // deref/borrow prefix is part of the receiver expr
        } else {
            return i;
        }
    }
}

/// The binding identifier of a `let [mut] name = ...` statement.
fn binding_name(stmt: &str) -> Option<String> {
    let pos = stmt.find("let")?;
    let rest = stmt[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|c| is_ident(*c)).collect();
    (!name.is_empty() && rest.starts_with(&name)).then_some(name)
}

/// Runs the pass: returns L101 findings plus the exported lock graph.
#[must_use]
pub fn analyze(model: &Model) -> (Vec<Finding>, LockGraph) {
    let lock_fields: Vec<&Field> = model.fields.iter().filter(|f| f.kind.is_lock()).collect();
    let known = known_types(model);
    let mut by_owner: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in model.functions.iter().enumerate() {
        if let Some(o) = &f.owner {
            by_owner.insert((o.clone(), f.name.clone()), i);
        }
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    let allowed = |file: &str, line: usize| -> bool {
        model
            .scan_of(file)
            .and_then(|s| s.lines.get(line - 1))
            .map(|l| l.allowed("L101"))
            .unwrap_or(false)
    };

    // Per-function events.
    let mut directs: Vec<Vec<DirectAcq>> = Vec::new();
    let mut callsets: Vec<Vec<CallSite>> = Vec::new();
    for func in &model.functions {
        let (d, c) = extract_events(
            model,
            &known,
            &lock_fields,
            &by_owner,
            &by_name,
            func,
            &allowed,
        );
        directs.push(d);
        callsets.push(c);
    }

    // Transitive lock sets by fixpoint over the call graph.
    let nf = model.functions.len();
    let direct_sets: Vec<BTreeSet<String>> = (0..nf)
        .map(|i| directs[i].iter().map(|(_, _, _, l)| l.clone()).collect())
        .collect();
    let mut trans = direct_sets.clone();
    loop {
        let mut changed = false;
        for i in 0..nf {
            let mut add = BTreeSet::new();
            for (_, _, _, callees) in &callsets[i] {
                for c in callees {
                    for l in &trans[*c] {
                        if !trans[i].contains(l) {
                            add.insert(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                trans[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Acquired-while-held edges.
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    for (fi, func) in model.functions.iter().enumerate() {
        let mut events: Vec<Event> = Vec::new();
        for (start, end, line, lock) in &directs[fi] {
            events.push(Event {
                start: *start,
                end: *end,
                line: *line,
                holders: vec![lock.clone()],
                acquires: vec![lock.clone()],
            });
        }
        for (start, end, line, callees) in &callsets[fi] {
            let mut holders = BTreeSet::new();
            let mut acquires = BTreeSet::new();
            for c in callees {
                holders.extend(direct_sets[*c].iter().cloned());
                acquires.extend(trans[*c].iter().cloned());
            }
            if holders.is_empty() && acquires.is_empty() {
                continue;
            }
            events.push(Event {
                start: *start,
                end: *end,
                line: *line,
                holders: holders.into_iter().collect(),
                acquires: acquires.into_iter().collect(),
            });
        }
        events.sort_by_key(|e| e.start);
        for a in 0..events.len() {
            for b in 0..events.len() {
                if a == b {
                    continue;
                }
                let (ea, eb) = (&events[a], &events[b]);
                if eb.start <= ea.start || eb.start > ea.end {
                    continue;
                }
                if allowed(&func.file, eb.line) {
                    continue;
                }
                for l1 in &ea.holders {
                    for l2 in &eb.acquires {
                        edges.insert(Edge {
                            from: l1.clone(),
                            to: l2.clone(),
                            file: func.file.clone(),
                            line: eb.line,
                            via: func.qualified(),
                        });
                    }
                }
            }
        }
    }
    // Cycle detection: mutual reachability over the edge graph.
    let nodes: Vec<String> = {
        let mut s: BTreeSet<String> = lock_fields.iter().map(|f| f.id()).collect();
        for e in &edges {
            s.insert(e.from.clone());
            s.insert(e.to.clone());
        }
        s.into_iter().collect()
    };
    let idx: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let nn = nodes.len();
    let mut reach = vec![vec![false; nn]; nn];
    for e in &edges {
        reach[idx[e.from.as_str()]][idx[e.to.as_str()]] = true;
    }
    for k in 0..nn {
        // Snapshot row k: it cannot change during its own iteration
        // (reach[k][j] |= reach[k][k] && reach[k][j] is a no-op), and the
        // copy lets row i be borrowed mutably below.
        let via = reach[k].clone();
        for row in reach.iter_mut() {
            if row[k] {
                for (cell, &v) in row.iter_mut().zip(&via) {
                    *cell |= v;
                }
            }
        }
    }
    // Group nodes on cycles into strongly connected components.
    let mut findings = Vec::new();
    let mut reported = vec![false; nn];
    for i in 0..nn {
        if !reach[i][i] || reported[i] {
            continue;
        }
        let mut comp: Vec<usize> = vec![i];
        for j in i + 1..nn {
            if reach[i][j] && reach[j][i] && reach[j][j] {
                comp.push(j);
                reported[j] = true;
            }
        }
        reported[i] = true;
        let names: Vec<&str> = comp.iter().map(|c| nodes[*c].as_str()).collect();
        // Supporting edges: those internal to the component, one per
        // (from, to) pair, deterministically the first by sort order.
        let mut support: Vec<&Edge> = Vec::new();
        let mut seen_pairs = BTreeSet::new();
        for e in &edges {
            if names.contains(&e.from.as_str())
                && names.contains(&e.to.as_str())
                && seen_pairs.insert((e.from.clone(), e.to.clone()))
            {
                support.push(e);
            }
        }
        let detail: Vec<String> = support
            .iter()
            .map(|e| {
                format!(
                    "{} -> {} ({}:{} in {})",
                    e.from, e.to, e.file, e.line, e.via
                )
            })
            .collect();
        let site = support.first();
        findings.push(Finding {
            code: "L101",
            file: site.map(|e| e.file.clone()).unwrap_or_default(),
            line: site.map(|e| e.line).unwrap_or(0),
            message: format!(
                "lock-order cycle among {{{}}}: {}",
                names.join(", "),
                detail.join("; ")
            ),
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let graph = LockGraph {
        locks: nodes,
        edges: edges.into_iter().collect(),
    };
    (findings, graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<Finding>, LockGraph) {
        let model = Model::build(&[("src/lib.rs".to_string(), src.to_string())]);
        analyze(&model)
    }

    #[test]
    fn two_lock_cycle_is_reported() {
        let src = "\
struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        drop(ga);
        drop(gb);
    }
}
";
        let (findings, graph) = run(src);
        assert!(graph.has_edge("Pair.a", "Pair.b"));
        assert!(graph.has_edge("Pair.b", "Pair.a"));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, "L101");
        assert!(
            findings[0].message.contains("Pair.a"),
            "{}",
            findings[0].message
        );
        assert!(findings[0].message.contains("Pair.b"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn also_ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
}
";
        let (findings, graph) = run(src);
        assert!(graph.has_edge("Pair.a", "Pair.b"));
        assert!(!graph.has_edge("Pair.b", "Pair.a"));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "\
struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    fn seq(&self) {
        let ga = self.a.lock();
        drop(ga);
        let gb = self.b.lock();
        drop(gb);
    }
}
";
        let (_, graph) = run(src);
        assert!(!graph.has_edge("Pair.a", "Pair.b"), "{:?}", graph.edges);
    }

    #[test]
    fn interprocedural_cycle_through_calls() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn take_b(&self) {
        let g = self.b.lock();
        drop(g);
    }
    fn take_a(&self) {
        let g = self.a.lock();
        drop(g);
    }
    fn ab(&self) {
        let g = self.a.lock();
        self.take_b();
        drop(g);
    }
    fn ba(&self) {
        let g = self.b.lock();
        self.take_a();
        drop(g);
    }
}
";
        let (findings, graph) = run(src);
        assert!(graph.has_edge("S.a", "S.b"));
        assert!(graph.has_edge("S.b", "S.a"));
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn recursive_acquisition_is_a_self_cycle() {
        let src = "\
struct S { m: Mutex<u32> }
impl S {
    fn twice(&self) {
        let g1 = self.m.lock();
        let g2 = self.m.lock();
        drop(g2);
        drop(g1);
    }
}
";
        let (findings, graph) = run(src);
        assert!(graph.has_edge("S.m", "S.m"));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("S.m -> S.m"));
    }

    #[test]
    fn closure_inside_locking_call_sees_callee_lock_held() {
        let src = "\
struct Storage { map: Mutex<u32> }
impl Storage {
    fn with(&self, f: impl FnOnce(&mut u32)) {
        let mut g = self.map.lock();
        f(&mut g);
        drop(g);
    }
}
struct Db { storage: Storage, active: Mutex<u32> }
impl Db {
    fn bad(&self) {
        self.storage.with(|_m| {
            let g = self.active.lock();
            drop(g);
        });
    }
}
";
        let (_, graph) = run(src);
        assert!(
            graph.has_edge("Storage.map", "Db.active"),
            "{:?}",
            graph.edges
        );
    }

    #[test]
    fn skip_list_prevents_false_self_cycles() {
        let src = "\
struct Storage { map: Mutex<u32> }
impl Storage {
    fn with(&self, f: impl FnOnce(&mut u32)) {
        let mut g = self.map.lock();
        f(&mut g);
        drop(g);
    }
    fn len(&self) -> usize {
        let g = self.map.lock();
        drop(g);
        0
    }
}
struct Db { storage: Storage }
impl Db {
    fn fine(&self, out: &Vec<u32>) {
        self.storage.with(|_m| {
            let n = out.len();
            let _ = n;
        });
    }
}
";
        let (findings, graph) = run(src);
        assert!(
            !graph.has_edge("Storage.map", "Storage.map"),
            "{:?}",
            graph.edges
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_comment_suppresses_the_edge() {
        let src = "\
struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        drop(gb);
        drop(ga);
    }
    fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock(); // lint: allow(L101): seeded for test
        drop(ga);
        drop(gb);
    }
}
";
        let (findings, graph) = run(src);
        assert!(!graph.has_edge("Pair.b", "Pair.a"), "{:?}", graph.edges);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn temporary_guard_is_statement_scoped() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn seq(&self) {
        *self.a.lock().expect(\"a\") = 1;
        let g = self.b.lock();
        drop(g);
    }
}
";
        let (_, graph) = run(src);
        assert!(!graph.has_edge("S.a", "S.b"), "{:?}", graph.edges);
    }
}
