//! L103: the shared-state manifest.
//!
//! Every concurrency-relevant field in the workspace — mutexes, rwlocks,
//! condvars, atomics, channel endpoints — is emitted into a
//! machine-readable `shared_state.json`, together with the lock-order
//! edges the L101 pass derived. CI diffs the manifest against a
//! committed baseline (`crates/leopard-lint/shared_state_baseline.json`):
//! a new piece of shared state, or a stale baseline entry, is an L103
//! finding until the baseline is deliberately regenerated with
//! `leopard-lint --update-baseline`. The diff compares `(id, kind)`
//! pairs only, so moving a field between files does not break CI —
//! file/line in the manifest are informational.
//!
//! The JSON is hand-rolled (and the baseline parsed line-wise against
//! our own emitter's shape): `leopard-lint` stays dependency-free so it
//! can never be broken by the very workspace it checks.

use crate::lockorder::LockGraph;
use crate::model::{FieldKind, Model};
use crate::Finding;

/// Workspace-relative path of the committed baseline.
pub const BASELINE_REL: &str = "crates/leopard-lint/shared_state_baseline.json";

/// One shared-state inventory entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ManifestEntry {
    /// Stable identity: `Owner.field` or `static.NAME`.
    pub id: String,
    /// Kind label: `mutex` / `rwlock` / `condvar` / `atomic` / `channel`.
    pub kind: String,
    /// Declared type, verbatim.
    pub ty: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// Builds the manifest from the model: every non-plain field, sorted.
#[must_use]
pub fn build(model: &Model) -> Vec<ManifestEntry> {
    let mut entries: Vec<ManifestEntry> = model
        .fields
        .iter()
        .filter(|f| f.kind != FieldKind::Plain)
        .map(|f| ManifestEntry {
            id: f.id(),
            kind: f.kind.label().to_string(),
            ty: f.ty.clone(),
            file: f.file.clone(),
            line: f.line,
        })
        .collect();
    entries.sort();
    entries.dedup_by(|a, b| a.id == b.id && a.kind == b.kind);
    entries
}

/// Minimal JSON string escaping for the fields we emit.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the manifest (one entry object per line — the baseline
/// parser depends on that shape).
#[must_use]
pub fn to_json(entries: &[ManifestEntry], graph: &LockGraph) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"kind\": \"{}\", \"type\": \"{}\", \"file\": \"{}\", \"line\": {} }}{}\n",
            esc(&e.id),
            esc(&e.kind),
            esc(&e.ty),
            esc(&e.file),
            e.line,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"lock_edges\": [\n");
    let mut pairs: Vec<(String, String)> = graph
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    pairs.sort();
    pairs.dedup();
    for (i, (from, to)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"from\": \"{}\", \"to\": \"{}\" }}{}\n",
            esc(from),
            esc(to),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts the quoted value after `"key":` on a line, if present.
fn field_on_line(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let pos = line.find(&pat)?;
    let rest = &line[pos + pat.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => {
                if let Some(n) = chars.next() {
                    out.push(match n {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                }
            }
            c => out.push(c),
        }
    }
    None
}

/// Parses a baseline produced by [`to_json`] into `(id, kind)` pairs.
/// Lines inside the `lock_edges` array are ignored.
#[must_use]
pub fn parse_baseline(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if let (Some(id), Some(kind)) = (field_on_line(line, "id"), field_on_line(line, "kind")) {
            out.push((id, kind));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Diffs the current manifest against the baseline pairs.
#[must_use]
pub fn diff(entries: &[ManifestEntry], baseline: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for e in entries {
        let known = baseline
            .iter()
            .any(|(id, kind)| id == &e.id && kind == &e.kind);
        if !known {
            findings.push(Finding {
                code: "L103",
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "new shared state {} ({}) is not in {BASELINE_REL} — review it and regenerate the baseline with `leopard-lint --update-baseline`",
                    e.id, e.kind
                ),
            });
        }
    }
    for (id, kind) in baseline {
        let exists = entries.iter().any(|e| &e.id == id && &e.kind == kind);
        if !exists {
            findings.push(Finding {
                code: "L103",
                file: BASELINE_REL.to_string(),
                line: 1,
                message: format!(
                    "baseline entry {id} ({kind}) no longer exists in the workspace — regenerate the baseline with `leopard-lint --update-baseline`"
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn entries_of(src: &str) -> Vec<ManifestEntry> {
        let model = Model::build(&[("src/lib.rs".to_string(), src.to_string())]);
        build(&model)
    }

    #[test]
    fn manifest_inventories_all_shared_state() {
        let e = entries_of(
            "struct S {\n    m: Arc<Mutex<u32>>,\n    c: AtomicU64,\n    tx: Sender<u8>,\n    plain: u32,\n}\n",
        );
        let ids: Vec<&str> = e.iter().map(|x| x.id.as_str()).collect();
        assert_eq!(ids, vec!["S.c", "S.m", "S.tx"]);
        assert_eq!(e[0].kind, "atomic");
        assert_eq!(e[1].kind, "mutex");
        assert_eq!(e[2].kind, "channel");
    }

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let e = entries_of("struct S {\n    m: Mutex<Vec<u32>>,\n    c: AtomicBool,\n}\n");
        let json = to_json(&e, &LockGraph::default());
        let parsed = parse_baseline(&json);
        assert_eq!(
            parsed,
            vec![
                ("S.c".to_string(), "atomic".to_string()),
                ("S.m".to_string(), "mutex".to_string()),
            ]
        );
    }

    #[test]
    fn diff_flags_new_and_stale_entries() {
        let e = entries_of("struct S {\n    m: Mutex<u32>,\n}\n");
        let baseline = vec![("S.gone".to_string(), "atomic".to_string())];
        let f = diff(&e, &baseline);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.message.contains("new shared state S.m")));
        assert!(f
            .iter()
            .any(|x| x.message.contains("S.gone") && x.message.contains("no longer")));
        assert!(f.iter().all(|x| x.code == "L103"));
    }

    #[test]
    fn matching_baseline_is_clean() {
        let e = entries_of("struct S {\n    m: Mutex<u32>,\n}\n");
        let json = to_json(&e, &LockGraph::default());
        let baseline = parse_baseline(&json);
        assert!(diff(&e, &baseline).is_empty());
    }
}
