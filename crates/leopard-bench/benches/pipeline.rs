//! Criterion micro-benchmarks for the two-level pipeline (§IV-C):
//! dispatch throughput of the optimized pipeline, the unoptimized
//! variant, and the naive global sorter, over synthetic multi-client
//! streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use leopard_baselines::NaiveSorter;
use leopard_core::{
    ClientId, Interval, OpKind, PipelineConfig, Timestamp, Trace, TwoLevelPipeline, TxnId,
};
use std::hint::black_box;

/// Interleaved per-client streams with mild timing skew.
fn make_streams(clients: usize, per_client: usize) -> Vec<Vec<Trace>> {
    (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    // Client c runs at a slightly different rate.
                    let ts = (i as u64) * (100 + c as u64 * 7) + c as u64;
                    Trace::new(
                        Interval::new(Timestamp(ts), Timestamp(ts + 50)),
                        ClientId(c as u32),
                        TxnId((c * per_client + i) as u64),
                        OpKind::Commit,
                    )
                })
                .collect()
        })
        .collect()
}

fn run_two_level(streams: &[Vec<Trace>], cfg: PipelineConfig) -> u64 {
    let mut p = TwoLevelPipeline::new(streams.len(), cfg);
    let mut cursors = vec![0usize; streams.len()];
    let mut out = 0u64;
    let mut sink = Vec::new();
    loop {
        let mut pushed = false;
        for (i, s) in streams.iter().enumerate() {
            let to = (cursors[i] + 128).min(s.len());
            for t in &s[cursors[i]..to] {
                p.push(i, t.clone()).expect("monotone");
                pushed = true;
            }
            cursors[i] = to;
            if to == s.len() {
                let _ = p.close(i);
            }
        }
        p.drain_available(&mut sink);
        out += sink.drain(..).count() as u64;
        if !pushed {
            break;
        }
    }
    out
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_dispatch");
    for &n in &[10_000usize, 40_000] {
        let streams = make_streams(8, n / 8);
        let total = streams.iter().map(Vec::len).sum::<usize>() as u64;
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(BenchmarkId::new("two_level_opt", n), &streams, |b, s| {
            b.iter(|| black_box(run_two_level(s, PipelineConfig::default())));
        });
        group.bench_with_input(BenchmarkId::new("two_level_no_opt", n), &streams, |b, s| {
            b.iter(|| black_box(run_two_level(s, PipelineConfig::without_optimizations())));
        });
        group.bench_with_input(BenchmarkId::new("naive_sort", n), &streams, |b, s| {
            b.iter(|| {
                let mut sorter = NaiveSorter::new();
                for stream in s {
                    sorter.push_stream(stream.iter().cloned());
                }
                let mut n = 0u64;
                sorter.dispatch_all(|_| n += 1);
                black_box(n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
