//! Criterion comparison of verifiers on identical histories: Leopard's
//! mechanism-mirrored verification vs the naive cycle searcher vs the
//! Cobra polygraph (the Fig. 11 / Fig. 14 comparison as a
//! micro-benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leopard_baselines::{collect_committed, CobraConfig, CobraVerifier, CycleSearchVerifier};
use leopard_bench::{collect_run, fork_clones, leopard_cfg, CollectedRun};
use leopard_core::{IsolationLevel, Verifier};
use leopard_workloads::{BlindW, BlindWVariant};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier_comparison");
    group.sample_size(10);
    let g = BlindW::new(BlindWVariant::ReadWrite);
    let run: CollectedRun = collect_run(
        &g,
        fork_clones(&g, 8),
        IsolationLevel::Serializable,
        150,
        77,
    );

    group.bench_with_input(BenchmarkId::new("leopard", "blindw-rw"), &run, |b, r| {
        b.iter(|| {
            let mut v = Verifier::new(leopard_cfg(IsolationLevel::Serializable));
            for &(k, val) in &r.preload {
                v.preload(k, val);
            }
            for t in &r.merged {
                v.process(t);
            }
            black_box(v.finish().counters.committed)
        });
    });

    group.bench_with_input(
        BenchmarkId::new("cycle_search", "blindw-rw"),
        &run,
        |b, r| {
            b.iter(|| {
                let mut v = CycleSearchVerifier::new();
                for &(k, val) in &r.preload {
                    v.preload(k, val);
                }
                for t in &r.merged {
                    v.process(t);
                }
                black_box(v.finish().nodes)
            });
        },
    );

    for (name, fence) in [("cobra_gc", Some(20u64)), ("cobra_no_gc", None)] {
        group.bench_with_input(BenchmarkId::new(name, "blindw-rw"), &run, |b, r| {
            b.iter(|| {
                let mut v = CobraVerifier::new(CobraConfig {
                    fence_every: fence,
                    search_budget: 1_000_000,
                });
                for &(k, val) in &r.preload {
                    v.preload(k, val);
                }
                for t in collect_committed(&r.merged) {
                    v.add_txn(&t);
                }
                black_box(v.finish().peak_nodes)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
