//! Criterion micro-benchmarks of the four verification mechanisms'
//! building blocks: candidate-set classification (CR), lock-pair order
//! resolution (ME), FUW order resolution, and certifier edge insertion
//! (SC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leopard_core::verify::{DepGraph, LockTable, VersionStore};
use leopard_core::{CertifierRule, DepKind, Interval, Key, Timestamp, TxnId, Value};
use std::hint::black_box;

fn iv(lo: u64, hi: u64) -> Interval {
    Interval::new(Timestamp(lo), Timestamp(hi))
}

/// CR: candidate version set over chains of various lengths.
fn bench_candidate_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("cr_candidate_set");
    for &chain in &[4usize, 16, 64] {
        let mut store = VersionStore::default();
        store.preload(Key(1), Value(0));
        for i in 0..chain as u64 {
            let base = 10 + i * 20;
            store.install(
                Key(1),
                Value(i + 1),
                TxnId(i + 1),
                iv(base, base + 5),
                iv(base, base + 5),
            );
            store.commit(TxnId(i + 1), &[Key(1)], iv(base + 6, base + 12));
        }
        let snapshot = iv(10 + chain as u64 * 10, 10 + chain as u64 * 10 + 4);
        group.bench_with_input(BenchmarkId::from_parameter(chain), &store, |b, s| {
            b.iter(|| black_box(s.check_read(Key(1), Value(chain as u64 / 2), &snapshot, true)));
        });
    }
    group.finish();
}

/// ME: release-time pair checking against a populated lock table.
fn bench_lock_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("me_lock_pairs");
    for &contenders in &[2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(contenders),
            &contenders,
            |b, &n| {
                b.iter(|| {
                    let mut lt = LockTable::default();
                    let mut out = Vec::new();
                    for i in 0..n as u64 {
                        let base = i * 100;
                        lt.acquire(Key(1), TxnId(i + 1), iv(base, base + 10));
                        lt.release_txn(TxnId(i + 1), &[Key(1)], iv(base + 20, base + 30), &mut out);
                    }
                    black_box(out.len())
                });
            },
        );
    }
    group.finish();
}

/// SC: certifier edge insertion under the three rules.
fn bench_certifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("sc_edge_insert");
    let rules = [
        ("ssi", CertifierRule::SsiDangerousStructure),
        ("mvto", CertifierRule::MvtoTimestampOrder),
        ("cycle", CertifierRule::AcyclicGraph),
    ];
    for (name, rule) in rules {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut g = DepGraph::default();
                // A 512-node chain: every insert runs the rule.
                for i in 0..512u64 {
                    let base = i * 100;
                    g.add_node(TxnId(i + 1), iv(base, base + 5), iv(base + 50, base + 60));
                }
                for i in 1..512u64 {
                    black_box(g.add_edge(TxnId(i), TxnId(i + 1), DepKind::Ww, Some(rule)));
                }
                black_box(g.edge_count())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_candidate_set,
    bench_lock_pairs,
    bench_certifier
);
criterion_main!(benches);
