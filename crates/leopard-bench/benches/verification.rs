//! Criterion end-to-end verification throughput (Fig. 11's metric as a
//! micro-benchmark): traces per second through the mechanism-mirrored
//! verifier on pre-collected BlindW histories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use leopard_bench::{collect_run, fork_clones, leopard_cfg, CollectedRun};
use leopard_core::{IsolationLevel, Verifier};
use leopard_workloads::{BlindW, BlindWVariant, WorkloadGen};
use std::hint::black_box;

fn verify(run: &CollectedRun) -> usize {
    let mut v = Verifier::new(leopard_cfg(IsolationLevel::Serializable));
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    for t in &run.merged {
        v.process(t);
    }
    let out = v.finish();
    assert!(out.report.is_clean());
    out.counters.traces as usize
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_end_to_end");
    group.sample_size(20);
    for variant in [
        BlindWVariant::WriteOnly,
        BlindWVariant::ReadWrite,
        BlindWVariant::ReadWriteRange,
    ] {
        let g = BlindW::new(variant);
        let run = collect_run(
            &g,
            fork_clones(&g, 8),
            IsolationLevel::Serializable,
            500,
            99,
        );
        group.throughput(Throughput::Elements(run.merged.len() as u64));
        group.bench_with_input(BenchmarkId::new("leopard", g.name()), &run, |b, r| {
            b.iter(|| black_box(verify(r)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
