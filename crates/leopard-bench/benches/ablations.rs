//! Criterion ablations of the design choices DESIGN.md calls out:
//!
//! * minimal candidate version set (Theorem 2) on/off,
//! * cross-mechanism dependency transfer (§V-A) on/off,
//! * verifier garbage collection on/off,
//! * pipeline optimizations on/off (also covered by Fig. 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leopard_bench::{collect_run, fork_clones, leopard_cfg, CollectedRun};
use leopard_core::{IsolationLevel, Verifier, VerifierConfig};
use leopard_workloads::{BlindW, BlindWVariant};
use std::hint::black_box;

fn verify_with(run: &CollectedRun, cfg: VerifierConfig) -> u64 {
    let mut v = Verifier::new(cfg);
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    for t in &run.merged {
        v.process(t);
    }
    v.finish().counters.committed
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(15);
    let g = BlindW::new(BlindWVariant::ReadWriteRange);
    let run = collect_run(
        &g,
        fork_clones(&g, 8),
        IsolationLevel::Serializable,
        250,
        31,
    );

    let base = leopard_cfg(IsolationLevel::Serializable);

    let variants: Vec<(&str, VerifierConfig)> = vec![
        ("baseline", base),
        ("no_minimal_candidate_set", {
            let mut c = base;
            c.minimal_candidate_set = false;
            c
        }),
        ("no_dep_transfer", {
            let mut c = base;
            c.dep_transfer = false;
            c
        }),
        ("no_gc", {
            let mut c = base;
            c.gc = false;
            c
        }),
        ("gc_every_64", {
            let mut c = base;
            c.gc_every = 64;
            c
        }),
    ];
    for (name, cfg) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &run, |b, r| {
            b.iter(|| black_box(verify_with(r, cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
