//! Observability overhead bench — the same collected capture verified
//! with the metrics registry off vs on, sequentially and at 4 shards.
//!
//! The observability layer promises to be verdict-neutral and close to
//! free: one relaxed atomic load per instrumentation site when disabled,
//! a handful of relaxed atomic adds plus two clock reads per pipeline
//! batch when enabled. This bench quantifies "close to free" on real
//! workloads: each cell is the minimum wall time over several repeats,
//! and the report records the on/off overhead in percent.
//!
//! Emits `BENCH_obs.json` (`--out <path>`).

use leopard_bench::{collect_run_for, fork_clones, header, leopard_cfg, row, CollectedRun};
use leopard_core::obs;
use leopard_core::{IsolationLevel, ShardedVerifier, Verifier};
use std::time::{Duration, Instant};

const LEVEL: IsolationLevel = IsolationLevel::Serializable;

fn sequential_wall(run: &CollectedRun) -> (Duration, String) {
    let mut v = Verifier::new(leopard_cfg(LEVEL));
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    let start = Instant::now();
    for t in &run.merged {
        v.process(t);
    }
    let outcome = v.finish();
    (start.elapsed(), format!("{:?}", outcome.report))
}

fn sharded_wall(run: &CollectedRun, n: usize) -> (Duration, String) {
    let mut v = ShardedVerifier::new(leopard_cfg(LEVEL), n);
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    let start = Instant::now();
    for t in &run.merged {
        v.process(t);
    }
    let outcome = v.finish();
    (start.elapsed(), format!("{:?}", outcome.report))
}

/// Minimum wall time over `reps` runs; asserts every run reaches the
/// same report so the instrumentation provably never bends a verdict.
fn measure(reps: usize, f: impl Fn() -> (Duration, String)) -> (Duration, String) {
    let (mut best, report) = f();
    for _ in 1..reps {
        let (wall, r) = f();
        assert_eq!(report, r, "verdict changed between repeats");
        best = best.min(wall);
    }
    (best, report)
}

/// A named closure producing one (wall time, report) measurement.
type BenchCell<'a> = (&'a str, Box<dyn Fn() -> (Duration, String) + 'a>);

#[derive(serde::Serialize)]
struct EngineRow {
    engine: String,
    off_secs: f64,
    on_secs: f64,
    overhead_pct: f64,
}

#[derive(serde::Serialize)]
struct BenchReport {
    bench: String,
    host_parallelism: usize,
    traces: usize,
    reps: usize,
    note: String,
    engines: Vec<EngineRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let secs = if quick { 1 } else { 4 };
    let reps = if quick { 3 } else { 5 };

    let g = leopard_workloads::SmallBank::new(32_000);
    let gens = fork_clones(&g, 8);
    let run = collect_run_for(&g, gens, LEVEL, Duration::from_secs(secs), 3);

    println!(
        "# Observability overhead — registry off vs on ({} traces, min of {reps} reps)",
        run.merged.len()
    );
    header(&["engine", "obs off (s)", "obs on (s)", "overhead"]);

    let mut engines = Vec::new();
    let cells: Vec<BenchCell<'_>> = vec![
        ("sequential", Box::new(|| sequential_wall(&run))),
        ("sharded-4", Box::new(|| sharded_wall(&run, 4))),
    ];
    for (name, f) in cells {
        obs::set_enabled(false);
        let (off, off_report) = measure(reps, &f);
        obs::reset();
        obs::set_enabled(true);
        let (on, on_report) = measure(reps, &f);
        obs::set_enabled(false);
        assert_eq!(
            off_report, on_report,
            "{name}: enabling observability changed the report"
        );
        let overhead = (on.as_secs_f64() / off.as_secs_f64().max(1e-9) - 1.0) * 100.0;
        row(&[
            name.to_string(),
            format!("{:.3}", off.as_secs_f64()),
            format!("{:.3}", on.as_secs_f64()),
            format!("{overhead:+.2}%"),
        ]);
        engines.push(EngineRow {
            engine: name.to_string(),
            off_secs: off.as_secs_f64(),
            on_secs: on.as_secs_f64(),
            overhead_pct: overhead,
        });
    }

    let report = BenchReport {
        bench: "obs_overhead".to_string(),
        host_parallelism: std::thread::available_parallelism().map_or(0, |n| n.get()),
        traces: run.merged.len(),
        reps,
        note: "min wall time over reps; overhead_pct = on/off - 1. Reports are asserted \
               byte-identical across every cell, so the registry is verdict-neutral."
            .to_string(),
        engines,
    };
    let json = serde_json::to_string(&report).expect("serializable bench report");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
