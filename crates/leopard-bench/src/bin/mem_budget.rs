//! Memory vs. history length under a budget (§VI-E follow-up).
//!
//! BlindW-RW histories of growing length verified four ways: Leopard
//! under an explicit memory budget, Leopard with plain watermark GC,
//! Leopard with GC disabled, and Cobra without fences (the no-GC
//! baseline of Fig. 14). Reports the peak retained-state estimate for
//! each, in bytes.
//!
//! Expected shape: the budgeted verifier stays flat near the budget
//! (bounded by the in-flight working set, which no correct verifier can
//! reclaim), plain GC stays flat slightly above it, and both no-GC
//! configurations grow linearly with the history.

use leopard_baselines::{collect_committed, CobraConfig, CobraVerifier};
use leopard_bench::{
    approx_bytes, collect_run, fmt_bytes, fork_clones, header, leopard_cfg, row, verify_collected,
    CollectedRun,
};
use leopard_core::{IsolationLevel, MemBudget, VerifierConfig};
use leopard_workloads::{BlindW, BlindWVariant};

/// Peak retained bytes of a Leopard pass over the run.
fn leopard_peak(run: &CollectedRun, cfg: VerifierConfig) -> (u64, u64) {
    let (outcome, _) = verify_collected(run, cfg);
    assert!(outcome.report.is_clean(), "{}", outcome.report);
    (
        outcome.counters.budget.peak_bytes,
        outcome.counters.budget.forced_gcs,
    )
}

/// Peak retained bytes of a fence-less Cobra pass over the run.
fn cobra_nogc_peak(run: &CollectedRun) -> f64 {
    let mut v = CobraVerifier::new(CobraConfig {
        fence_every: None,
        search_budget: 2_000_000,
    });
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    let txns = collect_committed(&run.merged);
    for t in &txns {
        v.add_txn(t);
    }
    let out = v.finish();
    assert!(
        matches!(out.verdict, leopard_baselines::CobraVerdict::Serializable),
        "Cobra w/o GC must accept a clean history"
    );
    approx_bytes(out.peak_nodes + out.peak_constraints)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    const BUDGET_BYTES: u64 = 256 * 1024;

    println!("# Memory vs. history length (8 threads, BlindW-RW)");
    println!(
        "(budgeted Leopard capped at {}; no-GC configurations retain everything)\n",
        fmt_bytes(BUDGET_BYTES as f64)
    );
    header(&[
        "txns",
        "traces",
        "Leopard budgeted",
        "forced GCs",
        "Leopard GC",
        "Leopard w/o GC",
        "Cobra w/o GC",
    ]);

    let scales: &[u64] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[500, 1_000, 2_000, 4_000, 8_000]
    };
    for &total in scales {
        // A compact table keeps the irreducible floor (one pivot version
        // per live key, which any verifier must mirror) well under the
        // budget, so the cap genuinely constrains the history-dependent
        // state rather than the database snapshot.
        let g = BlindW::new(BlindWVariant::ReadWrite).with_table_size(128);
        let run = collect_run(
            &g,
            fork_clones(&g, 8),
            IsolationLevel::Serializable,
            total / 8,
            23,
        );

        let mut budgeted_cfg = leopard_cfg(IsolationLevel::Serializable);
        budgeted_cfg.mem_budget = MemBudget::bytes(BUDGET_BYTES);
        let (budgeted, forced) = leopard_peak(&run, budgeted_cfg);

        let (gc, _) = leopard_peak(&run, leopard_cfg(IsolationLevel::Serializable));

        let mut nogc_cfg = leopard_cfg(IsolationLevel::Serializable);
        nogc_cfg.gc = false;
        let (nogc, _) = leopard_peak(&run, nogc_cfg);

        let cobra = cobra_nogc_peak(&run);

        row(&[
            total.to_string(),
            run.merged.len().to_string(),
            fmt_bytes(budgeted as f64),
            forced.to_string(),
            fmt_bytes(gc as f64),
            fmt_bytes(nogc as f64),
            fmt_bytes(cobra),
        ]);
    }
}
