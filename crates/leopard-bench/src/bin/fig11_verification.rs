//! Fig. 11 — Mechanism-mirrored verification time (§VI-B).
//!
//! BlindW-RW+ on the serializable engine; compares Leopard's
//! mechanism-mirrored verification against the naive cycle-searching
//! verifier and against the DBMS's own runtime, sweeping
//! (a) transaction scale, (b) thread scale, (c) transaction length.
//!
//! Expected shape: Leopard linear in (a) and (c), *decreasing* in (b)
//! because contention raises the abort rate and aborted transactions are
//! not verified; the cycle searcher and the DBMS runtime sit orders of
//! magnitude above.

use leopard_baselines::CycleSearchVerifier;
use leopard_bench::{
    collect_run, fmt_dur, fork_clones, header, leopard_cfg, row, verify_collected,
};
use leopard_core::{IsolationLevel, Key, Value};
use leopard_workloads::{BlindW, BlindWVariant};
use std::time::{Duration, Instant};

struct Cell {
    leopard: Duration,
    cycle: Duration,
    dbms: Duration,
    committed: u64,
    aborted: u64,
}

fn measure(txns_total: u64, threads: usize, txn_len: usize, cycle_cap: u64) -> Cell {
    let g = BlindW::new(BlindWVariant::ReadWriteRange).with_ops_per_txn(txn_len);
    let run = collect_run(
        &g,
        fork_clones(&g, threads),
        IsolationLevel::Serializable,
        txns_total / threads as u64,
        11,
    );
    let (outcome, leopard_time) = verify_collected(&run, leopard_cfg(IsolationLevel::Serializable));
    assert!(outcome.report.is_clean(), "{}", outcome.report);

    // Naive cycle search, capped to keep big sweeps finishable; scaled up
    // linearly when capped (a strict under-estimate of its true cost).
    let cycle_time = {
        let mut v = CycleSearchVerifier::new();
        for &(k, val) in &run.preload {
            v.preload(k, val);
        }
        let start = Instant::now();
        let mut committed = 0u64;
        let mut processed = 0usize;
        for t in &run.merged {
            v.process(t);
            processed += 1;
            if matches!(t.op, leopard_core::OpKind::Commit) {
                committed += 1;
                if committed >= cycle_cap {
                    break;
                }
            }
        }
        let measured = start.elapsed();
        let _ = v.finish();
        if committed >= cycle_cap && processed < run.merged.len() {
            measured.mul_f64(run.merged.len() as f64 / processed as f64)
        } else {
            measured
        }
    };

    Cell {
        leopard: leopard_time,
        cycle: cycle_time,
        dbms: run.output.stats.wall,
        committed: run.output.stats.committed,
        aborted: run.output.stats.aborted,
    }
}

fn print_cell(label: String, c: &Cell) {
    row(&[
        label,
        fmt_dur(c.leopard),
        format!("{} (≥)", fmt_dur(c.cycle)),
        fmt_dur(c.dbms),
        c.committed.to_string(),
        c.aborted.to_string(),
    ]);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base: u64 = if quick { 4_000 } else { 20_000 };
    let cycle_cap: u64 = if quick { 1_000 } else { 2_000 };

    // Keep the raw key/value space identical to the paper's default.
    let _ = (Key(0), Value(0));

    println!("# Fig. 11 — Verification time on BlindW-RW+ (defaults: 24 threads, {base} txns, length 8)\n");

    println!("## (a) varying transaction scale");
    header(&[
        "txns",
        "Leopard",
        "cycle search",
        "DBMS runtime",
        "committed",
        "aborted",
    ]);
    let scales: &[u64] = if quick {
        &[1_000, 2_000, 4_000]
    } else {
        &[4_000, 8_000, 16_000, 32_000]
    };
    for &scale in scales {
        let c = measure(scale, 24, 8, cycle_cap);
        print_cell(scale.to_string(), &c);
    }

    println!("\n## (b) varying thread scale ({base} txns)");
    header(&[
        "threads",
        "Leopard",
        "cycle search",
        "DBMS runtime",
        "committed",
        "aborted",
    ]);
    for &threads in &[4usize, 8, 16, 24, 32] {
        let c = measure(base, threads, 8, cycle_cap);
        print_cell(threads.to_string(), &c);
    }

    println!("\n## (c) varying transaction length ({base} txns, 24 threads)");
    header(&[
        "length",
        "Leopard",
        "cycle search",
        "DBMS runtime",
        "committed",
        "aborted",
    ]);
    for &len in &[2usize, 4, 8, 12, 16] {
        let c = measure(base, 24, len, cycle_cap);
        print_cell(len.to_string(), &c);
    }
}
