//! §VI-F — The four published bug cases, reproduced by fault injection.
//!
//! Each scenario injects the mechanism violation behind one of the
//! paper's TiDB bugs, runs Leopard *and* a pure dependency-cycle checker
//! (the detection core of Elle/Cobra-style tools) on the same traces, and
//! prints who caught it. Bugs 1, 3 and 4 produce **no dependency cycle**,
//! so cycle-based detection is structurally blind to them — the paper's
//! §VI-F argument, reproduced in code.

use leopard_baselines::CycleSearchVerifier;
use leopard_bench::{header, row};
use leopard_core::{
    ClientId, IsolationLevel, Key, Mechanism, Trace, Value, Verifier, VerifierConfig,
};
use leopard_db::{Database, DbConfig, FaultKind, FaultPlan, SimClock, TracedSession};
use std::sync::Arc;

struct Scenario {
    name: &'static str,
    bug: &'static str,
    traces: Vec<Trace>,
    preload: Vec<(Key, Value)>,
    level: IsolationLevel,
    expect: Mechanism,
}

fn client(
    db: &Arc<Database>,
    clock: &Arc<SimClock>,
    id: u32,
) -> TracedSession<Arc<SimClock>, Vec<Trace>> {
    TracedSession::new(db.session(), Arc::clone(clock), ClientId(id), Vec::new())
}

fn merge(sessions: Vec<TracedSession<Arc<SimClock>, Vec<Trace>>>) -> Vec<Trace> {
    let mut all: Vec<Trace> = sessions
        .into_iter()
        .flat_map(TracedSession::into_parts)
        .collect();
    all.sort_by_key(|t| (t.ts_bef(), t.ts_aft()));
    all
}

/// Bug 1 — dirty write: an update that "does not modify" the record skips
/// the lock, letting a concurrent transaction write the same record before
/// the first one commits.
fn bug1() -> Scenario {
    let db = Database::with_faults(
        DbConfig::at(IsolationLevel::RepeatableRead),
        FaultPlan::always(FaultKind::FirstWriteNoLock),
    );
    let preload = vec![(Key(676), Value(5012153))];
    db.preload(Key(676), Value(5012153));
    let clock = Arc::new(SimClock::new(10));
    let mut t739 = client(&db, &clock, 0);
    let mut t723 = client(&db, &clock, 1);

    t739.begin();
    // UPDATE t SET b = -5012153 WHERE a = 676: value unchanged -> no lock.
    t739.write(Key(676), Value(5012153)).unwrap();
    t723.begin();
    // Concurrent UPDATE of the same record commits while 739 is open.
    t723.write(Key(676), Value(852150)).unwrap();
    t723.commit().unwrap();
    t739.commit().unwrap();

    Scenario {
        name: "Bug 1: Dirty Write",
        bug: "no-op update skips the lock (TiDB)",
        traces: merge(vec![t739, t723]),
        preload,
        level: IsolationLevel::RepeatableRead,
        expect: Mechanism::MutualExclusion,
    }
}

/// Bug 2 — inconsistent read: a read is served from a stale snapshot,
/// skipping the latest committed update (non-linearizable read).
fn bug2() -> Scenario {
    let db = Database::with_faults(
        DbConfig {
            isolation: IsolationLevel::ReadCommitted,
            stale_snapshot_lag: 1,
            ..DbConfig::default()
        },
        FaultPlan::on_nth(FaultKind::StaleSnapshot, 3),
    );
    let preload = vec![(Key(3873), Value(1123))];
    db.preload(Key(3873), Value(1123));
    let clock = Arc::new(SimClock::new(10));
    let mut t904 = client(&db, &clock, 0);
    let mut t907 = client(&db, &clock, 1);
    let mut t914 = client(&db, &clock, 2);

    t904.begin();
    t904.write(Key(3873), Value(386)).unwrap();
    t904.commit().unwrap();
    t907.begin();
    t907.write(Key(3873), Value(484)).unwrap();
    t907.commit().unwrap();
    // The third snapshot taken in this database is t914's read: stale.
    t914.begin();
    let seen = t914.read(Key(3873)).unwrap();
    t914.commit().unwrap();
    assert_eq!(seen, Some(Value(386)), "fault must serve the stale version");

    Scenario {
        name: "Bug 2: Inconsistent Read",
        bug: "read skips the latest committed update (TiDB)",
        traces: merge(vec![t904, t907, t914]),
        preload,
        level: IsolationLevel::ReadCommitted,
        expect: Mechanism::ConsistentRead,
    }
}

/// Bug 3 — incompatible write locks: a SELECT ... FOR UPDATE through a
/// join forgets the lock acquisition and reads a record whose write lock
/// another transaction holds.
fn bug3() -> Scenario {
    let db = Database::with_faults(
        DbConfig::at(IsolationLevel::RepeatableRead),
        FaultPlan::always(FaultKind::SkipLock),
    );
    let preload = vec![(Key(1), Value(2)), (Key(2), Value(1))];
    db.preload(Key(1), Value(2));
    db.preload(Key(2), Value(1));
    let clock = Arc::new(SimClock::new(10));
    let mut t211 = client(&db, &clock, 0);
    let mut t324 = client(&db, &clock, 1);

    t211.begin();
    t211.write(Key(1), Value(3)).unwrap(); // write lock on record 1... skipped by fault
    t324.begin();
    // SELECT ... FOR UPDATE reads record 1 while 211's lock is held.
    let seen = t324.read_for_update(Key(1)).unwrap();
    assert_eq!(seen, Some(Value(2)));
    t324.commit().unwrap();
    t211.commit().unwrap();

    Scenario {
        name: "Bug 3: Incompatible Write Locks",
        bug: "FOR UPDATE read ignores a held write lock (TiDB)",
        traces: merge(vec![t211, t324]),
        preload,
        level: IsolationLevel::RepeatableRead,
        expect: Mechanism::MutualExclusion,
    }
}

/// Bug 4 — a query returns two versions of one record: the current one
/// and an overwritten (deleted) one.
fn bug4() -> Scenario {
    let db = Database::with_faults(
        DbConfig::at(IsolationLevel::RepeatableRead),
        FaultPlan::always(FaultKind::PhantomExtraVersion),
    );
    let preload = vec![(Key(1), Value(2)), (Key(2), Value(1))];
    db.preload(Key(1), Value(2));
    db.preload(Key(2), Value(1));
    let clock = Arc::new(SimClock::new(10));
    let mut t213 = client(&db, &clock, 0);
    let mut t412 = client(&db, &clock, 1);

    // t213 overwrites record 2 (the "DELETE" of the listing).
    t213.begin();
    t213.write(Key(2), Value(3)).unwrap();
    t213.commit().unwrap();
    // t412's range query returns both the old and the new version.
    t412.begin();
    let rows = t412.read_range(Key(1), 4).unwrap();
    t412.commit().unwrap();
    assert!(
        rows.iter().filter(|(k, _)| *k == Key(2)).count() == 2,
        "fault must return two versions: {rows:?}"
    );

    Scenario {
        name: "Bug 4: Query Returns Two Versions",
        bug: "range read returns an overwritten version too (TiDB, known)",
        traces: merge(vec![t213, t412]),
        preload,
        level: IsolationLevel::RepeatableRead,
        expect: Mechanism::ConsistentRead,
    }
}

fn main() {
    println!("# §VI-F — Bug cases: Leopard vs dependency-cycle checking\n");
    header(&[
        "case",
        "injected fault",
        "Leopard verdict",
        "expected mechanism",
        "cycle checker verdict",
    ]);
    for scenario in [bug1(), bug2(), bug3(), bug4()] {
        // Leopard.
        let mut v = Verifier::new(VerifierConfig::for_level(scenario.level));
        for &(k, val) in &scenario.preload {
            v.preload(k, val);
        }
        for t in &scenario.traces {
            v.process(t);
        }
        let outcome = v.finish();
        let caught = outcome.report.count(scenario.expect) > 0;

        // Pure cycle checking on the same traces.
        let mut c = CycleSearchVerifier::new();
        for &(k, val) in &scenario.preload {
            c.preload(k, val);
        }
        for t in &scenario.traces {
            c.process(t);
        }
        let cycles = c.finish().cycles.len();

        row(&[
            scenario.name.to_string(),
            scenario.bug.to_string(),
            if caught {
                format!("DETECTED ({} violations)", outcome.report.violations.len())
            } else {
                format!("missed: {}", outcome.report)
            },
            format!("{}", scenario.expect),
            if cycles > 0 {
                format!("detected ({cycles} cycles)")
            } else {
                "MISSED (no cycle exists)".to_string()
            },
        ]);
        assert!(caught, "{}: Leopard must detect this bug", scenario.name);
    }
    println!("\nAll four bugs detected by Leopard; cycle-only checkers miss the acyclic ones.");
}
