//! Fig. 4 — Overlapping ratio β in YCSB-A (§IV-B).
//!
//! Runs YCSB-A on the substrate engine and reports the fraction of
//! conflicting operation pairs whose trace intervals overlap (β), sweeping
//! the Zipf skew θ, the thread scale, and the read/write ratio. The
//! paper's shape: β rises with contention (θ, threads) and stays small
//! (single-digit percent).

use leopard_bench::{collect_run_cfg, fork_clones, header, leopard_cfg, row, verify_collected};
use leopard_core::IsolationLevel;
use leopard_db::DbConfig;
use leopard_workloads::{RunLimit, YcsbA};
use std::time::Duration;

fn beta_for(records: u64, theta: f64, threads: usize, read_ratio: f64, txns: u64) -> (f64, u64) {
    let g = YcsbA::new(records, theta).with_read_ratio(read_ratio);
    // Simulated per-op latency gives trace intervals realistic widths
    // (client-server round trips), which is where overlap comes from.
    let cfg = DbConfig {
        op_latency: Duration::from_micros(100),
        ..DbConfig::at(IsolationLevel::Serializable)
    };
    let run = collect_run_cfg(&g, fork_clones(&g, threads), cfg, RunLimit::Txns(txns), 42);
    let (outcome, _) = verify_collected(&run, leopard_cfg(IsolationLevel::Serializable));
    assert!(
        outcome.report.is_clean(),
        "clean engine must verify clean: {}",
        outcome.report
    );
    let c = outcome.stats.combined();
    (c.beta(), c.total())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let records: u64 = if quick { 10_000 } else { 100_000 };
    let txns: u64 = if quick { 1_000 } else { 5_000 };

    println!("# Fig. 4 — Overlapping ratio β in YCSB-A");
    println!("(records = {records}, transactions per client = {txns})\n");

    println!("## (a) varying skew θ (24 threads, 50% reads)");
    header(&["θ", "β", "conflicting pairs"]);
    for theta in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        let (beta, total) = beta_for(records, theta, 24, 0.5, txns);
        row(&[
            format!("{theta}"),
            format!("{:.5}", beta),
            total.to_string(),
        ]);
    }

    println!("\n## (b) varying thread scale (θ = 0.9, 50% reads)");
    header(&["threads", "β", "conflicting pairs"]);
    for threads in [4usize, 8, 16, 24, 32] {
        let (beta, total) = beta_for(records, 0.9, threads, 0.5, txns);
        row(&[
            threads.to_string(),
            format!("{:.5}", beta),
            total.to_string(),
        ]);
    }

    println!("\n## (c) varying read ratio (θ = 0.9, 24 threads)");
    header(&["read ratio", "β", "conflicting pairs"]);
    for ratio in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let (beta, total) = beta_for(records, 0.9, 24, ratio, txns);
        row(&[
            format!("{ratio}"),
            format!("{:.5}", beta),
            total.to_string(),
        ]);
    }
}
