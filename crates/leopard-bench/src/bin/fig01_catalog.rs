//! Fig. 1 — Isolation-level implementations in commercial DBMSs.
//!
//! Prints the mechanism catalog Leopard uses to configure its verifier.

use leopard_bench::{header, row};
use leopard_core::catalog;

fn main() {
    println!("# Fig. 1 — Isolation Level Implementations in DBMSs\n");
    header(&["DBMS", "Concurrency Control", "IL", "ME", "CR", "FUW", "SC"]);
    for profile in catalog() {
        for (level, m) in &profile.levels {
            row(&[
                profile.name.to_string(),
                profile.concurrency_control.to_string(),
                level.to_string(),
                tick(m.mutual_exclusion),
                match m.consistent_read {
                    Some(leopard_core::SnapshotLevel::Transaction) => "✓ (txn)".to_string(),
                    Some(leopard_core::SnapshotLevel::Statement) => "✓ (stmt)".to_string(),
                    None => String::new(),
                },
                tick(m.first_updater_wins),
                match m.certifier {
                    Some(c) => format!("✓ ({c:?})"),
                    None => String::new(),
                },
            ]);
        }
    }
}

fn tick(b: bool) -> String {
    if b {
        "✓".to_string()
    } else {
        String::new()
    }
}
