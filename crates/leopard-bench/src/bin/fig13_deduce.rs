//! Fig. 13 — Effectiveness of deducing dependencies (§VI-D).
//!
//! Runs SmallBank, TPC-C, BlindW-W and BlindW-RW, then splits the
//! overlapping conflicting pairs (β) into the share the four verification
//! mechanisms managed to deduce and the share that stayed uncertain.
//!
//! Expected shape: BlindW-W and BlindW-RW overlaps fully deduced (unique
//! values, lock-resolved blind writes); SmallBank and TPC-C keep a
//! residue of uncertainty from duplicate written values (`amalgamate`
//! zeroes, carrier ids).

use leopard_bench::{collect_run_cfg, header, leopard_cfg, row, verify_collected, CollectedRun};
use leopard_core::{DeductionStats, DepKind, IsolationLevel};
use leopard_db::DbConfig;
use leopard_workloads::{BlindW, BlindWVariant, RunLimit, SmallBank, TpcC, WorkloadGen};
use std::time::Duration;

fn collect(proto: &dyn WorkloadGen, gens: Vec<Box<dyn WorkloadGen>>, txns: u64) -> CollectedRun {
    // Realistic per-op latency so trace intervals have client-server
    // widths — the source of the overlaps Fig. 13 studies.
    let cfg = DbConfig {
        op_latency: Duration::from_micros(100),
        ..DbConfig::at(IsolationLevel::Serializable)
    };
    collect_run_cfg(proto, gens, cfg, RunLimit::Txns(txns), 5)
}

fn report(name: &str, run: &CollectedRun) {
    let (outcome, _) = verify_collected(run, leopard_cfg(IsolationLevel::Serializable));
    assert!(outcome.report.is_clean(), "{name}: {}", outcome.report);
    let stats: DeductionStats = outcome.stats;
    println!("\n## {name}");
    header(&[
        "dep",
        "total pairs",
        "β",
        "deduced share of β",
        "uncertain share of β",
    ]);
    for kind in [DepKind::Ww, DepKind::Wr, DepKind::Rw] {
        let c = stats.of(kind);
        let b = c.overlapping();
        row(&[
            kind.to_string(),
            c.total().to_string(),
            format!("{:.5}", c.beta()),
            if b == 0 {
                "-".into()
            } else {
                format!("{:.1}%", 100.0 * c.deduced as f64 / b as f64)
            },
            if b == 0 {
                "-".into()
            } else {
                format!("{:.1}%", 100.0 * c.uncertain as f64 / b as f64)
            },
        ]);
    }
    let c = stats.combined();
    row(&[
        "all".into(),
        c.total().to_string(),
        format!("{:.5}", c.beta()),
        format!("{:.1}%", 100.0 * c.deduction_rate()),
        format!("{:.1}%", 100.0 * (1.0 - c.deduction_rate())),
    ]);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let txns: u64 = if quick { 500 } else { 4_000 };
    let threads = 16usize;

    println!(
        "# Fig. 13 — Deduced vs uncertain dependencies ({threads} clients, {txns} txns/client)"
    );

    let g = SmallBank::new(256);
    report(
        "(a) SmallBank",
        &collect(&g, leopard_bench::fork_clones(&g, threads), txns),
    );

    let g = TpcC::new(1);
    let gens: Vec<Box<dyn WorkloadGen>> = (0..threads)
        .map(|_| Box::new(g.for_client()) as _)
        .collect();
    report("(b) TPC-C", &collect(&g, gens, txns));

    let g = BlindW::new(BlindWVariant::WriteOnly);
    report(
        "(c) BlindW-W",
        &collect(&g, leopard_bench::fork_clones(&g, threads), txns),
    );

    let g = BlindW::new(BlindWVariant::ReadWrite);
    report(
        "(d) BlindW-RW",
        &collect(&g, leopard_bench::fork_clones(&g, threads), txns),
    );
}
