//! Fig. 10 — Two-level pipeline performance (§VI-A).
//!
//! Compares trace sorting/dispatching between:
//! * **Leopard** — the two-level pipeline with both §IV-C optimizations,
//! * **w/o Opt** — Algorithm 1 verbatim (fetch everything, no bound),
//! * **naive** — one global buffer collecting and sorting all traces.
//!
//! Reports peak buffered traces (the memory metric of Fig. 10(a)) and the
//! dispatch wall time (Fig. 10(b)) as the transaction scale grows, for
//! TPC-C, SmallBank and BlindW-RW+.

use leopard_baselines::NaiveSorter;
use leopard_bench::{collect_run, fmt_dur, header, row, CollectedRun};
use leopard_core::{IsolationLevel, PipelineConfig, Trace, TwoLevelPipeline};
use leopard_workloads::{BlindW, BlindWVariant, SmallBank, TpcC, WorkloadGen};
use std::time::{Duration, Instant};

/// Streams per-client traces into a pipeline in *time-windowed* batches
/// (emulating the 0.5 s batching of §VI-C: every round delivers the
/// traces each client produced during one wall-clock window), draining
/// between rounds. Returns the peak **global buffer** occupancy — the
/// structure the §IV-C optimizations bound — the dispatch wall time, and
/// the dispatched count.
fn run_pipeline(per_client: &[Vec<Trace>], cfg: PipelineConfig) -> (usize, Duration, u64) {
    let mut pipeline = TwoLevelPipeline::new(per_client.len(), cfg);
    let mut cursors = vec![0usize; per_client.len()];
    let hi = per_client
        .iter()
        .filter_map(|s| s.last().map(|t| t.ts_bef().0))
        .max()
        .unwrap_or(0);
    let lo = per_client
        .iter()
        .filter_map(|s| s.first().map(|t| t.ts_bef().0))
        .min()
        .unwrap_or(0);
    let window = ((hi - lo) / 100).max(1);
    let mut out = Vec::new();
    let start = Instant::now();
    let mut window_end = lo;
    loop {
        window_end += window;
        let mut remaining = false;
        for (i, stream) in per_client.iter().enumerate() {
            while cursors[i] < stream.len() && stream[cursors[i]].ts_bef().0 <= window_end {
                pipeline
                    .push(i, stream[cursors[i]].clone())
                    .expect("monotone per client");
                cursors[i] += 1;
            }
            if cursors[i] >= stream.len() {
                pipeline.close(i).expect("valid client");
            } else {
                remaining = true;
            }
        }
        pipeline.drain_available(&mut out);
        if !remaining {
            break;
        }
    }
    pipeline.drain_available(&mut out);
    let elapsed = start.elapsed();
    let stats = pipeline.stats();
    assert!(pipeline.is_exhausted(), "pipeline must drain fully");
    assert!(out.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
    (stats.max_global, elapsed, stats.dispatched)
}

fn run_naive(per_client: &[Vec<Trace>]) -> (usize, Duration, u64) {
    let mut sorter = NaiveSorter::new();
    let start = Instant::now();
    for stream in per_client {
        sorter.push_stream(stream.iter().cloned());
    }
    let mut n = 0u64;
    let stats = sorter.dispatch_all(|_| n += 1);
    (stats.max_buffered, start.elapsed(), n)
}

fn bench_workload(
    name: &str,
    make: &dyn Fn() -> Vec<Box<dyn WorkloadGen>>,
    proto: &dyn WorkloadGen,
    scales: &[u64],
) {
    println!("\n## {name}");
    header(&[
        "txns",
        "traces",
        "Leopard peak buf",
        "w/o Opt peak buf",
        "naive peak buf",
        "Leopard time",
        "w/o Opt time",
        "naive time",
    ]);
    for &scale in scales {
        let threads = 8;
        let run: CollectedRun = collect_run(
            proto,
            make(),
            IsolationLevel::Serializable,
            scale / threads as u64,
            7,
        );
        let per_client = &run.output.per_client;
        let (opt_mem, opt_time, n1) = run_pipeline(per_client, PipelineConfig::default());
        let (noopt_mem, noopt_time, n2) =
            run_pipeline(per_client, PipelineConfig::without_optimizations());
        let (naive_mem, naive_time, n3) = run_naive(per_client);
        assert_eq!(n1, n2);
        assert_eq!(n2, n3);
        row(&[
            scale.to_string(),
            n1.to_string(),
            opt_mem.to_string(),
            noopt_mem.to_string(),
            naive_mem.to_string(),
            fmt_dur(opt_time),
            fmt_dur(noopt_time),
            fmt_dur(naive_time),
        ]);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scales: Vec<u64> = if quick {
        vec![2_000, 8_000]
    } else {
        vec![10_000, 40_000, 100_000, 200_000]
    };
    println!("# Fig. 10 — Two-level pipeline vs naive sorting (8 clients)");

    let tpcc = TpcC::new(2);
    bench_workload(
        "TPC-C",
        &|| (0..8).map(|_| Box::new(tpcc.for_client()) as _).collect(),
        &tpcc,
        &scales,
    );

    let smallbank = SmallBank::new(1_000);
    bench_workload(
        "SmallBank",
        &|| leopard_bench::fork_clones(&smallbank, 8),
        &smallbank,
        &scales,
    );

    let blindw = BlindW::new(BlindWVariant::ReadWriteRange);
    bench_workload(
        "BlindW-RW+",
        &|| leopard_bench::fork_clones(&blindw, 8),
        &blindw,
        &scales,
    );
}
