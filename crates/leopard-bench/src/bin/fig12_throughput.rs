//! Fig. 12 — Workload throughput vs Leopard throughput (§VI-C).
//!
//! Runs SmallBank and TPC-C continuously for a fixed wall-clock window,
//! then measures how fast Leopard can verify the produced trace stream.
//! Leopard "catches up" when its verification throughput (committed
//! transactions per second of verification time) is at least the DBMS's
//! commit throughput — with the gap largest on complex workloads (TPC-C),
//! whose per-transaction execution cost dwarfs verification cost.

use leopard_bench::{collect_run_for, header, leopard_cfg, row, verify_collected};
use leopard_core::IsolationLevel;
use leopard_workloads::{SmallBank, TpcC, WorkloadGen};
use std::time::Duration;

/// Builds the prototype generator and one generator per client for a
/// given scale factor.
type MakeWorkload = dyn Fn(u64) -> (Box<dyn WorkloadGen>, Vec<Box<dyn WorkloadGen>>);

fn bench(name: &str, scales: &[u64], make: &MakeWorkload, secs: u64) {
    println!("\n## {name}");
    header(&[
        "scale factor",
        "DBMS tput (txn/s)",
        "Leopard tput (txn/s)",
        "ratio",
        "committed",
    ]);
    for &scale in scales {
        let (proto, gens) = make(scale);
        let run = collect_run_for(
            proto.as_ref(),
            gens,
            IsolationLevel::Serializable,
            Duration::from_secs(secs),
            3,
        );
        let (outcome, verify_time) =
            verify_collected(&run, leopard_cfg(IsolationLevel::Serializable));
        assert!(outcome.report.is_clean(), "{}", outcome.report);
        let dbms_tput = run.output.stats.throughput();
        let leopard_tput = outcome.counters.committed as f64 / verify_time.as_secs_f64();
        row(&[
            scale.to_string(),
            format!("{dbms_tput:.0}"),
            format!("{leopard_tput:.0}"),
            format!("{:.1}x", leopard_tput / dbms_tput.max(1.0)),
            outcome.counters.committed.to_string(),
        ]);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let secs = if quick { 1 } else { 5 };
    let threads = 8usize;

    println!("# Fig. 12 — DBMS throughput vs Leopard verification throughput ({threads} clients, {secs}s runs)");

    bench(
        "(a) SmallBank (scale factor = accounts/1000)",
        &[1, 2, 4, 8],
        &move |scale| {
            let g = SmallBank::new(scale * 1_000);
            let gens = leopard_bench::fork_clones(&g, threads);
            (Box::new(g) as Box<dyn WorkloadGen>, gens)
        },
        secs,
    );

    bench(
        "(b) TPC-C (scale factor = warehouses)",
        &[1, 2, 4, 8],
        &move |scale| {
            let g = TpcC::new(scale);
            let gens: Vec<Box<dyn WorkloadGen>> = (0..threads)
                .map(|_| Box::new(g.for_client()) as _)
                .collect();
            (Box::new(g) as Box<dyn WorkloadGen>, gens)
        },
        secs,
    );
}
