//! Shard-scaling bench — sequential verifier vs [`ShardedVerifier`] at
//! 1/2/4/8 shards on the Fig. 12 workloads (SmallBank, TPC-C).
//!
//! Two numbers per shard count:
//!
//! - **wall** — measured wall-clock on this host. Meaningful only when
//!   the host has at least as many cores as shards; CI containers here
//!   are single-core, where broadcasting every trace to N timesliced
//!   workers can only cost, never pay.
//! - **critical path** — `max(shard busy) + driver busy`, each measured
//!   with per-thread cumulative timers. This is the wall-clock floor on
//!   a host with one core per shard, and the number the speedup column
//!   reports scaling from.
//!
//! Emits `BENCH_shards.json` (`--out <path>`) with both, plus host
//! parallelism so readers can judge which column applies.

use leopard_bench::{
    collect_run_for, header, leopard_cfg, row, verify_collected, verify_collected_sharded,
};
use leopard_core::IsolationLevel;
use leopard_workloads::{SmallBank, TpcC, WorkloadGen};
use std::time::Duration;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

struct Cell {
    shards: usize,
    wall: Duration,
    critical_path: Duration,
    max_shard_busy: Duration,
    driver_busy: Duration,
    epoch_apply: Duration,
    gc_pause: Duration,
    shard_batch: Duration,
}

struct Bench {
    workload: String,
    traces: usize,
    committed: u64,
    seq: Duration,
    cells: Vec<Cell>,
}

fn bench(
    name: &str,
    proto: Box<dyn WorkloadGen>,
    gens: Vec<Box<dyn WorkloadGen>>,
    secs: u64,
) -> Bench {
    let cfg = leopard_cfg(IsolationLevel::Serializable);
    let run = collect_run_for(
        proto.as_ref(),
        gens,
        IsolationLevel::Serializable,
        Duration::from_secs(secs),
        3,
    );
    let (seq_outcome, seq_time) = verify_collected(&run, cfg);
    assert!(seq_outcome.report.is_clean(), "{}", seq_outcome.report);

    println!(
        "\n## {name} ({} traces, sequential verify {:.3} s)",
        run.merged.len(),
        seq_time.as_secs_f64()
    );
    header(&[
        "shards",
        "wall (s)",
        "critical path (s)",
        "max shard busy (s)",
        "driver (s)",
        "projected speedup",
    ]);
    let mut cells = Vec::new();
    for n in SHARD_COUNTS {
        let (outcome, wall, breakdown) = verify_collected_sharded(&run, cfg, n);
        assert!(outcome.report.is_clean(), "{}", outcome.report);
        assert_eq!(
            format!("{:?}", seq_outcome.report),
            format!("{:?}", outcome.report),
            "sharded report diverged at {n} shards"
        );
        let max_busy = breakdown
            .shard_busy
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO);
        let critical = max_busy + breakdown.driver_busy;
        row(&[
            n.to_string(),
            format!("{:.3}", wall.as_secs_f64()),
            format!("{:.3}", critical.as_secs_f64()),
            format!("{:.3}", max_busy.as_secs_f64()),
            format!("{:.3}", breakdown.driver_busy.as_secs_f64()),
            format!(
                "{:.2}x",
                seq_time.as_secs_f64() / critical.as_secs_f64().max(1e-9)
            ),
        ]);
        cells.push(Cell {
            shards: n,
            wall,
            critical_path: critical,
            max_shard_busy: max_busy,
            driver_busy: breakdown.driver_busy,
            epoch_apply: breakdown.epoch_apply,
            gc_pause: breakdown.gc_pause,
            shard_batch: breakdown.shard_batch,
        });
    }
    Bench {
        workload: name.to_string(),
        traces: run.merged.len(),
        committed: seq_outcome.counters.committed,
        seq: seq_time,
        cells,
    }
}

#[derive(serde::Serialize)]
struct ResultRow {
    shards: usize,
    wall_secs: f64,
    critical_path_secs: f64,
    max_shard_busy_secs: f64,
    driver_busy_secs: f64,
    epoch_apply_secs: f64,
    gc_pause_secs: f64,
    shard_batch_secs: f64,
    projected_speedup: f64,
}

#[derive(serde::Serialize)]
struct WorkloadReport {
    workload: String,
    traces: usize,
    committed: u64,
    results: Vec<ResultRow>,
}

#[derive(serde::Serialize)]
struct BenchReport {
    bench: String,
    host_parallelism: usize,
    note: String,
    workloads: Vec<WorkloadReport>,
}

fn json_out(benches: Vec<Bench>) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let workloads = benches
        .into_iter()
        .map(|b| {
            let seq = b.seq.as_secs_f64();
            let results = std::iter::once(ResultRow {
                shards: 1,
                wall_secs: seq,
                critical_path_secs: seq,
                max_shard_busy_secs: seq,
                driver_busy_secs: 0.0,
                epoch_apply_secs: 0.0,
                gc_pause_secs: 0.0,
                shard_batch_secs: 0.0,
                projected_speedup: 1.0,
            })
            .chain(b.cells.iter().map(|c| ResultRow {
                shards: c.shards,
                wall_secs: c.wall.as_secs_f64(),
                critical_path_secs: c.critical_path.as_secs_f64(),
                max_shard_busy_secs: c.max_shard_busy.as_secs_f64(),
                driver_busy_secs: c.driver_busy.as_secs_f64(),
                epoch_apply_secs: c.epoch_apply.as_secs_f64(),
                gc_pause_secs: c.gc_pause.as_secs_f64(),
                shard_batch_secs: c.shard_batch.as_secs_f64(),
                projected_speedup: seq / c.critical_path.as_secs_f64().max(1e-9),
            }))
            .collect();
            WorkloadReport {
                workload: b.workload,
                traces: b.traces,
                committed: b.committed,
                results,
            }
        })
        .collect();
    let report = BenchReport {
        bench: "shards".to_string(),
        host_parallelism: cores,
        note: "wall_secs is measured on this host; critical_path_secs = max(shard busy) + \
               driver busy, the wall-clock floor with one core per shard. projected_speedup \
               compares the single-thread verifier to that floor."
            .to_string(),
        workloads,
    };
    serde_json::to_string(&report).expect("serializable bench report")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let secs = if quick { 1 } else { 4 };
    let threads = 8usize;

    println!("# Shard scaling — sequential vs ShardedVerifier at 1/2/4/8 shards ({threads} clients, {secs}s runs)");
    println!(
        "host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    let sb = SmallBank::new(32_000);
    let sb_gens = leopard_bench::fork_clones(&sb, threads);
    let a = bench("smallbank", Box::new(sb), sb_gens, secs);

    let tp = TpcC::new(4);
    let tp_gens: Vec<Box<dyn WorkloadGen>> = (0..threads)
        .map(|_| Box::new(tp.for_client()) as _)
        .collect();
    let b = bench("tpcc", Box::new(tp), tp_gens, secs);

    let json = json_out(vec![a, b]);
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
