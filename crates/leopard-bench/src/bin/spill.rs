//! Spill-tier bench — verification cost when the capture outgrows the
//! memory budget and cold state pages to disk.
//!
//! One SmallBank run is verified four ways: fully in memory with no
//! budget (the baseline, whose governed peak footprint defines `P`),
//! then under budgets of `P/2`, `P/4` and `P/8` with a spill tier
//! attached — i.e. captures 2×, 4× and 8× the budget. Per cell:
//!
//! - **wall / throughput** — verification wall time and traces/s, so the
//!   cost of paging is visible as a curve, not a feeling;
//! - **peak bytes** — the governed in-memory peak, which must stay
//!   pinned near the budget (the flat line that is the whole point);
//! - **spill traffic** — passes, records out/in, bytes on disk, and the
//!   spill-pass stage histogram from the observability registry;
//! - **zero-coverage-loss guards** — budget evictions and spill
//!   fallbacks must both be zero, and the verdict must match the
//!   baseline's bit for bit.
//!
//! Emits `BENCH_spill.json` (`--out <path>`).

use leopard_bench::{collect_run, fork_clones, header, leopard_cfg, row, verify_collected};
use leopard_core::obs;
use leopard_core::{IsolationLevel, MemBudget, SpillSettings, SpillTier, Verifier, VerifyOutcome};
use leopard_workloads::SmallBank;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const FACTORS: [u64; 3] = [2, 4, 8];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("leopard-bench-spill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Cell {
    factor: u64,
    budget: u64,
    wall: Duration,
    peak_bytes: u64,
    spill_passes: u64,
    spilled_records: u64,
    records_in: u64,
    spill_bytes: u64,
    spill_pass_time: Duration,
    retries: u64,
}

/// Verifies the collected run under `budget` with a spill tier,
/// returning the outcome plus spill traffic read back from the
/// observability registry.
fn verify_spilling(
    run: &leopard_bench::CollectedRun,
    level: IsolationLevel,
    budget: u64,
    tag: &str,
) -> (VerifyOutcome, Cell) {
    let was_enabled = obs::enabled();
    obs::reset();
    obs::set_enabled(true);
    let dir = tmp_dir(tag);
    let settings = SpillSettings::new(&dir);
    let mut cfg = leopard_cfg(level);
    cfg.mem_budget = MemBudget::bytes(budget);
    let mut v = Verifier::new(cfg);
    v.attach_spill(SpillTier::open(&settings).expect("open spill tier"));
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    let start = Instant::now();
    for t in &run.merged {
        v.process(t);
    }
    let outcome = v.finish();
    let wall = start.elapsed();
    obs::set_enabled(was_enabled);
    let _ = std::fs::remove_dir_all(&dir);

    let snap = outcome.obs.clone().expect("obs snapshot enabled");
    let hist_sum = |name: &str| {
        Duration::from_micros(
            snap.histograms
                .iter()
                .find(|h| h.name == name)
                .map_or(0, |h| h.sum_us),
        )
    };
    let b = &outcome.counters.budget;
    let cell = Cell {
        factor: 0,
        budget,
        wall,
        peak_bytes: b.peak_bytes,
        spill_passes: b.spill_passes,
        spilled_records: b.spilled_records,
        records_in: snap.counter("leopard_spill_records_in_total").unwrap_or(0),
        spill_bytes: snap.gauge("leopard_spill_bytes").unwrap_or(0),
        spill_pass_time: hist_sum("leopard_spill_pass_us"),
        retries: snap.counter("leopard_spill_retries_total").unwrap_or(0),
    };
    (outcome, cell)
}

#[derive(serde::Serialize)]
struct ResultRow {
    capture_over_budget: u64,
    budget_bytes: u64,
    wall_secs: f64,
    traces_per_sec: f64,
    peak_bytes: u64,
    spill_passes: u64,
    spilled_records: u64,
    spill_records_in: u64,
    spill_bytes_on_disk: u64,
    spill_pass_secs: f64,
    spill_retries: u64,
}

#[derive(serde::Serialize)]
struct BenchReport {
    bench: String,
    workload: String,
    traces: usize,
    committed: u64,
    baseline_wall_secs: f64,
    baseline_peak_bytes: u64,
    note: String,
    results: Vec<ResultRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let txns: u64 = if quick { 200 } else { 2000 };
    let threads = 4usize;
    let level = IsolationLevel::Serializable;

    println!("# Spill tier — in-memory vs disk-spilling at 2x/4x/8x the budget ({threads} clients, {txns} txns each)");

    let sb = SmallBank::new(32_000);
    let gens = fork_clones(&sb, threads);
    let run = collect_run(&sb, gens, level, txns, 3);
    let (base, base_wall) = verify_collected(&run, leopard_cfg(level));
    assert!(base.report.is_clean(), "{}", base.report);
    let peak = base.counters.budget.peak_bytes;
    println!(
        "baseline: {} traces, {:.3} s, governed peak {} bytes",
        run.merged.len(),
        base_wall.as_secs_f64(),
        peak
    );

    header(&[
        "capture/budget",
        "budget (B)",
        "wall (s)",
        "traces/s",
        "peak (B)",
        "passes",
        "records out",
        "spill time (s)",
    ]);
    let mut cells = Vec::new();
    for factor in FACTORS {
        let budget = (peak / factor).max(4096);
        let (outcome, mut cell) = verify_spilling(&run, level, budget, &format!("x{factor}"));
        cell.factor = factor;
        assert!(outcome.report.is_clean(), "{}", outcome.report);
        assert_eq!(
            format!("{:?}", base.report),
            format!("{:?}", outcome.report),
            "spilling changed the verdict at {factor}x"
        );
        assert_eq!(
            outcome.counters.budget.budget_evictions, 0,
            "spill rung failed to pre-empt eviction at {factor}x"
        );
        assert_eq!(
            outcome.counters.budget.spill_fallbacks, 0,
            "healthy-disk run fell back at {factor}x"
        );
        assert!(
            outcome.store_fault.is_none(),
            "healthy-disk run latched a store fault at {factor}x"
        );
        row(&[
            format!("{factor}x"),
            cell.budget.to_string(),
            format!("{:.3}", cell.wall.as_secs_f64()),
            format!(
                "{:.0}",
                run.merged.len() as f64 / cell.wall.as_secs_f64().max(1e-9)
            ),
            cell.peak_bytes.to_string(),
            cell.spill_passes.to_string(),
            cell.spilled_records.to_string(),
            format!("{:.3}", cell.spill_pass_time.as_secs_f64()),
        ]);
        cells.push(cell);
    }

    let report = BenchReport {
        bench: "spill".to_string(),
        workload: "smallbank".to_string(),
        traces: run.merged.len(),
        committed: base.counters.committed,
        baseline_wall_secs: base_wall.as_secs_f64(),
        baseline_peak_bytes: peak,
        note: "budget_bytes = baseline peak / factor, so the capture is factor x the \
               budget. peak_bytes staying pinned near budget_bytes while spilled_records \
               grows is the zero-coverage-loss spill working as designed; budget \
               evictions and fallbacks are asserted zero."
            .to_string(),
        results: cells
            .iter()
            .map(|c| ResultRow {
                capture_over_budget: c.factor,
                budget_bytes: c.budget,
                wall_secs: c.wall.as_secs_f64(),
                traces_per_sec: run.merged.len() as f64 / c.wall.as_secs_f64().max(1e-9),
                peak_bytes: c.peak_bytes,
                spill_passes: c.spill_passes,
                spilled_records: c.spilled_records,
                spill_records_in: c.records_in,
                spill_bytes_on_disk: c.spill_bytes,
                spill_pass_secs: c.spill_pass_time.as_secs_f64(),
                spill_retries: c.retries,
            })
            .collect(),
    };
    let json = serde_json::to_string(&report).expect("serializable bench report");
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write bench report");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
