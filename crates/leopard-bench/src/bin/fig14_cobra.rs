//! Fig. 14 — Comparison with Cobra on efficiency (§VI-E).
//!
//! BlindW-RW histories verified by Leopard, Cobra (fence every 20 txns)
//! and Cobra w/o GC. Reports verification wall time and the retained-state
//! footprint (graph nodes + constraints for Cobra; mirrored entries for
//! Leopard), sweeping transaction scale and thread scale.
//!
//! Expected shape: Leopard linear time / flat memory; Cobra super-linear
//! time; Cobra w/o GC worst memory.

use leopard_baselines::{collect_committed, CobraConfig, CobraVerifier};
use leopard_bench::{
    collect_run, fmt_dur, fork_clones, header, leopard_cfg, row, verify_collected, CollectedRun,
};
use leopard_core::IsolationLevel;
use leopard_workloads::{BlindW, BlindWVariant};
use std::time::{Duration, Instant};

struct CobraCell {
    time: Duration,
    peak_state: usize,
    ok: bool,
}

fn run_cobra(run: &CollectedRun, fence: Option<u64>) -> CobraCell {
    let mut v = CobraVerifier::new(CobraConfig {
        fence_every: fence,
        search_budget: 2_000_000,
    });
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    let txns = collect_committed(&run.merged);
    let start = Instant::now();
    for t in &txns {
        v.add_txn(t);
    }
    let out = v.finish();
    CobraCell {
        time: start.elapsed(),
        peak_state: out.peak_nodes + out.peak_constraints,
        ok: matches!(out.verdict, leopard_baselines::CobraVerdict::Serializable),
    }
}

fn measure(txns_total: u64, threads: usize) -> Vec<String> {
    let g = BlindW::new(BlindWVariant::ReadWrite);
    let run = collect_run(
        &g,
        fork_clones(&g, threads),
        IsolationLevel::Serializable,
        txns_total / threads as u64,
        23,
    );
    let (outcome, leopard_time) = verify_collected(&run, leopard_cfg(IsolationLevel::Serializable));
    assert!(outcome.report.is_clean(), "{}", outcome.report);
    let leopard_mem = outcome.counters.peak_footprint;

    let cobra = run_cobra(&run, Some(20));
    let cobra_nogc = run_cobra(&run, None);
    assert!(cobra.ok, "Cobra must accept a clean serializable history");
    assert!(cobra_nogc.ok, "Cobra w/o GC must accept a clean history");

    vec![
        fmt_dur(leopard_time),
        fmt_dur(cobra.time),
        fmt_dur(cobra_nogc.time),
        leopard_mem.to_string(),
        cobra.peak_state.to_string(),
        cobra_nogc.peak_state.to_string(),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("# Fig. 14 — Leopard vs Cobra on BlindW-RW");
    println!("(state = retained entries: Leopard mirrored structures; Cobra graph nodes + constraints)\n");

    println!("## (a,b) varying transaction scale (8 threads)");
    header(&[
        "txns",
        "Leopard time",
        "Cobra time",
        "Cobra w/o GC time",
        "Leopard state",
        "Cobra state",
        "Cobra w/o GC state",
    ]);
    let scales: &[u64] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[500, 1_000, 2_000, 4_000]
    };
    for &scale in scales {
        let mut cells = vec![scale.to_string()];
        cells.extend(measure(scale, 8));
        row(&cells);
    }

    println!("\n## (c,d) varying thread scale (2K txns)");
    header(&[
        "threads",
        "Leopard time",
        "Cobra time",
        "Cobra w/o GC time",
        "Leopard state",
        "Cobra state",
        "Cobra w/o GC state",
    ]);
    let total = if quick { 1_000 } else { 2_000 };
    for &threads in &[4usize, 8, 16, 32] {
        let mut cells = vec![threads.to_string()];
        cells.extend(measure(total, threads));
        row(&cells);
    }
}
