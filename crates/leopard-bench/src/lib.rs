//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the paper's evaluation (§VI).
//!
//! Each binary in `src/bin/` reproduces one figure; see `DESIGN.md` for
//! the experiment index and `EXPERIMENTS.md` for recorded results.

use leopard_core::obs;
use leopard_core::{
    IsolationLevel, Key, ObsSnapshot, ShardedVerifier, Trace, Value, Verifier, VerifierConfig,
    VerifyOutcome,
};
use leopard_db::{Database, DbConfig};
use leopard_workloads::{preload_database, run_collect, RunLimit, RunOutput, WorkloadGen};
use std::time::{Duration, Instant};

/// A collected workload run: everything a verifier needs to replay it.
pub struct CollectedRun {
    /// Initial database contents.
    pub preload: Vec<(Key, Value)>,
    /// Per-client trace streams plus run statistics.
    pub output: RunOutput,
    /// Merged stream sorted by `ts_bef`.
    pub merged: Vec<Trace>,
}

/// Runs the given generators against a fresh database at `level`,
/// collecting all traces. One client per generator.
pub fn collect_run(
    proto: &dyn WorkloadGen,
    gens: Vec<Box<dyn WorkloadGen>>,
    level: IsolationLevel,
    txns_per_client: u64,
    seed: u64,
) -> CollectedRun {
    collect_run_cfg(
        proto,
        gens,
        DbConfig::at(level),
        RunLimit::Txns(txns_per_client),
        seed,
    )
}

/// Runs against a database with an explicit configuration (e.g. with
/// simulated operation latency for the overlap studies).
pub fn collect_run_cfg(
    proto: &dyn WorkloadGen,
    gens: Vec<Box<dyn WorkloadGen>>,
    cfg: DbConfig,
    limit: RunLimit,
    seed: u64,
) -> CollectedRun {
    let db = Database::new(cfg);
    let preload = preload_database(&db, proto);
    let output = run_collect(&db, gens, limit, seed);
    let merged = output.merged_sorted();
    CollectedRun {
        preload,
        output,
        merged,
    }
}

/// Runs the given generators for a fixed wall-clock duration.
pub fn collect_run_for(
    proto: &dyn WorkloadGen,
    gens: Vec<Box<dyn WorkloadGen>>,
    level: IsolationLevel,
    duration: Duration,
    seed: u64,
) -> CollectedRun {
    let db = Database::new(DbConfig::at(level));
    let preload = preload_database(&db, proto);
    let output = run_collect(&db, gens, RunLimit::Duration(duration), seed);
    let merged = output.merged_sorted();
    CollectedRun {
        preload,
        output,
        merged,
    }
}

/// Clones a `Clone` generator for `n` clients.
pub fn fork_clones<G: WorkloadGen + Clone + 'static>(g: &G, n: usize) -> Vec<Box<dyn WorkloadGen>> {
    (0..n).map(|_| Box::new(g.clone()) as _).collect()
}

/// Replays a collected run through a Leopard verifier, returning the
/// outcome and the verification wall time.
pub fn verify_collected(run: &CollectedRun, cfg: VerifierConfig) -> (VerifyOutcome, Duration) {
    let mut v = Verifier::new(cfg);
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    let start = Instant::now();
    for t in &run.merged {
        v.process(t);
    }
    let outcome = v.finish();
    (outcome, start.elapsed())
}

/// Per-stage wall-time breakdown of a verification run, read back from
/// the observability registry ([`leopard_core::obs`]) after the run.
#[derive(Debug, Clone, Default)]
pub struct StageBreakdown {
    /// Cumulative busy time of each shard worker thread.
    pub shard_busy: Vec<Duration>,
    /// Cumulative driver/certifier busy time.
    pub driver_busy: Duration,
    /// Total driver time spent merging worker epochs.
    pub epoch_apply: Duration,
    /// Total time spent in GC passes/barriers (driver and workers).
    pub gc_pause: Duration,
    /// Total worker time spent applying trace batches.
    pub shard_batch: Duration,
}

impl StageBreakdown {
    /// Extracts the breakdown from an observability snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &ObsSnapshot) -> StageBreakdown {
        let hist_sum = |name: &str| {
            Duration::from_micros(
                snap.histograms
                    .iter()
                    .find(|h| h.name == name)
                    .map_or(0, |h| h.sum_us),
            )
        };
        StageBreakdown {
            shard_busy: snap
                .shard_busy_us
                .iter()
                .map(|&us| Duration::from_micros(us))
                .collect(),
            driver_busy: Duration::from_micros(
                snap.counter("leopard_driver_busy_us_total").unwrap_or(0),
            ),
            epoch_apply: hist_sum("leopard_epoch_apply_us"),
            gc_pause: hist_sum("leopard_gc_pause_us"),
            shard_batch: hist_sum("leopard_shard_batch_us"),
        }
    }
}

/// Replays a collected run through the key-sharded verifier at `n`
/// worker shards, returning the outcome, the wall time and the
/// per-stage busy breakdown (for critical-path scaling projections on
/// hosts with fewer cores than shards).
///
/// Resets and enables the process-global observability registry for the
/// duration of the run (the breakdown is read back from it), restoring
/// the previous enablement afterwards.
pub fn verify_collected_sharded(
    run: &CollectedRun,
    cfg: VerifierConfig,
    n: usize,
) -> (VerifyOutcome, Duration, StageBreakdown) {
    let was_enabled = obs::enabled();
    obs::reset();
    obs::set_enabled(true);
    let mut v = ShardedVerifier::new(cfg, n);
    for &(k, val) in &run.preload {
        v.preload(k, val);
    }
    let start = Instant::now();
    for t in &run.merged {
        v.process(t);
    }
    let outcome = v.finish();
    let wall = start.elapsed();
    obs::set_enabled(was_enabled);
    let breakdown = outcome
        .obs
        .as_ref()
        .map(StageBreakdown::from_snapshot)
        .unwrap_or_default();
    (outcome, wall, breakdown)
}

/// Default Leopard configuration for a collected run at `level`.
#[must_use]
pub fn leopard_cfg(level: IsolationLevel) -> VerifierConfig {
    VerifierConfig::for_level(level)
}

/// Approximate retained bytes for an entry-count footprint (entries
/// dominate and average ~64 bytes each across the mirrored structures).
#[must_use]
pub fn approx_bytes(entries: usize) -> f64 {
    entries as f64 * 64.0
}

/// Formats a byte count human-readably.
#[must_use]
pub fn fmt_bytes(bytes: f64) -> String {
    if bytes >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes / 1024.0 / 1024.0)
    } else if bytes >= 1024.0 {
        format!("{:.1} KiB", bytes / 1024.0)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a duration compactly.
#[must_use]
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    }
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_workloads::{BlindW, BlindWVariant};

    #[test]
    fn collect_and_verify_round_trip() {
        let g = BlindW::new(BlindWVariant::ReadWrite).with_table_size(64);
        let run = collect_run(&g, fork_clones(&g, 2), IsolationLevel::Serializable, 20, 7);
        assert!(run.merged.len() > 10);
        let (outcome, _) = verify_collected(&run, leopard_cfg(IsolationLevel::Serializable));
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert!(fmt_bytes(2048.0).contains("KiB"));
        assert!(fmt_bytes(3.0 * 1024.0 * 1024.0).contains("MiB"));
        assert!(fmt_dur(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).contains("s"));
        assert!(fmt_dur(Duration::from_nanos(500)).contains("µs"));
    }
}
