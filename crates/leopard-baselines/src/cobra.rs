//! A reimplementation of Cobra's core verification algorithm (OSDI'20),
//! the state-of-the-art baseline of §VI-E / Fig. 14.
//!
//! Cobra checks *serializability only*, of key-value histories whose
//! writes carry unique values. It builds a **polygraph**:
//!
//! * known edges — per-client session order and wr edges from
//!   unique-value matching;
//! * constraints — binary choices whose resolution is unknown:
//!   * `ww {a→b | b→a}` for two writers of the same key,
//!   * `wr-choice {w'→w | r→w'}` for a read of `w`'s version of a key
//!     that `w'` also wrote (`w'` happened either before the version the
//!     read saw, or after the read).
//!
//! Verification searches for an orientation of all constraints that keeps
//! the graph acyclic: a **pruning** pass forces choices whose alternative
//! would close a cycle (one reachability query each — the super-linear
//! cost driver), then **backtracking** covers whatever remains (real
//! Cobra hands this to an SMT solver).
//!
//! With `fence_every = Some(n)`, a fence closes an epoch every `n`
//! transactions; constraints touching transactions two epochs back are
//! resolved eagerly with a whole-graph traverse and those transactions are
//! dropped — Cobra's garbage collection, trading the traverse for bounded
//! memory (Fig. 14(b)).

use crate::history::TxnRecord;
use leopard_core::fxhash::{FxHashMap, FxHashSet};
use leopard_core::{Key, TxnId, Value};

/// Cobra configuration.
#[derive(Debug, Clone, Copy)]
pub struct CobraConfig {
    /// Insert a fence every `Some(n)` transactions (Cobra's GC); `None`
    /// disables garbage collection ("Cobra w/o GC").
    pub fence_every: Option<u64>,
    /// Backtracking budget (node expansions) before reporting `Unknown`.
    pub search_budget: u64,
}

impl Default for CobraConfig {
    fn default() -> CobraConfig {
        CobraConfig {
            fence_every: Some(20),
            search_budget: 1_000_000,
        }
    }
}

/// Verdict of a Cobra run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CobraVerdict {
    /// An acyclic orientation exists: the history is serializable.
    Serializable,
    /// No acyclic orientation exists: serializability violation.
    Violation {
        /// A witness description.
        witness: String,
    },
    /// The search budget ran out before a decision.
    Unknown,
}

/// Outcome plus cost metrics.
#[derive(Debug)]
pub struct CobraOutcome {
    /// The verdict.
    pub verdict: CobraVerdict,
    /// Peak number of live graph nodes (memory metric of Fig. 14(b)/(d)).
    pub peak_nodes: usize,
    /// Peak number of live constraints (memory metric component).
    pub peak_constraints: usize,
    /// Total reachability-node visits (machine-independent cost metric
    /// exhibiting the super-linear growth of Fig. 14(a)/(c)).
    pub visited: u64,
    /// Constraints that still needed backtracking after pruning.
    pub residual_constraints: usize,
}

/// A binary ordering choice: either `options[0]` or `options[1]` must be
/// an edge. An option with destination `TxnId::INITIAL` is infeasible; an
/// option with source `TxnId::INITIAL` is vacuously satisfied.
#[derive(Debug, Clone, Copy)]
struct Constraint {
    options: [(TxnId, TxnId); 2],
}

#[derive(Debug, Default)]
struct Graph {
    out: FxHashMap<TxnId, FxHashSet<TxnId>>,
}

impl Graph {
    fn add_node(&mut self, n: TxnId) {
        self.out.entry(n).or_default();
    }

    fn contains(&self, n: TxnId) -> bool {
        self.out.contains_key(&n)
    }

    fn add_edge(&mut self, a: TxnId, b: TxnId) {
        if a != b && a != TxnId::INITIAL && b != TxnId::INITIAL {
            self.out.entry(a).or_default().insert(b);
        }
    }

    fn remove_edge(&mut self, a: TxnId, b: TxnId) {
        if let Some(s) = self.out.get_mut(&a) {
            s.remove(&b);
        }
    }

    fn reachable(&self, from: TxnId, to: TxnId, visited: &mut u64) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen: FxHashSet<TxnId> = FxHashSet::default();
        seen.insert(from);
        while let Some(n) = stack.pop() {
            *visited += 1;
            if let Some(succs) = self.out.get(&n) {
                for &s in succs {
                    if s == to {
                        return true;
                    }
                    if seen.insert(s) {
                        stack.push(s);
                    }
                }
            }
        }
        false
    }

    fn remove_node(&mut self, n: TxnId) {
        self.out.remove(&n);
        for succs in self.out.values_mut() {
            succs.remove(&n);
        }
    }

    fn len(&self) -> usize {
        self.out.len()
    }
}

/// The Cobra-style verifier. Feed committed transactions in commit order
/// (see [`crate::history::collect_committed`]), then call
/// [`CobraVerifier::finish`].
#[derive(Debug)]
pub struct CobraVerifier {
    cfg: CobraConfig,
    graph: Graph,
    /// value -> writer, for wr matching (unique-value assumption).
    writer_of: FxHashMap<(Key, Value), TxnId>,
    /// key -> all writers so far.
    writers: FxHashMap<Key, Vec<TxnId>>,
    /// key -> (reader, writer whose version it saw).
    reads: FxHashMap<Key, Vec<(TxnId, TxnId)>>,
    /// last committed txn per client (session order edges).
    sessions: FxHashMap<leopard_core::ClientId, TxnId>,
    constraints: Vec<Constraint>,
    seen_txns: u64,
    peak_nodes: usize,
    peak_constraints: usize,
    visited: u64,
    violation: Option<String>,
    epochs: Vec<Vec<TxnId>>,
    current_epoch: Vec<TxnId>,
}

impl CobraVerifier {
    /// New verifier.
    #[must_use]
    pub fn new(cfg: CobraConfig) -> CobraVerifier {
        CobraVerifier {
            cfg,
            graph: Graph::default(),
            writer_of: FxHashMap::default(),
            writers: FxHashMap::default(),
            reads: FxHashMap::default(),
            sessions: FxHashMap::default(),
            constraints: Vec::new(),
            seen_txns: 0,
            peak_nodes: 0,
            peak_constraints: 0,
            visited: 0,
            violation: None,
            epochs: Vec::new(),
            current_epoch: Vec::new(),
        }
    }

    /// Registers the initial database state.
    pub fn preload(&mut self, key: Key, value: Value) {
        self.writer_of.insert((key, value), TxnId::INITIAL);
    }

    /// Adds one committed transaction.
    pub fn add_txn(&mut self, txn: &TxnRecord) {
        self.seen_txns += 1;
        self.graph.add_node(txn.id);
        self.current_epoch.push(txn.id);

        // Session order: per-client transactions are serialized by the
        // client itself.
        if let Some(prev) = self.sessions.insert(txn.client, txn.id) {
            self.graph.add_edge(prev, txn.id);
        }

        // wr edges by unique-value matching, plus wr-choice constraints
        // against every other writer of the key.
        for &(k, v) in &txn.reads {
            let Some(&w) = self.writer_of.get(&(k, v)) else {
                self.violation = Some(format!(
                    "read of value never written: {k}={v} by {}",
                    txn.id
                ));
                continue;
            };
            self.graph.add_edge(w, txn.id);
            for &other in self.writers.get(&k).into_iter().flatten() {
                if other != w && other != txn.id {
                    // `other` wrote k either before the version the read
                    // saw, or after the read itself.
                    self.constraints.push(Constraint {
                        options: [(other, w), (txn.id, other)],
                    });
                }
            }
            self.reads.entry(k).or_default().push((txn.id, w));
        }

        // ww constraints against earlier writers, wr-choice constraints
        // against earlier reads of this key.
        for &(k, v) in &txn.writes {
            for &(reader, w) in self.reads.get(&k).into_iter().flatten() {
                if txn.id != w && txn.id != reader {
                    self.constraints.push(Constraint {
                        options: [(txn.id, w), (reader, txn.id)],
                    });
                }
            }
            let ws = self.writers.entry(k).or_default();
            for &earlier in ws.iter() {
                if earlier != txn.id {
                    self.constraints.push(Constraint {
                        options: [(earlier, txn.id), (txn.id, earlier)],
                    });
                }
            }
            ws.push(txn.id);
            self.writer_of.insert((k, v), txn.id);
        }
        self.peak_constraints = self.peak_constraints.max(self.constraints.len());

        // Fence-based garbage collection.
        if let Some(every) = self.cfg.fence_every {
            if self.seen_txns.is_multiple_of(every) {
                self.fence();
            }
        }
        self.peak_nodes = self.peak_nodes.max(self.graph.len());
    }

    /// Tries to orient one constraint right now. Returns `Some(edge)` for a
    /// forced choice, `None` when still open or vacuous; records a
    /// violation when neither option is feasible.
    fn resolve(&mut self, c: Constraint) -> Option<(TxnId, TxnId)> {
        let feasible = |g: &Graph, (a, b): (TxnId, TxnId), visited: &mut u64| -> Option<bool> {
            if b == TxnId::INITIAL {
                return Some(false); // nothing precedes the initial state
            }
            if a == TxnId::INITIAL {
                return None; // vacuously satisfied, no edge needed
            }
            Some(!g.reachable(b, a, visited))
        };
        let f0 = feasible(&self.graph, c.options[0], &mut self.visited);
        let f1 = feasible(&self.graph, c.options[1], &mut self.visited);
        match (f0, f1) {
            // An INITIAL-source option satisfies the constraint for free.
            (None, _) | (_, None) => None,
            (Some(false), Some(false)) => {
                self.violation = Some(format!(
                    "constraint {{{}→{} | {}→{}}} has no acyclic option",
                    c.options[0].0, c.options[0].1, c.options[1].0, c.options[1].1
                ));
                None
            }
            (Some(true), Some(false)) => Some(c.options[0]),
            (Some(false), Some(true)) => Some(c.options[1]),
            (Some(true), Some(true)) => {
                // Still open: keep for later.
                self.constraints.push(c);
                None
            }
        }
    }

    /// Epoch boundary: resolve constraints touching transactions two
    /// epochs back (one graph traverse each), then drop those
    /// transactions.
    fn fence(&mut self) {
        self.epochs.push(std::mem::take(&mut self.current_epoch));
        if self.epochs.len() < 3 {
            return;
        }
        let frozen: Vec<TxnId> = self.epochs.remove(0);
        let frozen_set: FxHashSet<TxnId> = frozen.iter().copied().collect();
        let (touching, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.constraints)
            .into_iter()
            .partition(|c| {
                c.options
                    .iter()
                    .any(|(a, b)| frozen_set.contains(a) || frozen_set.contains(b))
            });
        self.constraints = rest;
        for c in touching {
            // One reachability pass per constraint — the fence's cost.
            // Choices pruning cannot force stay open; once their frozen
            // endpoints are dropped they are treated as satisfied (a real
            // Cobra fence transaction adds edges that make every frozen
            // choice forced, which our trace-only reconstruction lacks).
            if let Some(edge) = self.resolve(c) {
                self.graph.add_edge(edge.0, edge.1);
            }
        }
        for id in frozen {
            self.graph.remove_node(id);
            self.reads
                .values_mut()
                .for_each(|v| v.retain(|(r, _)| *r != id));
            self.writers
                .values_mut()
                .for_each(|v| v.retain(|w| *w != id));
        }
        self.reads.retain(|_, v| !v.is_empty());
        self.writers.retain(|_, v| !v.is_empty());
    }

    /// Resolves every remaining constraint and returns the outcome.
    #[must_use]
    pub fn finish(mut self) -> CobraOutcome {
        // Pruning passes: repeat until no constraint gets forced, because
        // each forced edge can force others.
        loop {
            if self.violation.is_some() {
                break;
            }
            let pending = std::mem::take(&mut self.constraints);
            let before_open = pending.len();
            let mut forced_any = false;
            for c in pending {
                // Skip constraints touching GC'd transactions: their
                // ordering was baked in (or given up on) at the fence.
                if c.options.iter().any(|(a, b)| {
                    (!self.graph.contains(*a) && *a != TxnId::INITIAL)
                        || (!self.graph.contains(*b) && *b != TxnId::INITIAL)
                }) {
                    continue;
                }
                if let Some(edge) = self.resolve(c) {
                    self.graph.add_edge(edge.0, edge.1);
                    forced_any = true;
                }
            }
            if self.violation.is_some() || !forced_any || self.constraints.len() == before_open {
                break;
            }
        }
        if let Some(witness) = self.violation.take() {
            return CobraOutcome {
                verdict: CobraVerdict::Violation { witness },
                peak_nodes: self.peak_nodes,
                peak_constraints: self.peak_constraints,
                visited: self.visited,
                residual_constraints: self.constraints.len(),
            };
        }
        let open = std::mem::take(&mut self.constraints);
        let residual = open.len();
        let mut budget = self.cfg.search_budget;
        let decided = self.backtrack(&open, 0, &mut budget);
        let verdict = match decided {
            Some(true) => CobraVerdict::Serializable,
            Some(false) => CobraVerdict::Violation {
                witness: "no acyclic constraint orientation exists".to_string(),
            },
            None => CobraVerdict::Unknown,
        };
        CobraOutcome {
            verdict,
            peak_nodes: self.peak_nodes,
            peak_constraints: self.peak_constraints,
            visited: self.visited,
            residual_constraints: residual,
        }
    }

    /// `Some(true)` = satisfiable, `Some(false)` = unsatisfiable,
    /// `None` = budget exhausted.
    fn backtrack(&mut self, open: &[Constraint], idx: usize, budget: &mut u64) -> Option<bool> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let Some(c) = open.get(idx) else {
            return Some(true);
        };
        let mut exhausted = false;
        for (a, b) in c.options {
            if b == TxnId::INITIAL {
                continue;
            }
            if a == TxnId::INITIAL {
                // Vacuously satisfied: no edge needed.
                match self.backtrack(open, idx + 1, budget) {
                    Some(true) => return Some(true),
                    Some(false) => continue,
                    None => exhausted = true,
                }
                continue;
            }
            if !self.graph.reachable(b, a, &mut self.visited) {
                let fresh = !self.graph.out.get(&a).is_some_and(|s| s.contains(&b));
                self.graph.add_edge(a, b);
                match self.backtrack(open, idx + 1, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => exhausted = true,
                }
                if fresh {
                    self.graph.remove_edge(a, b);
                }
            }
        }
        if exhausted {
            None
        } else {
            Some(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::collect_committed;
    use leopard_core::TraceBuilder;

    fn verify(
        traces: Vec<leopard_core::Trace>,
        preload: &[(u64, u64)],
        cfg: CobraConfig,
    ) -> CobraOutcome {
        let mut v = CobraVerifier::new(cfg);
        for &(k, val) in preload {
            v.preload(Key(k), Value(val));
        }
        for txn in collect_committed(&traces) {
            v.add_txn(&txn);
        }
        v.finish()
    }

    #[test]
    fn serial_history_is_serializable() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        b.commit(12, 13, 0, 1);
        b.read(20, 21, 0, 2, vec![(1, 5)]);
        b.commit(22, 23, 0, 2);
        let out = verify(b.build_sorted(), &[(1, 0)], CobraConfig::default());
        assert_eq!(out.verdict, CobraVerdict::Serializable);
    }

    #[test]
    fn write_skew_is_a_violation() {
        let mut b = TraceBuilder::new();
        b.read(0, 2, 0, 1, vec![(1, 0)]);
        b.read(1, 3, 1, 2, vec![(2, 0)]);
        b.write(10, 12, 0, 1, vec![(2, 5)]);
        b.write(11, 13, 1, 2, vec![(1, 6)]);
        b.commit(20, 22, 0, 1);
        b.commit(21, 23, 1, 2);
        let out = verify(b.build_sorted(), &[(1, 0), (2, 0)], CobraConfig::default());
        assert!(
            matches!(out.verdict, CobraVerdict::Violation { .. }),
            "got {:?}",
            out.verdict
        );
    }

    #[test]
    fn blind_writes_alone_are_serializable() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 5)]);
        b.write(11, 13, 1, 2, vec![(1, 6)]);
        b.commit(20, 22, 0, 1);
        b.commit(21, 23, 1, 2);
        let out = verify(b.build_sorted(), &[(1, 0)], CobraConfig::default());
        assert_eq!(out.verdict, CobraVerdict::Serializable);
    }

    #[test]
    fn read_of_unwritten_value_is_flagged() {
        let mut b = TraceBuilder::new();
        b.read(10, 11, 0, 1, vec![(1, 99)]);
        b.commit(12, 13, 0, 1);
        let out = verify(b.build_sorted(), &[(1, 0)], CobraConfig::default());
        assert!(matches!(out.verdict, CobraVerdict::Violation { .. }));
    }

    #[test]
    fn stale_read_after_fresh_read_is_flagged() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        b.commit(12, 13, 0, 1);
        b.write(20, 21, 0, 2, vec![(1, 6)]);
        b.commit(22, 23, 0, 2);
        b.read(30, 31, 1, 3, vec![(1, 6)]);
        b.commit(32, 33, 1, 3);
        b.read(40, 41, 1, 4, vec![(1, 5)]);
        b.commit(42, 43, 1, 4);
        let out = verify(b.build_sorted(), &[(1, 0)], CobraConfig::default());
        assert!(
            matches!(out.verdict, CobraVerdict::Violation { .. }),
            "got {:?}",
            out.verdict
        );
    }

    #[test]
    fn fences_bound_the_graph() {
        let build = || {
            let mut b = TraceBuilder::new();
            for i in 0..120u64 {
                let ts = 10 + i * 10;
                b.read(ts, ts + 1, 0, i + 1, vec![(1, i)]);
                b.write(ts + 2, ts + 3, 0, i + 1, vec![(1, i + 1)]);
                b.commit(ts + 4, ts + 5, 0, i + 1);
            }
            b.build_sorted()
        };
        let with_gc = verify(build(), &[(1, 0)], CobraConfig::default());
        let without_gc = verify(
            build(),
            &[(1, 0)],
            CobraConfig {
                fence_every: None,
                ..CobraConfig::default()
            },
        );
        assert_eq!(with_gc.verdict, CobraVerdict::Serializable);
        assert_eq!(without_gc.verdict, CobraVerdict::Serializable);
        assert!(
            with_gc.peak_nodes < without_gc.peak_nodes / 2,
            "gc {} vs no-gc {}",
            with_gc.peak_nodes,
            without_gc.peak_nodes
        );
    }

    #[test]
    fn multi_client_interleaving_is_serializable() {
        // Two clients alternating reads/writes over two keys, all serial
        // in wall-clock order.
        let mut b = TraceBuilder::new();
        for (txn, i) in (1u64..).zip(0..20u64) {
            let ts = 10 + i * 20;
            let client = (i % 2) as u32;
            let key = 1 + (i % 2);
            b.read(
                ts,
                ts + 1,
                client,
                txn,
                vec![(key, if i < 2 { 0 } else { 100 + i - 2 })],
            );
            b.write(ts + 2, ts + 3, client, txn, vec![(key, 100 + i)]);
            b.commit(ts + 4, ts + 5, client, txn);
        }
        let out = verify(b.build_sorted(), &[(1, 0), (2, 0)], CobraConfig::default());
        assert_eq!(out.verdict, CobraVerdict::Serializable);
    }
}
