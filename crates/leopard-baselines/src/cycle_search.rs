//! The naive cycle-searching verifier (the "cycle searching" baseline of
//! Fig. 11).
//!
//! Builds the full dependency graph as transactions commit and, after
//! *every* commit, runs a depth-first search over the graph to look for a
//! cycle through the new transaction. No garbage collection, no
//! mechanism mirroring: this is the textbook approach whose cost grows
//! super-linearly with history length.

use leopard_core::fxhash::{FxHashMap, FxHashSet};
use leopard_core::{Key, OpKind, Trace, TxnId, Value};

/// Result of a cycle-search run.
#[derive(Debug, Default)]
pub struct CycleSearchOutcome {
    /// Dependency cycles found (each as the list of transactions).
    pub cycles: Vec<Vec<TxnId>>,
    /// Committed transactions in the graph.
    pub nodes: usize,
    /// Dependency edges in the graph.
    pub edges: usize,
    /// Total nodes visited across all searches — a machine-independent
    /// cost metric demonstrating the super-linear growth.
    pub visited: u64,
}

#[derive(Debug, Default)]
struct OpenTxn {
    reads: Vec<(Key, usize)>,
    writes: Vec<(Key, Value)>,
    own: FxHashMap<Key, Value>,
}

/// The naive verifier.
#[derive(Debug, Default)]
pub struct CycleSearchVerifier {
    open: FxHashMap<TxnId, OpenTxn>,
    /// Committed versions per key, in commit order; each with its readers.
    versions: FxHashMap<Key, Vec<(Value, TxnId, Vec<TxnId>)>>,
    out: FxHashMap<TxnId, FxHashSet<TxnId>>,
    edges: usize,
    outcome: CycleSearchOutcome,
}

impl CycleSearchVerifier {
    /// New empty verifier.
    #[must_use]
    pub fn new() -> CycleSearchVerifier {
        CycleSearchVerifier::default()
    }

    /// Preloads the initial value of a key (version 0, no writer node).
    pub fn preload(&mut self, key: Key, value: Value) {
        self.versions
            .entry(key)
            .or_default()
            .push((value, TxnId::INITIAL, Vec::new()));
    }

    /// Processes one trace (sorted stream).
    pub fn process(&mut self, trace: &Trace) {
        match &trace.op {
            OpKind::Read(set) | OpKind::LockedRead(set) => {
                let open = self.open.entry(trace.txn).or_default();
                for &(k, v) in set {
                    if open.own.contains_key(&k) {
                        continue;
                    }
                    // Match against the latest version carrying the value:
                    // the naive approach assumes commit order is version
                    // order and values identify versions.
                    if let Some(list) = self.versions.get(&k) {
                        if let Some(idx) = list.iter().rposition(|(val, _, _)| *val == v) {
                            open.reads.push((k, idx));
                        }
                    }
                }
            }
            OpKind::Write(set) => {
                let open = self.open.entry(trace.txn).or_default();
                for &(k, v) in set {
                    open.own.insert(k, v);
                    open.writes.push((k, v));
                }
            }
            OpKind::Abort => {
                self.open.remove(&trace.txn);
            }
            OpKind::Commit => {
                let Some(open) = self.open.remove(&trace.txn) else {
                    return;
                };
                self.commit_txn(trace.txn, open);
            }
        }
    }

    fn commit_txn(&mut self, id: TxnId, open: OpenTxn) {
        self.out.entry(id).or_default();
        let mut new_edges: Vec<(TxnId, TxnId)> = Vec::new();
        // wr edges and reader registration.
        for (k, idx) in &open.reads {
            if let Some(list) = self.versions.get_mut(k) {
                if let Some((_, writer, readers)) = list.get_mut(*idx) {
                    if *writer != TxnId::INITIAL {
                        new_edges.push((*writer, id));
                    }
                    readers.push(id);
                }
                // rw edge to the direct successor if it already exists.
                if let Some((_, succ, _)) = list.get(idx + 1) {
                    if *succ != TxnId::INITIAL {
                        new_edges.push((id, *succ));
                    }
                }
            }
        }
        // ww edges and rw edges from the predecessor's readers.
        let mut dedup_keys: Vec<(Key, Value)> = Vec::new();
        for &(k, v) in &open.writes {
            if let Some(pos) = dedup_keys.iter().position(|(dk, _)| *dk == k) {
                dedup_keys[pos] = (k, v);
            } else {
                dedup_keys.push((k, v));
            }
        }
        for (k, v) in dedup_keys {
            let list = self.versions.entry(k).or_default();
            if let Some((_, prev, readers)) = list.last() {
                if *prev != TxnId::INITIAL && *prev != id {
                    new_edges.push((*prev, id));
                }
                for r in readers {
                    if *r != id {
                        new_edges.push((*r, id));
                    }
                }
            }
            list.push((v, id, Vec::new()));
        }
        for (from, to) in new_edges {
            if from == to {
                continue;
            }
            if self.out.entry(from).or_default().insert(to) {
                self.edges += 1;
            }
        }
        // Full whole-graph cycle search after every commit — the naive
        // approach's defining cost: O(V + E) per transaction.
        if let Some(cycle) = self.search_cycle() {
            self.outcome.cycles.push(cycle);
        }
    }

    /// Whole-graph DFS cycle detection (iterative three-colour marking).
    fn search_cycle(&mut self) -> Option<Vec<TxnId>> {
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        enum Ev {
            Enter(TxnId),
            Exit(TxnId),
        }
        let mut color: FxHashMap<TxnId, u8> = FxHashMap::default();
        let mut path: Vec<TxnId> = Vec::new();
        let roots: Vec<TxnId> = self.out.keys().copied().collect();
        for root in roots {
            if color.contains_key(&root) {
                continue;
            }
            let mut stack = vec![Ev::Enter(root)];
            while let Some(ev) = stack.pop() {
                match ev {
                    Ev::Enter(n) => {
                        if color.contains_key(&n) {
                            continue;
                        }
                        self.outcome.visited += 1;
                        color.insert(n, GRAY);
                        path.push(n);
                        stack.push(Ev::Exit(n));
                        for &next in self.out.get(&n).into_iter().flatten() {
                            match color.get(&next) {
                                Some(&GRAY) => {
                                    let start = path
                                        .iter()
                                        .position(|&p| p == next)
                                        .expect("gray nodes are on the path");
                                    let mut cycle = path[start..].to_vec();
                                    cycle.push(next);
                                    return Some(cycle);
                                }
                                Some(_) => {}
                                None => stack.push(Ev::Enter(next)),
                            }
                        }
                    }
                    Ev::Exit(n) => {
                        color.insert(n, BLACK);
                        path.pop();
                    }
                }
            }
        }
        None
    }

    /// Finishes, returning the accumulated outcome.
    #[must_use]
    pub fn finish(mut self) -> CycleSearchOutcome {
        self.outcome.nodes = self.out.len();
        self.outcome.edges = self.edges;
        self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_core::TraceBuilder;

    fn run(traces: Vec<Trace>, preload: &[(u64, u64)]) -> CycleSearchOutcome {
        let mut v = CycleSearchVerifier::new();
        for &(k, val) in preload {
            v.preload(Key(k), Value(val));
        }
        for t in &traces {
            v.process(t);
        }
        v.finish()
    }

    #[test]
    fn serial_history_has_no_cycle() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        b.commit(12, 13, 0, 1);
        b.read(20, 21, 1, 2, vec![(1, 5)]);
        b.commit(22, 23, 1, 2);
        let out = run(b.build_sorted(), &[(1, 0)]);
        assert!(out.cycles.is_empty());
        assert_eq!(out.nodes, 2);
        assert!(out.edges >= 1);
    }

    #[test]
    fn write_skew_forms_a_cycle() {
        // t1 reads k1 writes k2; t2 reads k2 writes k1; both commit.
        // rw(t1->t2) and rw(t2->t1) close a cycle.
        let mut b = TraceBuilder::new();
        b.read(0, 2, 0, 1, vec![(1, 0)]);
        b.read(1, 3, 1, 2, vec![(2, 0)]);
        b.write(10, 12, 0, 1, vec![(2, 5)]);
        b.write(11, 13, 1, 2, vec![(1, 6)]);
        b.commit(20, 22, 0, 1);
        b.commit(21, 23, 1, 2);
        let out = run(b.build_sorted(), &[(1, 0), (2, 0)]);
        assert_eq!(out.cycles.len(), 1, "write skew must close a cycle");
    }

    #[test]
    fn aborted_transactions_contribute_nothing() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        b.abort(12, 13, 0, 1);
        let out = run(b.build_sorted(), &[(1, 0)]);
        assert_eq!(out.nodes, 0);
    }

    #[test]
    fn visited_grows_with_chain_length() {
        // A long serial chain: each search walks the whole suffix, so
        // total visited grows super-linearly.
        let mut b = TraceBuilder::new();
        let n = 100u64;
        for i in 0..n {
            let ts = 10 + i * 10;
            b.read(ts, ts + 1, 0, i + 1, vec![(1, i)]);
            b.write(ts + 2, ts + 3, 0, i + 1, vec![(1, i + 1)]);
            b.commit(ts + 4, ts + 5, 0, i + 1);
        }
        let out = run(b.build_sorted(), &[(1, 0)]);
        assert!(out.cycles.is_empty());
        assert!(
            out.visited as usize > out.nodes * 2,
            "visited {} should exceed nodes {}",
            out.visited,
            out.nodes
        );
    }
}
