//! Shared history model for the baseline verifiers: a sorted trace stream
//! folded into per-transaction records.
//!
//! Cobra and the naive cycle-searching verifier both reason about whole
//! committed transactions rather than individual operations, so they first
//! assemble the trace stream into [`TxnRecord`]s.

use leopard_core::fxhash::FxHashMap;
use leopard_core::{ClientId, Interval, Key, OpKind, Trace, TxnId, Value};

/// One committed transaction reassembled from its traces.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// Transaction id.
    pub id: TxnId,
    /// The client that ran it (Cobra uses per-client session order).
    pub client: ClientId,
    /// Every (key, value) the transaction read, first observation wins.
    pub reads: Vec<(Key, Value)>,
    /// Every (key, value) the transaction finally wrote (last write per
    /// key wins, as that is the installed version).
    pub writes: Vec<(Key, Value)>,
    /// Interval of the first operation.
    pub start: Interval,
    /// Interval of the commit operation.
    pub commit: Interval,
}

/// Folds a trace stream into committed transactions, in commit order.
/// Aborted and unterminated transactions are dropped (they install
/// nothing).
#[must_use]
pub fn collect_committed(traces: &[Trace]) -> Vec<TxnRecord> {
    struct Partial {
        client: ClientId,
        reads: Vec<(Key, Value)>,
        writes: FxHashMap<Key, Value>,
        write_order: Vec<Key>,
        start: Interval,
    }
    let mut open: FxHashMap<TxnId, Partial> = FxHashMap::default();
    let mut done = Vec::new();
    for t in traces {
        let partial = open.entry(t.txn).or_insert_with(|| Partial {
            client: t.client,
            reads: Vec::new(),
            writes: FxHashMap::default(),
            write_order: Vec::new(),
            start: t.interval,
        });
        match &t.op {
            OpKind::Read(set) | OpKind::LockedRead(set) => {
                for &(k, v) in set {
                    // Only external reads matter for dependencies; skip
                    // observations of our own earlier writes.
                    if !partial.writes.contains_key(&k)
                        && !partial.reads.iter().any(|(rk, _)| *rk == k)
                    {
                        partial.reads.push((k, v));
                    }
                }
            }
            OpKind::Write(set) => {
                for &(k, v) in set {
                    if partial.writes.insert(k, v).is_none() {
                        partial.write_order.push(k);
                    }
                }
            }
            OpKind::Commit => {
                let p = open.remove(&t.txn).expect("entry created above");
                done.push(TxnRecord {
                    id: t.txn,
                    client: p.client,
                    reads: p.reads,
                    writes: p.write_order.iter().map(|k| (*k, p.writes[k])).collect(),
                    start: p.start,
                    commit: t.interval,
                });
            }
            OpKind::Abort => {
                open.remove(&t.txn);
            }
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_core::TraceBuilder;

    #[test]
    fn folds_commits_and_drops_aborts() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        b.commit(12, 13, 0, 1);
        b.write(14, 15, 0, 2, vec![(1, 6)]);
        b.abort(16, 17, 0, 2);
        b.read(20, 21, 1, 3, vec![(1, 5)]);
        b.commit(22, 23, 1, 3);
        let recs = collect_committed(&b.build_sorted());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, TxnId(1));
        assert_eq!(recs[0].writes, vec![(Key(1), Value(5))]);
        assert_eq!(recs[1].reads, vec![(Key(1), Value(5))]);
    }

    #[test]
    fn last_write_per_key_wins() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        b.write(12, 13, 0, 1, vec![(1, 9)]);
        b.commit(14, 15, 0, 1);
        let recs = collect_committed(&b.build_sorted());
        assert_eq!(recs[0].writes, vec![(Key(1), Value(9))]);
    }

    #[test]
    fn own_write_reads_are_not_external_reads() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        b.read(12, 13, 0, 1, vec![(1, 5)]);
        b.commit(14, 15, 0, 1);
        let recs = collect_committed(&b.build_sorted());
        assert!(recs[0].reads.is_empty());
    }

    #[test]
    fn unterminated_transactions_are_dropped() {
        let mut b = TraceBuilder::new();
        b.write(10, 11, 0, 1, vec![(1, 5)]);
        let recs = collect_committed(&b.build_sorted());
        assert!(recs.is_empty());
    }
}
