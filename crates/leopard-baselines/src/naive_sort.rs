//! The naive trace sorter of Fig. 10: one global buffer that accumulates
//! *all* traces from every client and sorts them synchronously.
//!
//! Contrasted with the two-level pipeline, its memory footprint is the
//! whole backlog and its dispatch latency includes a full heap sort of
//! everything collected so far.

use leopard_core::{Timestamp, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Statistics of a naive sorting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveSortStats {
    /// Traces processed.
    pub dispatched: u64,
    /// Peak buffered traces — with the naive approach, everything.
    pub max_buffered: usize,
}

/// The naive sorter: buffer everything, heap-sort, dispatch.
#[derive(Debug, Default)]
pub struct NaiveSorter {
    buffer: Vec<Trace>,
    stats: NaiveSortStats,
}

#[derive(Debug)]
struct ByTsBef(Trace, u64);

impl ByTsBef {
    fn key(&self) -> (Timestamp, Timestamp, u64) {
        (self.0.ts_bef(), self.0.ts_aft(), self.1)
    }
}
impl PartialEq for ByTsBef {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for ByTsBef {}
impl PartialOrd for ByTsBef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByTsBef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl NaiveSorter {
    /// New empty sorter.
    #[must_use]
    pub fn new() -> NaiveSorter {
        NaiveSorter::default()
    }

    /// Buffers one trace (no dispatch happens until `dispatch_all`).
    pub fn push(&mut self, trace: Trace) {
        self.buffer.push(trace);
        self.stats.max_buffered = self.stats.max_buffered.max(self.buffer.len());
    }

    /// Buffers a whole client stream.
    pub fn push_stream(&mut self, traces: impl IntoIterator<Item = Trace>) {
        for t in traces {
            self.push(t);
        }
    }

    /// Sorts everything collected and dispatches it in `ts_bef` order.
    pub fn dispatch_all(&mut self, mut sink: impl FnMut(Trace)) -> NaiveSortStats {
        let mut heap: BinaryHeap<Reverse<ByTsBef>> = BinaryHeap::with_capacity(self.buffer.len());
        for (i, t) in self.buffer.drain(..).enumerate() {
            heap.push(Reverse(ByTsBef(t, i as u64)));
        }
        while let Some(Reverse(ByTsBef(t, _))) = heap.pop() {
            self.stats.dispatched += 1;
            sink(t);
        }
        self.stats
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> NaiveSortStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_core::TraceBuilder;

    #[test]
    fn dispatches_sorted() {
        let mut b = TraceBuilder::new();
        b.commit(30, 31, 0, 1);
        b.commit(10, 11, 1, 2);
        b.commit(20, 21, 2, 3);
        let mut sorter = NaiveSorter::new();
        sorter.push_stream(b.build());
        let mut out = Vec::new();
        let stats = sorter.dispatch_all(|t| out.push(t));
        assert_eq!(stats.dispatched, 3);
        assert_eq!(stats.max_buffered, 3);
        let ts: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn buffers_everything_before_dispatch() {
        let mut sorter = NaiveSorter::new();
        let mut b = TraceBuilder::new();
        for i in 0..100 {
            b.commit(i, i + 1, 0, i);
        }
        sorter.push_stream(b.build());
        assert_eq!(sorter.stats().max_buffered, 100);
        assert_eq!(sorter.stats().dispatched, 0);
    }
}
