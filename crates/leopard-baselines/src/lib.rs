//! # leopard-baselines: the comparison systems of the evaluation
//!
//! Reimplementations of the baselines the Leopard paper measures against:
//!
//! * [`naive_sort`] — the single-global-buffer trace sorter (Fig. 10);
//! * [`cycle_search`] — the dependency-graph + full-cycle-search verifier
//!   (Fig. 11);
//! * [`cobra`] — Cobra's polygraph verifier with fence-transaction
//!   garbage collection and a no-GC variant (Fig. 14, §VI-E);
//! * [`history`] — the shared trace-stream → committed-transaction fold.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cobra;
pub mod cycle_search;
pub mod history;
pub mod naive_sort;

pub use cobra::{CobraConfig, CobraOutcome, CobraVerdict, CobraVerifier};
pub use cycle_search::{CycleSearchOutcome, CycleSearchVerifier};
pub use history::{collect_committed, TxnRecord};
pub use naive_sort::{NaiveSortStats, NaiveSorter};
