//! Bug descriptors: the verifier's output (§V of the paper).
//!
//! Each violation names the mechanism that was broken, the transactions and
//! record involved, and the time intervals that prove the violation, so a
//! report is independently checkable against the raw trace file.

use crate::interval::Interval;
use crate::types::{Key, TxnId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the four implementation mechanisms was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Consistent read (CR).
    ConsistentRead,
    /// Mutual exclusion (ME).
    MutualExclusion,
    /// First updater wins (FUW).
    FirstUpdaterWins,
    /// Serialization certifier (SC).
    SerializationCertifier,
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mechanism::ConsistentRead => "CR",
            Mechanism::MutualExclusion => "ME",
            Mechanism::FirstUpdaterWins => "FUW",
            Mechanism::SerializationCertifier => "SC",
        };
        f.write_str(s)
    }
}

/// One concrete violation with its evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A read observed a value no candidate version could have produced:
    /// either a version that should be invisible, a lost version, or a
    /// value that was never written.
    ConsistentRead {
        /// The reading transaction.
        reader: TxnId,
        /// The record that was read.
        key: Key,
        /// The value the read observed.
        observed: Value,
        /// The snapshot generation time interval of the read.
        snapshot: Interval,
        /// Values of the candidate version set the read was allowed to see.
        candidates: Vec<Value>,
    },
    /// Two conflicting locks were certainly held at the same time
    /// (every feasible order of the lock operations is incompatible).
    MutualExclusion {
        /// The record both transactions locked.
        key: Key,
        /// First lock holder and its acquire/release intervals.
        first: (TxnId, Interval, Interval),
        /// Second lock holder and its acquire/release intervals.
        second: (TxnId, Interval, Interval),
    },
    /// Two committed transactions certainly updated the same record
    /// concurrently — a lost update the first-updater-wins rule must have
    /// prevented.
    FirstUpdaterWins {
        /// The record both transactions updated.
        key: Key,
        /// First writer: id, snapshot interval, commit interval.
        first: (TxnId, Interval, Interval),
        /// Second writer: id, snapshot interval, commit interval.
        second: (TxnId, Interval, Interval),
    },
    /// The dependency graph contains a pattern the DBMS's certifier is
    /// supposed to prohibit (e.g. a dependency cycle, or SSI's dangerous
    /// structure of two consecutive rw edges among concurrent transactions).
    SerializationCertifier {
        /// Human-readable name of the prohibited pattern that matched.
        pattern: String,
        /// The transactions forming the pattern, in pattern order.
        txns: Vec<TxnId>,
    },
}

impl Violation {
    /// The mechanism this violation belongs to.
    #[must_use]
    pub fn mechanism(&self) -> Mechanism {
        match self {
            Violation::ConsistentRead { .. } => Mechanism::ConsistentRead,
            Violation::MutualExclusion { .. } => Mechanism::MutualExclusion,
            Violation::FirstUpdaterWins { .. } => Mechanism::FirstUpdaterWins,
            Violation::SerializationCertifier { .. } => Mechanism::SerializationCertifier,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ConsistentRead {
                reader,
                key,
                observed,
                snapshot,
                candidates,
            } => write!(
                f,
                "[CR] {reader} read {key}={observed} with snapshot {snapshot}, \
                 but candidate versions were {candidates:?}"
            ),
            Violation::MutualExclusion { key, first, second } => write!(
                f,
                "[ME] incompatible locks on {key}: {} held {}..{} and {} held {}..{}",
                first.0, first.1, first.2, second.0, second.1, second.2
            ),
            Violation::FirstUpdaterWins { key, first, second } => write!(
                f,
                "[FUW] lost update on {key}: {} (snapshot {}, commit {}) and \
                 {} (snapshot {}, commit {}) are certainly concurrent",
                first.0, first.1, first.2, second.0, second.1, second.2
            ),
            Violation::SerializationCertifier { pattern, txns } => {
                write!(f, "[SC] prohibited pattern `{pattern}` over {txns:?}")
            }
        }
    }
}

/// The verifier's accumulated findings: the paper's "bug descriptor".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugReport {
    /// All violations found, in detection order.
    pub violations: Vec<Violation>,
}

impl BugReport {
    /// `true` iff no violation was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations of one mechanism.
    #[must_use]
    pub fn count(&self, mechanism: Mechanism) -> usize {
        self.violations
            .iter()
            .filter(|v| v.mechanism() == mechanism)
            .count()
    }
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "no isolation violations found");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Timestamp;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    #[test]
    fn mechanism_classification() {
        let v = Violation::ConsistentRead {
            reader: TxnId(1),
            key: Key(2),
            observed: Value(3),
            snapshot: iv(0, 1),
            candidates: vec![Value(9)],
        };
        assert_eq!(v.mechanism(), Mechanism::ConsistentRead);
        let v = Violation::SerializationCertifier {
            pattern: "cycle".into(),
            txns: vec![TxnId(1), TxnId(2)],
        };
        assert_eq!(v.mechanism(), Mechanism::SerializationCertifier);
    }

    #[test]
    fn report_counting() {
        let mut r = BugReport::default();
        assert!(r.is_clean());
        r.violations.push(Violation::MutualExclusion {
            key: Key(1),
            first: (TxnId(1), iv(0, 1), iv(2, 3)),
            second: (TxnId(2), iv(0, 1), iv(2, 3)),
        });
        assert!(!r.is_clean());
        assert_eq!(r.count(Mechanism::MutualExclusion), 1);
        assert_eq!(r.count(Mechanism::ConsistentRead), 0);
    }

    #[test]
    fn display_mentions_mechanism_tag() {
        let v = Violation::FirstUpdaterWins {
            key: Key(4),
            first: (TxnId(1), iv(0, 1), iv(4, 5)),
            second: (TxnId(2), iv(2, 3), iv(6, 7)),
        };
        assert!(v.to_string().starts_with("[FUW]"));
    }
}
