//! Time-interval algebra (§IV-A, §V of the paper).
//!
//! Every traced operation is known only to have *happened at some exact but
//! unobservable instant strictly inside* `(ts_bef, ts_aft)`. All of Leopard's
//! reasoning reduces to questions about such open intervals:
//!
//! * does interval `a` certainly precede `b`? (`a.hi <= b.lo`)
//! * could the instant of `a` precede the instant of `b`?
//!   (`a.lo < b.hi`)
//!
//! The mechanism verifiers (CR/ME/FUW) are built entirely on these two
//! predicates, plus the program-order fact that within one transaction the
//! interval of a later operation starts no earlier than the earlier
//! operation's interval ends.

use crate::types::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An open time interval `(lo, hi)` containing the unobservable exact
/// instant of one operation.
///
/// Invariant: `lo <= hi`. A degenerate interval with `lo == hi` represents
/// an exactly-known instant (used for preloaded initial versions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Timestamp taken just before the operation was issued (`ts_bef`).
    pub lo: Timestamp,
    /// Timestamp taken just after the operation returned (`ts_aft`).
    pub hi: Timestamp,
}

impl Interval {
    /// Creates an interval, normalising inverted bounds (which can only be
    /// produced by a broken clock) by swapping them.
    #[must_use]
    pub fn new(lo: Timestamp, hi: Timestamp) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// A degenerate interval pinned at one exact instant.
    #[must_use]
    pub fn at(t: Timestamp) -> Interval {
        Interval { lo: t, hi: t }
    }

    /// The interval pinned at time zero (initial database state).
    pub const GENESIS: Interval = Interval {
        lo: Timestamp::ZERO,
        hi: Timestamp::ZERO,
    };

    /// `true` iff the exact instant of `self` is *certainly* before the
    /// exact instant of `other`: the intervals do not overlap and `self`
    /// comes first.
    #[must_use]
    pub fn certainly_before(&self, other: &Interval) -> bool {
        self.hi <= other.lo
    }

    /// `true` iff the exact instant of `self` *could* be before the exact
    /// instant of `other` (i.e. the order is not provably `other` first).
    ///
    /// For degenerate (instant) intervals this degenerates to `<=` on the
    /// instant, which is the conservative choice: identical instants are
    /// considered orderable either way.
    #[must_use]
    pub fn possibly_before(&self, other: &Interval) -> bool {
        !other.certainly_before(self)
    }

    /// `true` iff neither interval certainly precedes the other, so the
    /// order of the two instants cannot be decided from the trace alone.
    /// This is the paper's "overlapped traces lead to uncertain
    /// dependencies" condition (Fig. 3).
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.certainly_before(other) && !other.certainly_before(self)
    }

    /// `true` iff `other` lies entirely within `self` (bounds inclusive).
    ///
    /// Containment implies overlap for non-degenerate intervals and is
    /// transitive: if `a.contains(b)` and `b.contains(c)` then
    /// `a.contains(c)` — the property tests pin both facts.
    #[must_use]
    pub fn contains(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Width of the interval in nanoseconds.
    #[must_use]
    pub fn width(&self) -> u64 {
        self.hi.0 - self.lo.0
    }

    /// The smallest interval containing both `self` and `other`.
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo.0, self.hi.0)
    }
}

/// Outcome of resolving the relative order of two operations whose hold
/// periods must not coexist (locks in ME) or whose executions must not be
/// concurrent (committed writers in FUW).
///
/// Theorems 3 and 4 of the paper guarantee the three cases are exhaustive
/// and mutually exclusive for any pair of trace intervals that respects
/// program order; `resolve_exclusive_pair` encodes exactly that argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOrder {
    /// Only "first argument entirely before second" is feasible.
    FirstThenSecond,
    /// Only "second argument entirely before first" is feasible.
    SecondThenFirst,
    /// No serial order is feasible: the two spans *certainly* coexisted.
    /// For ME this is an incompatible-locks violation, for FUW a
    /// lost-update violation.
    CertainlyConcurrent,
}

/// Resolves the order of two *exclusive spans*.
///
/// Span `i` starts at some instant in `start_i` and ends at some instant in
/// `end_i`, with the program-order guarantee `start_i.hi <= end_i.lo`
/// relaxed to "the exact start precedes the exact end" (always true).
///
/// Serial order "span 0 then span 1" is feasible iff the end instant of
/// span 0 can precede the start instant of span 1, i.e.
/// `end0.lo < start1.hi`. By the argument in Proof 3 of the paper the two
/// serial orders can never both be feasible when each span's start
/// certainly precedes its own end, so the result is always one of the three
/// `PairOrder` cases.
#[must_use]
pub fn resolve_exclusive_pair(
    start0: &Interval,
    end0: &Interval,
    start1: &Interval,
    end1: &Interval,
) -> PairOrder {
    let zero_first_feasible = end0.possibly_before(start1);
    let one_first_feasible = end1.possibly_before(start0);
    match (zero_first_feasible, one_first_feasible) {
        (true, false) => PairOrder::FirstThenSecond,
        (false, true) => PairOrder::SecondThenFirst,
        (false, false) => PairOrder::CertainlyConcurrent,
        (true, true) => {
            // Both serial orders feasible. Under the program-order
            // precondition (each span's start certainly precedes its own
            // end) this is impossible (Theorem 3); it is only reachable
            // with malformed input whose end interval precedes its start.
            // Break the tie by the start bounds so callers always get a
            // deterministic answer.
            if (start0.lo, start0.hi) <= (start1.lo, start1.hi) {
                PairOrder::FirstThenSecond
            } else {
                PairOrder::SecondThenFirst
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    #[test]
    fn new_normalises_inverted_bounds() {
        let i = Interval::new(Timestamp(5), Timestamp(2));
        assert_eq!(i, iv(2, 5));
    }

    #[test]
    fn certainly_before_requires_disjointness() {
        assert!(iv(0, 1).certainly_before(&iv(1, 2)));
        assert!(iv(0, 1).certainly_before(&iv(5, 6)));
        assert!(!iv(0, 3).certainly_before(&iv(2, 5)));
        assert!(!iv(5, 6).certainly_before(&iv(0, 1)));
    }

    #[test]
    fn overlap_is_symmetric_and_excludes_disjoint() {
        assert!(iv(0, 3).overlaps(&iv(2, 5)));
        assert!(iv(2, 5).overlaps(&iv(0, 3)));
        assert!(iv(0, 10).overlaps(&iv(4, 5))); // containment
        assert!(!iv(0, 1).overlaps(&iv(2, 3)));
    }

    #[test]
    fn possibly_before_allows_overlap_both_ways() {
        let a = iv(0, 3);
        let b = iv(2, 5);
        assert!(a.possibly_before(&b));
        assert!(b.possibly_before(&a));
        assert!(iv(0, 1).possibly_before(&iv(2, 3)));
        assert!(!iv(2, 3).possibly_before(&iv(0, 1)));
    }

    #[test]
    fn hull_covers_both() {
        assert_eq!(iv(0, 3).hull(&iv(2, 7)), iv(0, 7));
        assert_eq!(iv(5, 6).hull(&iv(1, 2)), iv(1, 6));
    }

    // ME example of Fig. 7(a): both orders incompatible -> violation.
    #[test]
    fn resolve_detects_certain_concurrency() {
        // t0: acquire (0,10), release (11,20)
        // t1: acquire (1,9),  release (12,21)
        // t1's acquire certainly precedes t0's release and vice versa.
        let order = resolve_exclusive_pair(&iv(0, 10), &iv(11, 20), &iv(1, 9), &iv(12, 21));
        assert_eq!(order, PairOrder::CertainlyConcurrent);
    }

    // ME example of Fig. 7(b): exactly one order deducible -> ww.
    #[test]
    fn resolve_deduces_single_order() {
        // t0: acquire (0,4), release (5,8)
        // t1: acquire (6,12), release (13,15)
        // "t0 then t1" feasible (5 < 12); "t1 then t0" infeasible (13 >= 4).
        let order = resolve_exclusive_pair(&iv(0, 4), &iv(5, 8), &iv(6, 12), &iv(13, 15));
        assert_eq!(order, PairOrder::FirstThenSecond);

        let order = resolve_exclusive_pair(&iv(6, 12), &iv(13, 15), &iv(0, 4), &iv(5, 8));
        assert_eq!(order, PairOrder::SecondThenFirst);
    }

    #[test]
    fn resolve_disjoint_spans_trivially_ordered() {
        let order = resolve_exclusive_pair(&iv(0, 1), &iv(2, 3), &iv(10, 11), &iv(12, 13));
        assert_eq!(order, PairOrder::FirstThenSecond);
    }

    #[test]
    fn resolve_degenerate_instants_are_concurrent() {
        // All four operations pinned at the same instant: neither serial
        // order is feasible under the `<=` semantics, so the spans are
        // reported as certainly concurrent (conservatively a violation;
        // such inputs only arise from broken clocks).
        let p = Interval::at(Timestamp(5));
        assert_eq!(
            resolve_exclusive_pair(&p, &p, &p, &p),
            PairOrder::CertainlyConcurrent
        );
    }

    #[test]
    fn resolve_malformed_spans_tie_break_deterministically() {
        // End intervals preceding their own starts violate program order;
        // both serial orders look feasible and the tie-break by start
        // bound keeps the result deterministic.
        let start0 = iv(10, 20);
        let end0 = iv(0, 5);
        let start1 = iv(12, 22);
        let end1 = iv(1, 6);
        assert_eq!(
            resolve_exclusive_pair(&start0, &end0, &start1, &end1),
            PairOrder::FirstThenSecond
        );
        assert_eq!(
            resolve_exclusive_pair(&start1, &end1, &start0, &end0),
            PairOrder::SecondThenFirst
        );
    }

    #[test]
    fn width_and_at() {
        assert_eq!(iv(3, 9).width(), 6);
        assert_eq!(Interval::at(Timestamp(4)).width(), 0);
    }
}
