//! Memory budgets for the resource-governed verification chain.
//!
//! Theorem 1 (§IV-C) promises that Leopard verifies in bounded memory:
//! everything below the dispatch watermark can be garbage-collected. This
//! module turns that claim into an enforced contract. A [`MemBudget`]
//! caps the *estimated* bytes and entry counts retained across the
//! tracer pipeline and the four mechanism tables; [`MemUsage`] is the
//! cheap O(1) estimate each structure reports; [`BudgetCounters`] records
//! what the governor had to do to stay under the cap (forced GC passes,
//! forced heap dispatches, shed traces, budget evictions) so a verdict
//! produced under pressure is auditable after the fact.
//!
//! Enforcement is a graduated ladder (see `DESIGN.md` §8):
//!
//! 1. **GC** — prune all mechanism state below the watermark, off the
//!    periodic `gc_every` cadence.
//! 2. **Force-dispatch** — flush the pipeline's buffers to the verifier
//!    in sorted order, even above the watermark; later stragglers below
//!    the forced floor are shed (counted, surfaced in coverage).
//! 3. **Evict** — force-close the laggiest (watermark-pinning) client
//!    into the degraded-mode [`crate::verify::Coverage`] machinery.
//!
//! The ladder trades coverage for memory *explicitly*: the run degrades
//! with a named hole instead of growing until the OOM killer decides.

use serde::{Deserialize, Serialize};

/// A cap on the estimated memory retained by the verification chain.
///
/// A limit of `0` in either dimension means "unlimited" for that
/// dimension; [`MemBudget::UNLIMITED`] disables governance entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemBudget {
    /// Maximum estimated bytes (0 = unlimited).
    pub max_bytes: u64,
    /// Maximum retained entries across all governed structures
    /// (0 = unlimited).
    pub max_entries: u64,
}

impl MemBudget {
    /// No limits; governance is disabled.
    pub const UNLIMITED: MemBudget = MemBudget {
        max_bytes: 0,
        max_entries: 0,
    };

    /// Budget limited by bytes only.
    #[must_use]
    pub fn bytes(max_bytes: u64) -> MemBudget {
        MemBudget {
            max_bytes,
            max_entries: 0,
        }
    }

    /// True if neither dimension is limited.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_bytes == 0 && self.max_entries == 0
    }

    /// True if `usage` exceeds any limited dimension.
    #[must_use]
    pub fn exceeded_by(&self, usage: MemUsage) -> bool {
        (self.max_bytes != 0 && usage.bytes > self.max_bytes)
            || (self.max_entries != 0 && usage.entries > self.max_entries)
    }
}

impl Default for MemBudget {
    fn default() -> MemBudget {
        MemBudget::UNLIMITED
    }
}

/// A cheap estimate of a structure's live memory.
///
/// Estimates are per-entry constants derived from `size_of` plus a flat
/// allowance for heap indirection (vectors, hash-map buckets); they are
/// deliberately O(1) to compute so the governor can re-check after every
/// trace. They track growth faithfully even where the absolute byte
/// count is approximate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemUsage {
    /// Estimated bytes.
    pub bytes: u64,
    /// Retained entries.
    pub entries: u64,
}

impl MemUsage {
    /// An estimate of `entries` entries at `bytes_per_entry` bytes each.
    #[must_use]
    pub fn per_entry(entries: usize, bytes_per_entry: usize) -> MemUsage {
        MemUsage {
            bytes: (entries as u64) * (bytes_per_entry as u64),
            entries: entries as u64,
        }
    }

    /// Component-wise sum with `other`.
    #[must_use]
    pub fn plus(self, other: MemUsage) -> MemUsage {
        MemUsage {
            bytes: self.bytes + other.bytes,
            entries: self.entries + other.entries,
        }
    }
}

impl std::ops::Add for MemUsage {
    type Output = MemUsage;
    fn add(self, other: MemUsage) -> MemUsage {
        self.plus(other)
    }
}

impl std::ops::AddAssign for MemUsage {
    fn add_assign(&mut self, other: MemUsage) {
        *self = self.plus(other);
    }
}

/// What the resource governor did during a run. Part of the checkpoint
/// image, so a resumed run keeps accounting for the pressure its
/// predecessor absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetCounters {
    /// High-water mark of the estimated bytes across verifier state
    /// (plus the pipeline, when governed online).
    pub peak_bytes: u64,
    /// High-water mark of retained entries.
    pub peak_entries: u64,
    /// GC passes forced by the budget, outside the periodic cadence.
    pub forced_gcs: u64,
    /// Ladder rung 2 activations: pipeline buffers flushed to the
    /// verifier above the watermark.
    pub forced_dispatches: u64,
    /// Ladder rung 3 activations: clients evicted because the budget
    /// was still exceeded after GC and force-dispatch.
    pub budget_evictions: u64,
    /// Traces shed by the chain: lossy backpressure, post-shutdown
    /// records, and stragglers below a forced-dispatch floor.
    pub shed_traces: u64,
    /// Ladder rung 1.5 activations: spill passes that paged cold version
    /// chains to disk instead of degrading coverage.
    pub spill_passes: u64,
    /// Records paged out across all spill passes.
    pub spilled_records: u64,
    /// Spilled records faulted back into memory on access.
    pub spill_faults: u64,
    /// Spill passes abandoned to the in-memory fallback after a write
    /// failure (the tier stopped accepting writes).
    pub spill_fallbacks: u64,
}

impl BudgetCounters {
    /// Fold a usage sample into the high-water marks. The registry
    /// gauges are only touched when a mark actually rises — this runs
    /// once per trace on the sequential hot path, and an unconditional
    /// atomic max per sample is measurable there.
    pub fn observe(&mut self, usage: MemUsage) {
        if usage.bytes > self.peak_bytes {
            self.peak_bytes = usage.bytes;
            crate::obs::gauge_max(crate::obs::Gauge::PeakMemBytes, self.peak_bytes);
        }
        if usage.entries > self.peak_entries {
            self.peak_entries = usage.entries;
            crate::obs::gauge_max(crate::obs::Gauge::PeakMemEntries, self.peak_entries);
        }
    }
}

/// Global admission control for the multi-tenant serve daemon
/// ([`crate::serve`]): one shared byte pool that every admitted stream
/// draws its [`MemBudget`] slice from. A stream that asks for more than
/// the pool has left is refused at the handshake instead of being
/// allowed to starve its neighbors at runtime — admission is the rung
/// *above* the per-stream overload ladder.
///
/// Cloning shares the pool; grants release their charge on drop.
#[derive(Clone)]
pub struct GlobalAdmission {
    inner: std::sync::Arc<AdmissionInner>,
}

struct AdmissionInner {
    /// Total pool in bytes; 0 = unlimited (admission always succeeds).
    capacity: u64,
    /// Bytes currently granted to live streams.
    outstanding: crate::lockwitness::TrackedMutex<u64>,
}

impl GlobalAdmission {
    /// A pool of `capacity` bytes; `0` disables admission control.
    #[must_use]
    pub fn new(capacity: u64) -> GlobalAdmission {
        GlobalAdmission {
            inner: std::sync::Arc::new(AdmissionInner {
                capacity,
                outstanding: crate::lockwitness::TrackedMutex::new(
                    "GlobalAdmission.outstanding",
                    0,
                ),
            }),
        }
    }

    /// The charge a stream request costs against the pool. A stream that
    /// asks for an explicit budget is charged exactly that; a stream that
    /// asks for *unlimited* (0) is charged one eighth of the pool, so a
    /// handful of unbounded tenants cannot silently claim everything.
    #[must_use]
    pub fn charge_for(&self, requested_bytes: u64) -> u64 {
        if self.inner.capacity == 0 {
            return 0;
        }
        if requested_bytes == 0 {
            (self.inner.capacity / 8).max(1)
        } else {
            requested_bytes
        }
    }

    /// Tries to admit a stream requesting `requested_bytes` (0 =
    /// unlimited). `None` means the pool cannot cover the charge.
    #[must_use]
    pub fn admit(&self, requested_bytes: u64) -> Option<AdmissionGrant> {
        let charge = self.charge_for(requested_bytes);
        if self.inner.capacity == 0 {
            return Some(AdmissionGrant {
                inner: std::sync::Arc::clone(&self.inner),
                charge: 0,
            });
        }
        let mut outstanding = self.inner.outstanding.lock();
        if outstanding.saturating_add(charge) > self.inner.capacity {
            return None;
        }
        *outstanding += charge;
        Some(AdmissionGrant {
            inner: std::sync::Arc::clone(&self.inner),
            charge,
        })
    }

    /// Bytes currently granted to live streams.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        *self.inner.outstanding.lock()
    }

    /// The pool size (0 = unlimited).
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }
}

impl std::fmt::Debug for GlobalAdmission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalAdmission")
            .field("capacity", &self.inner.capacity)
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

/// A live stream's claim on the global pool; released on drop.
#[derive(Debug)]
pub struct AdmissionGrant {
    inner: std::sync::Arc<AdmissionInner>,
    charge: u64,
}

impl std::fmt::Debug for AdmissionInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionInner")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl AdmissionGrant {
    /// Bytes this grant holds against the pool.
    #[must_use]
    pub fn charge(&self) -> u64 {
        self.charge
    }
}

impl Drop for AdmissionGrant {
    fn drop(&mut self) {
        if self.charge > 0 {
            let mut outstanding = self.inner.outstanding.lock();
            *outstanding = outstanding.saturating_sub(self.charge);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_grants_and_releases() {
        let pool = GlobalAdmission::new(1000);
        let a = pool.admit(400).expect("fits");
        let b = pool.admit(400).expect("fits");
        assert_eq!(pool.outstanding(), 800);
        assert!(pool.admit(400).is_none(), "pool exhausted");
        drop(a);
        assert_eq!(pool.outstanding(), 400);
        let c = pool.admit(600).expect("fits after release");
        drop(b);
        drop(c);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn unlimited_requests_are_charged_a_slice() {
        let pool = GlobalAdmission::new(800);
        assert_eq!(pool.charge_for(0), 100);
        let grants: Vec<_> = (0..8).map(|_| pool.admit(0).expect("slice fits")).collect();
        assert!(pool.admit(0).is_none(), "ninth unbounded tenant refused");
        drop(grants);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn zero_capacity_pool_admits_everything() {
        let pool = GlobalAdmission::new(0);
        let g = pool.admit(u64::MAX).expect("unlimited pool");
        assert_eq!(g.charge(), 0);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn unlimited_budget_is_never_exceeded() {
        let b = MemBudget::UNLIMITED;
        assert!(b.is_unlimited());
        assert!(!b.exceeded_by(MemUsage {
            bytes: u64::MAX,
            entries: u64::MAX,
        }));
    }

    #[test]
    fn byte_budget_trips_on_bytes_only() {
        let b = MemBudget::bytes(1000);
        assert!(!b.is_unlimited());
        assert!(!b.exceeded_by(MemUsage {
            bytes: 1000,
            entries: 1 << 40,
        }));
        assert!(b.exceeded_by(MemUsage {
            bytes: 1001,
            entries: 0,
        }));
    }

    #[test]
    fn entry_budget_trips_on_entries() {
        let b = MemBudget {
            max_bytes: 0,
            max_entries: 10,
        };
        assert!(b.exceeded_by(MemUsage {
            bytes: 0,
            entries: 11,
        }));
        assert!(!b.exceeded_by(MemUsage {
            bytes: 1 << 40,
            entries: 10,
        }));
    }

    #[test]
    fn usage_sums_and_peaks() {
        let a = MemUsage::per_entry(3, 64);
        let b = MemUsage::per_entry(2, 100);
        let sum = a + b;
        assert_eq!(sum.bytes, 3 * 64 + 2 * 100);
        assert_eq!(sum.entries, 5);
        let mut c = BudgetCounters::default();
        c.observe(sum);
        c.observe(a);
        assert_eq!(c.peak_bytes, sum.bytes);
        assert_eq!(c.peak_entries, 5);
    }
}
