//! The assembled online verifier: Fig. 2 of the paper as one object.
//!
//! [`OnlineLeopard`] owns the whole Tracer→Verifier chain: client threads
//! record into [`ClientHandle`]s; a background thread drains the channels
//! through the two-level pipeline and feeds the mechanism-mirrored
//! verifier as traces become dispatchable. Dropping the last handle closes
//! a client's stream; [`OnlineLeopard::finish`] joins the verifier thread
//! and returns the outcome.
//!
//! ```
//! use leopard_core::online::OnlineLeopard;
//! use leopard_core::{
//!     IsolationLevel, Key, OpKind, Trace, TxnId, Value, VerifierConfig,
//!     Interval, Timestamp, ClientId,
//! };
//!
//! let (leopard, mut handles) = OnlineLeopard::start(
//!     1,
//!     VerifierConfig::for_level(IsolationLevel::Serializable),
//!     vec![(Key(1), Value(0))],
//! );
//! let handle = handles.remove(0);
//! let iv = |lo, hi| Interval::new(Timestamp(lo), Timestamp(hi));
//! handle.record(Trace::new(iv(10, 12), ClientId(0), TxnId(1), OpKind::Write(vec![(Key(1), Value(7))])));
//! handle.record(Trace::new(iv(13, 15), ClientId(0), TxnId(1), OpKind::Commit));
//! drop(handle); // close the stream
//! let outcome = leopard.finish();
//! assert!(outcome.report.is_clean());
//! ```

use crate::pipeline::{ChannelTracer, ClientHandle, PipelineConfig, PipelineStats};
use crate::types::{Key, Value};
use crate::verify::{Verifier, VerifierConfig, VerifyOutcome};

/// A running Tracer→Verifier chain.
#[derive(Debug)]
pub struct OnlineLeopard {
    worker: std::thread::JoinHandle<(VerifyOutcome, PipelineStats)>,
}

impl OnlineLeopard {
    /// Starts the chain for `clients` trace producers with the default
    /// pipeline configuration, returning one handle per client.
    #[must_use]
    pub fn start(
        clients: usize,
        cfg: VerifierConfig,
        preload: Vec<(Key, Value)>,
    ) -> (OnlineLeopard, Vec<ClientHandle>) {
        OnlineLeopard::start_with(clients, cfg, PipelineConfig::default(), preload)
    }

    /// Starts the chain with an explicit pipeline configuration.
    #[must_use]
    pub fn start_with(
        clients: usize,
        cfg: VerifierConfig,
        pipeline: PipelineConfig,
        preload: Vec<(Key, Value)>,
    ) -> (OnlineLeopard, Vec<ClientHandle>) {
        let (mut tracer, handles) = ChannelTracer::new(clients, pipeline);
        let worker = std::thread::spawn(move || {
            let mut verifier = Verifier::new(cfg);
            for (k, v) in preload {
                verifier.preload(k, v);
            }
            let mut batch = Vec::new();
            loop {
                let live = tracer.poll(&mut batch);
                for trace in batch.drain(..) {
                    verifier.process(&trace);
                }
                if !live {
                    break;
                }
                std::thread::yield_now();
            }
            (verifier.finish(), tracer.stats())
        });
        (OnlineLeopard { worker }, handles)
    }

    /// Waits for every client stream to close and every trace to be
    /// verified, then returns the outcome.
    ///
    /// Call only after all [`ClientHandle`]s have been dropped, or the
    /// verifier thread will wait forever.
    #[must_use]
    pub fn finish(self) -> VerifyOutcome {
        self.finish_with_stats().0
    }

    /// Like [`OnlineLeopard::finish`], also returning pipeline statistics.
    #[must_use]
    pub fn finish_with_stats(self) -> (VerifyOutcome, PipelineStats) {
        self.worker.join().expect("verifier thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IsolationLevel;
    use crate::trace::{OpKind, Trace};
    use crate::types::{ClientId, Timestamp, TxnId};
    use crate::Interval;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    #[test]
    fn multi_client_online_verification() {
        let (leopard, handles) = OnlineLeopard::start(
            4,
            VerifierConfig::for_level(IsolationLevel::Serializable),
            (0..16).map(|k| (Key(k), Value(0))).collect(),
        );
        let mut joins = Vec::new();
        for (c, handle) in handles.into_iter().enumerate() {
            joins.push(std::thread::spawn(move || {
                // Each client writes its own key range serially.
                for i in 0..50u64 {
                    let txn = TxnId((c as u64) * 1000 + i + 1);
                    let base = i * 100 + c as u64 * 3;
                    let key = Key(c as u64 * 4 + (i % 4));
                    handle.record(Trace::new(
                        iv(base + 1, base + 2),
                        ClientId(c as u32),
                        txn,
                        OpKind::Write(vec![(key, Value(1_000_000 + txn.0))]),
                    ));
                    handle.record(Trace::new(
                        iv(base + 3, base + 4),
                        ClientId(c as u32),
                        txn,
                        OpKind::Commit,
                    ));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (outcome, stats) = leopard.finish_with_stats();
        assert_eq!(stats.dispatched, 4 * 50 * 2);
        assert_eq!(outcome.counters.committed, 200);
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    fn violations_surface_through_the_chain() {
        let (leopard, mut handles) = OnlineLeopard::start(
            1,
            VerifierConfig::for_level(IsolationLevel::Serializable),
            vec![(Key(1), Value(0))],
        );
        let handle = handles.remove(0);
        // A dirty read: observes a value that was never committed.
        handle.record(Trace::new(
            iv(10, 12),
            ClientId(0),
            TxnId(1),
            OpKind::Read(vec![(Key(1), Value(99))]),
        ));
        handle.record(Trace::new(
            iv(13, 15),
            ClientId(0),
            TxnId(1),
            OpKind::Commit,
        ));
        drop(handle);
        let outcome = leopard.finish();
        assert_eq!(outcome.report.violations.len(), 1);
    }
}
