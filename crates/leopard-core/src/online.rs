//! The assembled online verifier: Fig. 2 of the paper as one object.
//!
//! [`OnlineLeopard`] owns the whole Tracer→Verifier chain: client threads
//! record into [`ClientHandle`]s; a background thread drains the channels
//! through the two-level pipeline and feeds the mechanism-mirrored
//! verifier as traces become dispatchable. Dropping the last handle closes
//! a client's stream; [`OnlineLeopard::finish`] joins the verifier thread
//! and returns the outcome.
//!
//! ```
//! use leopard_core::online::OnlineLeopard;
//! use leopard_core::{
//!     IsolationLevel, Key, OpKind, Trace, TxnId, Value, VerifierConfig,
//!     Interval, Timestamp, ClientId,
//! };
//!
//! let (leopard, mut handles) = OnlineLeopard::start(
//!     1,
//!     VerifierConfig::for_level(IsolationLevel::Serializable),
//!     vec![(Key(1), Value(0))],
//! );
//! let handle = handles.remove(0);
//! let iv = |lo, hi| Interval::new(Timestamp(lo), Timestamp(hi));
//! handle.record(Trace::new(iv(10, 12), ClientId(0), TxnId(1), OpKind::Write(vec![(Key(1), Value(7))])));
//! handle.record(Trace::new(iv(13, 15), ClientId(0), TxnId(1), OpKind::Commit));
//! drop(handle); // close the stream
//! let outcome = leopard.finish();
//! assert!(outcome.report.is_clean());
//! ```

use crate::budget::MemUsage;
use crate::lockwitness::TrackedMutex;
use crate::obs;
use crate::pipeline::{Backpressure, ChannelTracer, ClientHandle, PipelineConfig, PipelineStats};
use crate::trace::Trace;
use crate::types::{ClientId, Key, Value};
use crate::verify::{ShardedVerifier, Verifier, VerifierConfig, VerifyOutcome};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Degradation and checkpoint knobs for the online chain.
#[derive(Debug, Clone, Default)]
pub struct OnlineOptions {
    /// Pipeline configuration (fetch strategy, batching).
    pub pipeline: PipelineConfig,
    /// Evict the client pinning the watermark after this long without any
    /// dispatch progress. When all clients fall silent for this long with
    /// nothing buffered, every open client is presumed dead and evicted.
    /// `None` (the default) never evicts: a silent open client blocks
    /// forever, exactly as the original blocking chain did.
    pub eviction_timeout: Option<Duration>,
    /// Where to write verifier checkpoints (atomic write-then-rename).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many processed traces. Only effective
    /// together with [`OnlineOptions::checkpoint_path`].
    pub checkpoint_every: Option<u64>,
    /// Channel policy between client handles and the collector. The
    /// default keeps the historical unbounded channels; bounded policies
    /// couple ingest rate to verification rate (blocking) or shed with a
    /// counter (lossy). See [`Backpressure`].
    pub backpressure: Backpressure,
    /// Number of verifier worker shards. `0` or `1` (the default) runs
    /// the single-threaded [`Verifier`]; larger values run the key-sharded
    /// [`ShardedVerifier`] with this many worker threads. Checkpoints
    /// written by a sharded chain use the [`crate::ShardedCheckpoint`]
    /// envelope instead of [`crate::Checkpoint`].
    pub shards: usize,
    /// Disk-spilling backing tier for cold verifier state — rung 1.5 of
    /// the overload ladder, between forced GC and forced dispatch. When
    /// the tier cannot be attached or a spill write fails, the chain
    /// falls back to the in-memory path (counted, noted in coverage);
    /// an unrecoverable spill *read* failure latches
    /// [`VerifyOutcome::store_fault`] instead of risking a wrong verdict.
    pub spill: Option<crate::store::SpillSettings>,
}

/// The verification engine behind the online chain: the single-threaded
/// verifier, or the key-sharded pool when [`OnlineOptions::shards`] > 1.
/// Every governor action (overload ladder, eviction notes, checkpointing)
/// is delegated so the worker loop is engine-agnostic.
// One engine exists per run, so the variant size gap never multiplies.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Engine {
    Single(Verifier),
    Sharded(ShardedVerifier),
}

impl Engine {
    fn new(cfg: VerifierConfig, shards: usize) -> Engine {
        if shards > 1 {
            Engine::Sharded(ShardedVerifier::new(cfg, shards))
        } else {
            Engine::Single(Verifier::new(cfg))
        }
    }

    fn preload(&mut self, key: Key, value: Value) {
        match self {
            Engine::Single(v) => v.preload(key, value),
            Engine::Sharded(s) => s.preload(key, value),
        }
    }

    fn process(&mut self, trace: &Trace) {
        match self {
            Engine::Single(v) => v.process(trace),
            Engine::Sharded(s) => s.process(trace),
        }
    }

    /// Best-effort checkpoint write: an unwritable checkpoint must not
    /// take the verification down.
    fn write_checkpoint(&mut self, path: &Path) {
        let span = obs::span_start();
        match self {
            Engine::Single(v) => {
                // Sync first so the image never references unsynced
                // pages; sync failures are retried/counted by the tier
                // and surface at resume as a typed corrupt-store error.
                let _ = v.sync_spill();
                if v.spill_attached() {
                    // A spill-backed image is written through the
                    // generation chain so a torn head falls back to the
                    // previous good generation instead of aborting.
                    let _ = v.checkpoint().write_chained(path);
                } else {
                    let _ = v.checkpoint().write(path);
                }
            }
            Engine::Sharded(s) => {
                // The checkpoint barrier syncs every shard's tier.
                if s.spill_attached() {
                    let _ = s.checkpoint().write_chained(path);
                } else {
                    let _ = s.checkpoint().write(path);
                }
            }
        }
        obs::span_end(obs::Stage::Checkpoint, obs::LANE_ONLINE, span);
        obs::ctr(obs::Counter::CheckpointsWritten, 1);
    }

    fn force_gc(&mut self) {
        match self {
            Engine::Single(v) => v.force_gc(),
            Engine::Sharded(s) => s.force_gc(),
        }
    }

    fn mem_usage(&self) -> MemUsage {
        match self {
            Engine::Single(v) => v.mem_usage(),
            Engine::Sharded(s) => s.mem_usage(),
        }
    }

    fn observe_usage(&mut self, usage: MemUsage) {
        obs::gauge_set(obs::Gauge::MemBytes, usage.bytes);
        match self {
            Engine::Single(v) => v.observe_usage(usage),
            Engine::Sharded(s) => s.observe_usage(usage),
        }
    }

    fn note_evicted_client(&mut self, client: ClientId) {
        match self {
            Engine::Single(v) => v.note_evicted_client(client),
            Engine::Sharded(s) => s.note_evicted_client(client),
        }
    }

    fn note_budget_eviction(&mut self, client: ClientId) {
        match self {
            Engine::Single(v) => v.note_budget_eviction(client),
            Engine::Sharded(s) => s.note_budget_eviction(client),
        }
    }

    fn note_shed_traces(&mut self, n: u64) {
        match self {
            Engine::Single(v) => v.note_shed_traces(n),
            Engine::Sharded(s) => s.note_shed_traces(n),
        }
    }

    fn note_forced_dispatch(&mut self) {
        match self {
            Engine::Single(v) => v.note_forced_dispatch(),
            Engine::Sharded(s) => s.note_forced_dispatch(),
        }
    }

    /// Attaches the spill tier(s); the sharded engine receives one tier
    /// per shard under `shard-<i>` subdirectories.
    fn attach_spill(
        &mut self,
        settings: &crate::store::SpillSettings,
    ) -> crate::store::StoreResult<()> {
        match self {
            Engine::Single(v) => {
                let tier = crate::store::SpillTier::open(settings)?;
                v.attach_spill(tier);
                Ok(())
            }
            Engine::Sharded(s) => s.attach_spill(settings),
        }
    }

    /// `true` when rung 1.5 is armed: a tier is attached, still
    /// accepting writes, and no store fault has latched.
    fn can_spill(&self) -> bool {
        match self {
            Engine::Single(v) => v.can_spill(),
            Engine::Sharded(s) => s.spill_attached() && s.store_fault().is_none(),
        }
    }

    /// Runs one spill pass (rung 1.5). The sharded engine runs it as a
    /// full barrier so the usage read afterwards reflects the drain.
    fn spill(&mut self) {
        match self {
            Engine::Single(v) => v.spill_pass(),
            Engine::Sharded(s) => s.spill(),
        }
    }

    /// Records a failed tier attachment (counted fallback).
    fn note_spill_unavailable(&mut self, why: &str) {
        match self {
            Engine::Single(v) => v.note_spill_unavailable(why),
            Engine::Sharded(s) => s.note_spill_unavailable(why),
        }
    }

    fn finish(self) -> VerifyOutcome {
        match self {
            Engine::Single(v) => v.finish(),
            Engine::Sharded(s) => s.finish(),
        }
    }
}

/// [`OnlineLeopard::finish_with_timeout`] gave up waiting: some client
/// never closed its trace stream. The named clients were force-evicted and
/// verification completed in degraded mode — the (degraded) outcome is
/// still carried so no verification work is lost.
#[derive(Debug)]
pub struct FinishTimeout {
    /// Clients whose streams were still open at the timeout; the first
    /// entries are the ones that were pinning the watermark.
    pub pinning: Vec<ClientId>,
    /// The outcome of the degraded completion (coverage names the evicted
    /// clients).
    pub outcome: VerifyOutcome,
    /// Pipeline statistics of the degraded completion.
    pub stats: PipelineStats,
}

impl fmt::Display for FinishTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "online finish timed out: client stream(s) never closed ["
        )?;
        for (i, c) in self.pinning.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]; evicted them and completed with degraded coverage")
    }
}

impl std::error::Error for FinishTimeout {}

/// State shared between the verifier thread and the front-end handle.
#[derive(Debug)]
struct Shared {
    /// Set by the front end to force-evict every open client (used by
    /// [`OnlineLeopard::finish_with_timeout`] to guarantee termination).
    force_evict: AtomicBool,
    /// Set by [`OnlineLeopard::request_checkpoint`]; cleared by the worker
    /// once the checkpoint is written.
    checkpoint: AtomicBool,
    /// Clients whose streams were open at the worker's last poll.
    open: TrackedMutex<Vec<ClientId>>,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            force_evict: AtomicBool::new(false),
            checkpoint: AtomicBool::new(false),
            open: TrackedMutex::new("Shared.open", Vec::new()),
        }
    }
}

/// A running Tracer→Verifier chain.
#[derive(Debug)]
pub struct OnlineLeopard {
    worker: std::thread::JoinHandle<(VerifyOutcome, PipelineStats)>,
    done: mpsc::Receiver<()>,
    shared: Arc<Shared>,
}

impl OnlineLeopard {
    /// Starts the chain for `clients` trace producers with the default
    /// pipeline configuration, returning one handle per client.
    #[must_use]
    pub fn start(
        clients: usize,
        cfg: VerifierConfig,
        preload: Vec<(Key, Value)>,
    ) -> (OnlineLeopard, Vec<ClientHandle>) {
        OnlineLeopard::start_with(clients, cfg, PipelineConfig::default(), preload)
    }

    /// Starts the chain with an explicit pipeline configuration.
    #[must_use]
    pub fn start_with(
        clients: usize,
        cfg: VerifierConfig,
        pipeline: PipelineConfig,
        preload: Vec<(Key, Value)>,
    ) -> (OnlineLeopard, Vec<ClientHandle>) {
        OnlineLeopard::start_opts(
            clients,
            cfg,
            OnlineOptions {
                pipeline,
                ..OnlineOptions::default()
            },
            preload,
        )
    }

    /// Starts the chain with full degradation/checkpoint options.
    #[must_use]
    pub fn start_opts(
        clients: usize,
        cfg: VerifierConfig,
        opts: OnlineOptions,
        preload: Vec<(Key, Value)>,
    ) -> (OnlineLeopard, Vec<ClientHandle>) {
        let (mut tracer, handles) =
            ChannelTracer::with_backpressure(clients, opts.pipeline, opts.backpressure);
        let shared = Arc::new(Shared::default());
        let worker_shared = Arc::clone(&shared);
        let (done_tx, done_rx) = mpsc::channel();
        let worker = std::thread::spawn(move || {
            let shared = worker_shared;
            let mut verifier = Engine::new(cfg, opts.shards);
            if let Some(settings) = opts.spill.as_ref() {
                if let Err(e) = verifier.attach_spill(settings) {
                    verifier.note_spill_unavailable(&e.to_string());
                }
            }
            for (k, v) in preload {
                verifier.preload(k, v);
            }
            let mut batch = Vec::new();
            let mut processed: u64 = 0;
            let mut last_dispatched: u64 = 0;
            let mut last_shed: u64 = 0;
            let budget = cfg.mem_budget;
            let mut last_progress = Instant::now(); // lint: allow(L004): eviction timeout is wall-clock by definition; verdicts stay trace-time only
            loop {
                let live = tracer.poll(&mut batch);
                let span = if batch.is_empty() {
                    None
                } else {
                    obs::span_start()
                };
                for trace in batch.drain(..) {
                    verifier.process(&trace);
                    processed += 1;
                    if let (Some(path), Some(every)) =
                        (opts.checkpoint_path.as_deref(), opts.checkpoint_every)
                    {
                        if every > 0 && processed.is_multiple_of(every) {
                            verifier.write_checkpoint(path);
                        }
                    }
                }
                obs::span_end(obs::Stage::Dispatch, obs::LANE_ONLINE, span);
                // Fold newly shed traces (lossy backpressure, post-shutdown
                // records, forced-dispatch stragglers) into the verifier's
                // checkpointable counters.
                {
                    let s = tracer.stats();
                    let shed_now = s.shed_traces + s.late_dropped;
                    if shed_now > last_shed {
                        verifier.note_shed_traces(shed_now - last_shed);
                        last_shed = shed_now;
                    }
                }
                // Resource governance: the graduated overload ladder.
                // Rung 1 (forced GC below the watermark), rung 1.5 (spill
                // cold records to disk when a tier is attached), rung 2
                // (flush the pipeline's buffers through the verifier),
                // rung 3 (evict the laggiest client into degraded
                // coverage). Each rung runs only if the previous one left
                // the chain over budget — spilling relieves pressure
                // without losing coverage, so it always runs before the
                // coverage-degrading rungs.
                if !budget.is_unlimited() {
                    let mut usage = verifier.mem_usage() + tracer.mem_usage();
                    if budget.exceeded_by(usage) {
                        verifier.force_gc();
                        usage = verifier.mem_usage() + tracer.mem_usage();
                    }
                    if budget.exceeded_by(usage) && verifier.can_spill() {
                        verifier.spill();
                        usage = verifier.mem_usage() + tracer.mem_usage();
                    }
                    if budget.exceeded_by(usage) {
                        let mut forced = Vec::new();
                        if tracer.force_dispatch(&mut forced) > 0 {
                            verifier.note_forced_dispatch();
                            for trace in &forced {
                                verifier.process(trace);
                                processed += 1;
                            }
                            verifier.force_gc();
                            usage = verifier.mem_usage() + tracer.mem_usage();
                        }
                    }
                    if budget.exceeded_by(usage) {
                        // The laggiest client is the one holding the
                        // watermark furthest back; sacrificing it lets
                        // everything the healthy clients deliver flow and
                        // be garbage-collected.
                        if let Some(lag) = tracer.laggard_client() {
                            let _ = tracer.evict(lag);
                            verifier.note_budget_eviction(ClientId(lag as u32));
                        }
                    }
                    // Record the governed (post-ladder) footprint: the HWM
                    // measures what governance let stand, not the spike it
                    // just removed.
                    verifier.observe_usage(verifier.mem_usage() + tracer.mem_usage());
                }
                if shared.checkpoint.swap(false, Ordering::SeqCst) {
                    if let Some(path) = opts.checkpoint_path.as_deref() {
                        verifier.write_checkpoint(path);
                    }
                }
                {
                    let open: Vec<ClientId> = tracer
                        .open_clients()
                        .into_iter()
                        .map(|i| ClientId(i as u32))
                        .collect();
                    *shared.open.lock() = open;
                }
                if !live {
                    break;
                }
                if shared.force_evict.load(Ordering::SeqCst) {
                    for c in tracer.open_clients() {
                        let _ = tracer.evict(c);
                        verifier.note_evicted_client(ClientId(c as u32));
                    }
                    continue; // next poll drains the unblocked pipeline
                }
                let dispatched = tracer.stats().dispatched;
                if dispatched != last_dispatched {
                    last_dispatched = dispatched;
                    last_progress = Instant::now(); // lint: allow(L004): eviction timeout is wall-clock by definition
                } else if let Some(timeout) = opts.eviction_timeout {
                    if last_progress.elapsed() >= timeout {
                        if let Some(pin) = tracer.pinning_client() {
                            // Watermark stall: one silent client blocks all
                            // dispatch. Force-close it; its in-flight txn
                            // surfaces as indeterminate in coverage.
                            let _ = tracer.evict(pin);
                            verifier.note_evicted_client(ClientId(pin as u32));
                        } else {
                            // Global silence with nothing buffered: every
                            // still-open client is presumed dead.
                            for c in tracer.open_clients() {
                                let _ = tracer.evict(c);
                                verifier.note_evicted_client(ClientId(c as u32));
                            }
                        }
                        last_progress = Instant::now(); // lint: allow(L004): eviction timeout is wall-clock by definition
                    }
                }
                std::thread::yield_now();
            }
            if let Some(path) = opts.checkpoint_path.as_deref() {
                if opts.checkpoint_every.is_some() {
                    // Final image so a post-run resume replays nothing.
                    verifier.write_checkpoint(path);
                }
            }
            let result = (verifier.finish(), tracer.stats());
            let _ = done_tx.send(());
            result
        });
        (
            OnlineLeopard {
                worker,
                done: done_rx,
                shared,
            },
            handles,
        )
    }

    /// Asks the verifier thread to write a checkpoint at the next batch
    /// boundary. No-op unless the chain was started with a
    /// [`OnlineOptions::checkpoint_path`].
    pub fn request_checkpoint(&self) {
        self.shared.checkpoint.store(true, Ordering::SeqCst);
    }

    /// Waits for every client stream to close and every trace to be
    /// verified, then returns the outcome.
    ///
    /// Call only after all [`ClientHandle`]s have been dropped, or the
    /// verifier thread will wait forever — use
    /// [`OnlineLeopard::finish_with_timeout`] when that cannot be
    /// guaranteed.
    #[must_use]
    pub fn finish(self) -> VerifyOutcome {
        self.finish_with_stats().0
    }

    /// Like [`OnlineLeopard::finish`], also returning pipeline statistics.
    #[must_use]
    pub fn finish_with_stats(self) -> (VerifyOutcome, PipelineStats) {
        // lint: allow(L001): re-raising a worker-thread panic is the only sane join policy
        self.worker.join().expect("verifier thread panicked")
    }

    /// Waits up to `timeout` for the chain to complete on its own. If some
    /// client stream never closes (a leaked [`ClientHandle`], a crashed
    /// client that kept its connection), returns a [`FinishTimeout`] that
    /// *names the offending clients* — after force-evicting them so the
    /// run still terminates with a degraded outcome instead of hanging.
    pub fn finish_with_timeout(
        self,
        timeout: Duration,
    ) -> Result<(VerifyOutcome, PipelineStats), Box<FinishTimeout>> {
        match self.done.recv_timeout(timeout) {
            // lint: allow(L001): re-raising a worker-thread panic is the only sane join policy
            Ok(()) => Ok(self.worker.join().expect("verifier thread panicked")),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let pinning = self.shared.open.lock().clone();
                self.shared.force_evict.store(true, Ordering::SeqCst);
                // The worker evicts every open client on its next loop
                // iteration, drains, and completes.
                // lint: allow(L001): re-raising a worker-thread panic is the only sane join policy
                let (outcome, stats) = self.worker.join().expect("verifier thread panicked");
                Err(Box::new(FinishTimeout {
                    pinning,
                    outcome,
                    stats,
                }))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The worker died without sending; join to surface the
                // panic.
                // lint: allow(L001): re-raising a worker-thread panic is the only sane join policy
                Ok(self.worker.join().expect("verifier thread panicked"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IsolationLevel;
    use crate::trace::{OpKind, Trace};
    use crate::types::{ClientId, Timestamp, TxnId};
    use crate::Interval;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    #[test]
    fn multi_client_online_verification() {
        let (leopard, handles) = OnlineLeopard::start(
            4,
            VerifierConfig::for_level(IsolationLevel::Serializable),
            (0..16).map(|k| (Key(k), Value(0))).collect(),
        );
        let mut joins = Vec::new();
        for (c, handle) in handles.into_iter().enumerate() {
            joins.push(std::thread::spawn(move || {
                // Each client writes its own key range serially.
                for i in 0..50u64 {
                    let txn = TxnId((c as u64) * 1000 + i + 1);
                    let base = i * 100 + c as u64 * 3;
                    let key = Key(c as u64 * 4 + (i % 4));
                    handle.record(Trace::new(
                        iv(base + 1, base + 2),
                        ClientId(c as u32),
                        txn,
                        OpKind::Write(vec![(key, Value(1_000_000 + txn.0))]),
                    ));
                    handle.record(Trace::new(
                        iv(base + 3, base + 4),
                        ClientId(c as u32),
                        txn,
                        OpKind::Commit,
                    ));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let (outcome, stats) = leopard.finish_with_stats();
        assert_eq!(stats.dispatched, 4 * 50 * 2);
        assert_eq!(outcome.counters.committed, 200);
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    // The leak IS the scenario under test: a client that never closes.
    #[allow(clippy::mem_forget)]
    fn leaked_handle_times_out_naming_the_pinning_client() {
        // Regression test for the `finish` hang: client 1's handle is never
        // dropped, so its stream never closes and the old blocking `finish`
        // would wait forever. `finish_with_timeout` must instead name the
        // offending client, evict it, and still return the verified result
        // for everything client 0 delivered.
        let (leopard, mut handles) = OnlineLeopard::start(
            2,
            VerifierConfig::for_level(IsolationLevel::Serializable),
            vec![(Key(1), Value(0))],
        );
        let alive = handles.remove(0);
        alive.record(Trace::new(
            iv(10, 12),
            ClientId(0),
            TxnId(1),
            OpKind::Write(vec![(Key(1), Value(7))]),
        ));
        alive.record(Trace::new(
            iv(13, 15),
            ClientId(0),
            TxnId(1),
            OpKind::Commit,
        ));
        drop(alive);
        // `handles[0]` is now client 1's handle: leak it.
        std::mem::forget(handles);
        let err = leopard
            .finish_with_timeout(std::time::Duration::from_millis(200))
            .expect_err("a leaked handle must surface as a timeout");
        assert!(
            err.pinning.contains(&ClientId(1)),
            "timeout must name the client whose stream never closed: {err}"
        );
        assert!(!err.pinning.contains(&ClientId(0)));
        // The degraded completion still verified client 0's transaction.
        assert_eq!(err.outcome.counters.committed, 1);
        assert!(err.outcome.report.is_clean());
        assert!(err.outcome.coverage.evicted_clients.contains(&ClientId(1)));
        assert!(!err.outcome.coverage.is_complete());
    }

    #[test]
    // The leak IS the scenario under test: a crashed client's stream stays
    // open forever.
    #[allow(clippy::mem_forget)]
    fn stall_timeout_evicts_the_pinning_client() {
        // Client 1 delivers one write then goes silent mid-transaction
        // (crashed client: no terminal trace, stream never closed). With an
        // eviction timeout the chain must terminate on its own, mark the
        // transaction indeterminate, and stay clean.
        let (leopard, mut handles) = OnlineLeopard::start_opts(
            2,
            VerifierConfig::for_level(IsolationLevel::Serializable),
            OnlineOptions {
                eviction_timeout: Some(std::time::Duration::from_millis(100)),
                ..OnlineOptions::default()
            },
            vec![(Key(1), Value(0)), (Key(2), Value(0))],
        );
        let stalled = handles.remove(1);
        stalled.record(Trace::new(
            iv(5, 6),
            ClientId(1),
            TxnId(100),
            OpKind::Write(vec![(Key(2), Value(9))]),
        ));
        std::mem::forget(stalled); // never closes, never commits
        let alive = handles.remove(0);
        alive.record(Trace::new(
            iv(10, 12),
            ClientId(0),
            TxnId(1),
            OpKind::Write(vec![(Key(1), Value(7))]),
        ));
        alive.record(Trace::new(
            iv(13, 15),
            ClientId(0),
            TxnId(1),
            OpKind::Commit,
        ));
        drop(alive);
        let (outcome, stats) = leopard
            .finish_with_timeout(std::time::Duration::from_secs(30))
            .map_err(|e| e.to_string())
            .expect("eviction timeout must let the chain terminate by itself");
        assert_eq!(stats.evicted_clients, 1);
        assert!(outcome.coverage.evicted_clients.contains(&ClientId(1)));
        assert!(outcome.coverage.indeterminate_txns.contains(&TxnId(100)));
        assert!(outcome.report.is_clean(), "{}", outcome.report);
    }

    #[test]
    // The leak IS the scenario under test: the laggard never closes.
    #[allow(clippy::mem_forget)]
    fn memory_budget_ladder_evicts_laggard_instead_of_growing() {
        use crate::budget::MemBudget;
        // Client 1 is silent forever, pinning the watermark at ZERO, while
        // client 0 floods open (never-terminated) transactions the GC can
        // never reclaim. With no eviction timeout, only the budget ladder
        // can unblock the chain: rung 2 force-dispatches the pipeline,
        // rung 3 evicts the pinning laggard, and the run completes with an
        // explicit coverage hole instead of growing without bound.
        let mut cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
        cfg.mem_budget = MemBudget::bytes(4096);
        let (leopard, mut handles) =
            OnlineLeopard::start_opts(2, cfg, OnlineOptions::default(), vec![(Key(1), Value(0))]);
        let laggard = handles.remove(1);
        std::mem::forget(laggard);
        let alive = handles.remove(0);
        for i in 0..300u64 {
            // Each write opens a fresh transaction that never terminates:
            // irreducible verifier state, far beyond the 4 KiB budget.
            alive.record(Trace::new(
                iv(10 + 2 * i, 11 + 2 * i),
                ClientId(0),
                TxnId(i + 1),
                OpKind::Write(vec![(Key(1), Value(i + 1))]),
            ));
        }
        alive.record(Trace::new(
            iv(1000, 1001),
            ClientId(0),
            TxnId(301),
            OpKind::Write(vec![(Key(1), Value(999))]),
        ));
        alive.record(Trace::new(
            iv(1002, 1003),
            ClientId(0),
            TxnId(301),
            OpKind::Commit,
        ));
        drop(alive);
        let (outcome, stats) = leopard
            .finish_with_timeout(Duration::from_secs(30))
            .map_err(|e| e.to_string())
            .expect("budget ladder must terminate the chain without a timeout");
        assert!(outcome.report.is_clean(), "{}", outcome.report);
        assert_eq!(outcome.counters.committed, 1);
        assert!(
            outcome.counters.budget.budget_evictions >= 1,
            "rung 3 must have fired: {:?}",
            outcome.counters.budget
        );
        assert!(
            outcome.counters.budget.forced_dispatches >= 1,
            "rung 2 must have fired"
        );
        assert!(
            outcome.counters.budget.forced_gcs >= 1,
            "rung 1 must have fired"
        );
        assert!(outcome.counters.budget.peak_bytes > 0);
        assert!(outcome.coverage.evicted_clients.contains(&ClientId(1)));
        assert!(!outcome.coverage.is_complete());
        assert!(stats.forced_dispatches >= 1);
    }

    #[test]
    fn sharded_chain_matches_single_threaded_chain() {
        let run = |shards: usize| {
            let (leopard, handles) = OnlineLeopard::start_opts(
                2,
                VerifierConfig::for_level(IsolationLevel::Serializable),
                OnlineOptions {
                    shards,
                    ..OnlineOptions::default()
                },
                (0..8).map(|k| (Key(k), Value(0))).collect(),
            );
            let mut joins = Vec::new();
            for (c, handle) in handles.into_iter().enumerate() {
                joins.push(std::thread::spawn(move || {
                    for i in 0..40u64 {
                        let txn = TxnId((c as u64) * 1000 + i + 1);
                        let base = i * 100 + c as u64 * 3;
                        let key = Key(c as u64 * 4 + (i % 4));
                        handle.record(Trace::new(
                            iv(base + 1, base + 2),
                            ClientId(c as u32),
                            txn,
                            OpKind::Write(vec![(key, Value(1_000_000 + txn.0))]),
                        ));
                        handle.record(Trace::new(
                            iv(base + 3, base + 4),
                            ClientId(c as u32),
                            txn,
                            OpKind::Commit,
                        ));
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            leopard.finish()
        };
        let single = run(1);
        let sharded = run(4);
        assert!(single.report.is_clean(), "{}", single.report);
        assert_eq!(
            format!("{:?}", single.report),
            format!("{:?}", sharded.report)
        );
        assert_eq!(
            format!("{:?}", single.stats),
            format!("{:?}", sharded.stats)
        );
        assert_eq!(single.counters.traces, sharded.counters.traces);
        assert_eq!(single.counters.committed, sharded.counters.committed);
        assert_eq!(
            format!("{:?}", single.coverage),
            format!("{:?}", sharded.coverage)
        );
    }

    #[test]
    fn violations_surface_through_the_chain() {
        let (leopard, mut handles) = OnlineLeopard::start(
            1,
            VerifierConfig::for_level(IsolationLevel::Serializable),
            vec![(Key(1), Value(0))],
        );
        let handle = handles.remove(0);
        // A dirty read: observes a value that was never committed.
        handle.record(Trace::new(
            iv(10, 12),
            ClientId(0),
            TxnId(1),
            OpKind::Read(vec![(Key(1), Value(99))]),
        ));
        handle.record(Trace::new(
            iv(13, 15),
            ClientId(0),
            TxnId(1),
            OpKind::Commit,
        ));
        drop(handle);
        let outcome = leopard.finish();
        assert_eq!(outcome.report.violations.len(), 1);
    }
}
