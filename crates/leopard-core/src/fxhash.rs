//! A minimal Fx-style hasher for the verifier's hot-path maps.
//!
//! Keys in the verifier are small integers (`Key`, `TxnId`); SipHash's
//! HashDoS protection buys nothing here and costs measurably (see the Rust
//! Performance Book's hashing chapter). This is the well-known FxHash
//! multiply-rotate scheme, self-contained to stay within the approved
//! dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio-derived, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Key, TxnId};

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<Key, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(Key(i), i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&Key(500)), Some(&500));
        assert!(!m.contains_key(&Key(1000)));
    }

    #[test]
    fn set_distinguishes_values() {
        let mut s: FxHashSet<TxnId> = FxHashSet::default();
        assert!(s.insert(TxnId(1)));
        assert!(!s.insert(TxnId(1)));
        assert!(s.insert(TxnId(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one chunk + 3-byte tail
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
