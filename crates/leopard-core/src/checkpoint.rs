//! Checkpoint/resume for long verification runs.
//!
//! A [`Checkpoint`] is a complete, plain-data image of a
//! [`crate::verify::Verifier`] mid-stream: the transaction table, version
//! chains, lock table, dependency graph, deferred read checks, quarantine
//! gate and all accumulated results. Writing one on an interval (or on
//! demand) makes a days-long online verification crash-safe: after a kill,
//! `leopard verify --resume <ckpt>` rebuilds the verifier with
//! [`crate::verify::Verifier::from_checkpoint`], skips the first
//! [`Checkpoint::traces_ingested`] traces of the capture, and continues to
//! a verdict identical to the uninterrupted run.
//!
//! The format is versioned JSON. All maps are flattened to sorted vectors
//! (the offline-capable serde stub has no `HashMap` support, and sorting
//! makes checkpoints byte-stable for identical verifier states).

use crate::interval::Interval;
use crate::report::BugReport;
use crate::stats::DeductionStats;
use crate::types::{ClientId, Key, Timestamp, TxnId, Value};
use crate::verify::{
    Coverage, KeyLocks, KeyVersions, NodeSnap, SpillIndexEntry, TxnSnap, VerifierConfig,
    VerifyCounters,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Current checkpoint format version; bumped on incompatible change.
///
/// Version 3: pending reads are ordered by their birth position in the
/// stream (`born_seq`, `born_elem`) instead of a private heap counter, so
/// the order is meaningful across verifier shards; the counter field was
/// dropped. Version 3 also introduces the [`ShardedCheckpoint`] envelope.
///
/// Version 4: checkpoints became incremental under the spill tier — the
/// image carries a spill index (paged-out records stay in their segment
/// files instead of being folded into the JSON) and the budget counters
/// grew spill accounting. Written through
/// [`crate::store::GenChain`] when spilling is enabled, with CRC'd
/// generations and corrupt-head fallback.
pub const CHECKPOINT_VERSION: u32 = 4;

/// A deferred consistent-read check, flattened for checkpointing
/// (mirrors the verifier's private pending-read heap entries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingReadSnap {
    /// Stream position at which the check becomes runnable.
    pub due: Timestamp,
    /// Stream sequence of the trace that deferred the check (tie-break).
    pub born_seq: u64,
    /// Element index within that trace's read set (second tie-break).
    pub born_elem: u64,
    /// The reading transaction.
    pub reader: TxnId,
    /// The record read.
    pub key: Key,
    /// The value observed.
    pub observed: Value,
    /// The snapshot interval to check against.
    pub snapshot: Interval,
    /// The read operation's own interval.
    pub read_op: Interval,
}

/// A complete verifier state image. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The configuration the run was started with; resume refuses a
    /// mismatched configuration (it would change the verdict).
    pub config: VerifierConfig,
    /// Stream position (max `ts_bef` ingested, after skew widening).
    pub stream_pos: Timestamp,
    /// Version-uid counter of the version store.
    pub next_uid: u64,
    /// Traces ingested so far — the resume cursor: skip this many traces
    /// of the capture before feeding the restored verifier.
    pub traces_ingested: u64,
    /// Transaction table.
    pub txns: Vec<TxnSnap>,
    /// Version store.
    pub versions: Vec<KeyVersions>,
    /// Lock table.
    pub locks: Vec<KeyLocks>,
    /// Dependency graph.
    pub graph: Vec<NodeSnap>,
    /// Deferred read checks.
    pub pending_reads: Vec<PendingReadSnap>,
    /// Quarantine gate: traces seen by the gate.
    pub quarantine_seq: u64,
    /// Quarantine gate: last admitted `ts_bef` per client.
    pub quarantine_clients: Vec<(ClientId, Timestamp)>,
    /// Quarantine gate: transactions with an admitted terminal.
    pub quarantine_terminals: Vec<TxnId>,
    /// Run counters.
    pub counters: VerifyCounters,
    /// Deduction statistics.
    pub stats: DeductionStats,
    /// Violations found so far.
    pub report: BugReport,
    /// Coverage accumulated so far.
    pub coverage: Coverage,
    /// Spill index: records paged out to the spill tier at checkpoint
    /// time, with their durable addresses. Empty when no tier is
    /// attached. Resume must re-attach the same spill directory
    /// ([`crate::verify::Verifier::resume_spill`]) when non-empty.
    pub spill: Vec<SpillIndexEntry>,
}

/// Why a checkpoint could not be written, read or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file carries an unsupported format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        expected: u32,
    },
    /// The file is not valid checkpoint JSON.
    Malformed(String),
    /// The file could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Version { found, expected } => write!(
                f,
                "unsupported checkpoint version {found} (this build supports {expected})"
            ),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes `json` to `path` atomically *and durably*: write to a
/// temporary sibling, fsync the file, rename over `path`, then fsync the
/// parent directory. The directory fsync is what makes the rename itself
/// survive a power loss — without it the new directory entry can still be
/// sitting in the page cache when the machine dies, and the checkpoint
/// "written" before the crash simply never existed on disk.
pub(crate) fn write_atomic_durable(path: &Path, json: &str) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // Opening a directory read-only for fsync is the portable unix idiom.
    fs::File::open(parent)?.sync_all()?;
    Ok(())
}

/// Converts a spill-store failure surfaced by the generation chain into
/// the checkpoint error taxonomy.
fn store_to_ckpt(e: crate::store::StoreError) -> CheckpointError {
    match e {
        crate::store::StoreError::Io(io) => CheckpointError::Io(io),
        other => CheckpointError::Malformed(other.to_string()),
    }
}

/// Appends `json` as a new generation of the [`crate::store::GenChain`]
/// rooted at `path` (manifest + CRC-verified generation files).
fn write_chained_json(path: &Path, json: &str) -> Result<(), CheckpointError> {
    let chain = crate::store::GenChain::new(path);
    chain
        .append(&crate::store::FsIo, json.as_bytes())
        .map(|_gen| ())
        .map_err(store_to_ckpt)
}

/// Loads the newest good generation at `path`, accepting plain (legacy)
/// checkpoint files transparently. Returns the JSON plus a warning when
/// the head generation was corrupt and an older one was used.
fn read_chained_json(path: &Path) -> Result<(String, Option<String>), CheckpointError> {
    let chain = crate::store::GenChain::new(path);
    let load = chain
        .load_latest(&crate::store::FsIo)
        .map_err(store_to_ckpt)?
        .ok_or_else(|| {
            CheckpointError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no checkpoint at {}", path.display()),
            ))
        })?;
    let json = String::from_utf8(load.payload)
        .map_err(|e| CheckpointError::Malformed(format!("checkpoint is not utf-8: {e}")))?;
    Ok((json, load.warning))
}

impl Checkpoint {
    /// Serializes to one JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Parses a JSON document, validating the format version.
    pub fn from_json(json: &str) -> Result<Checkpoint, CheckpointError> {
        let ckpt: Checkpoint =
            serde_json::from_str(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: ckpt.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        Ok(ckpt)
    }

    /// Writes the checkpoint to `path` atomically and durably
    /// (write-to-temp, fsync, rename, fsync parent directory), so a
    /// crash mid-write never leaves a truncated checkpoint behind and a
    /// power loss after the rename cannot lose the directory entry.
    pub fn write(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic_durable(path, &self.to_json())
    }

    /// Reads and parses a checkpoint from `path`.
    pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let json = fs::read_to_string(path)?;
        Checkpoint::from_json(&json)
    }

    /// Writes the checkpoint as a new generation of the generation chain
    /// rooted at `path` (see [`crate::store::GenChain`]): the image goes
    /// to a CRC-recorded sibling generation file and the manifest at
    /// `path` is atomically updated, keeping the previous generation as
    /// a verified fallback.
    pub fn write_chained(&self, path: &Path) -> Result<(), CheckpointError> {
        write_chained_json(path, &self.to_json())
    }

    /// Reads the newest *good* checkpoint generation at `path`, falling
    /// back generation-by-generation past truncated or corrupt heads.
    /// Plain (pre-chain) checkpoint files are accepted transparently.
    /// Returns the checkpoint plus a warning describing any fallback —
    /// a degraded-but-safe load the caller should surface, not abort on.
    pub fn read_chained(path: &Path) -> Result<(Checkpoint, Option<String>), CheckpointError> {
        let (json, warning) = read_chained_json(path)?;
        Ok((Checkpoint::from_json(&json)?, warning))
    }
}

/// A complete image of a [`crate::verify::ShardedVerifier`] mid-stream:
/// one per-shard [`Checkpoint`] image per worker shard plus the driver's
/// cross-shard certifier state, under a single versioned envelope.
///
/// Checkpoints are only taken at emission barriers (every shard's effect
/// buffer drained and applied), so the envelope is byte-stable: two runs
/// that fed the same traces produce identical envelopes regardless of
/// worker-thread scheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Number of worker shards; resume rebuilds exactly this many.
    pub n_shards: u64,
    /// The configuration the run was started with.
    pub config: VerifierConfig,
    /// Traces fed to the sharded verifier so far, *including* quarantined
    /// ones — the resume cursor: skip this many traces of the capture.
    pub traces_fed: u64,
    /// Per-shard verifier images, in shard order.
    pub shards: Vec<Checkpoint>,
    /// The driver's cross-shard dependency graph.
    pub graph: Vec<NodeSnap>,
    /// Quarantine gate: traces seen by the gate.
    pub quarantine_seq: u64,
    /// Quarantine gate: last admitted `ts_bef` per client.
    pub quarantine_clients: Vec<(ClientId, Timestamp)>,
    /// Quarantine gate: transactions with an admitted terminal.
    pub quarantine_terminals: Vec<TxnId>,
    /// Driver-side run counters (traces, committed, aborted, budget).
    pub counters: VerifyCounters,
    /// Deduction statistics summed across shards.
    pub stats: DeductionStats,
    /// Violations found so far, in sequential emission order.
    pub report: BugReport,
    /// Coverage accumulated so far.
    pub coverage: Coverage,
}

impl ShardedCheckpoint {
    /// Serializes to one JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Parses a JSON document, validating the format version.
    pub fn from_json(json: &str) -> Result<ShardedCheckpoint, CheckpointError> {
        let ckpt: ShardedCheckpoint =
            serde_json::from_str(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: ckpt.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        Ok(ckpt)
    }

    /// Writes the envelope to `path` atomically and durably
    /// (write-to-temp, fsync, rename, fsync parent directory).
    pub fn write(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic_durable(path, &self.to_json())
    }

    /// Reads and parses an envelope from `path`.
    pub fn read(path: &Path) -> Result<ShardedCheckpoint, CheckpointError> {
        let json = fs::read_to_string(path)?;
        ShardedCheckpoint::from_json(&json)
    }

    /// Writes the envelope as a new generation of the generation chain
    /// rooted at `path` (see [`Checkpoint::write_chained`]).
    pub fn write_chained(&self, path: &Path) -> Result<(), CheckpointError> {
        write_chained_json(path, &self.to_json())
    }

    /// Reads the newest good envelope generation at `path`, with
    /// corrupt-head fallback (see [`Checkpoint::read_chained`]).
    pub fn read_chained(
        path: &Path,
    ) -> Result<(ShardedCheckpoint, Option<String>), CheckpointError> {
        let (json, warning) = read_chained_json(path)?;
        Ok((ShardedCheckpoint::from_json(&json)?, warning))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IsolationLevel;
    use crate::trace::TraceBuilder;
    use crate::verify::Verifier;

    #[test]
    fn json_round_trip_is_identity() {
        let mut v = Verifier::new(VerifierConfig::for_level(IsolationLevel::Serializable));
        v.preload(Key(1), Value(0));
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 10)]);
        b.commit(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 10)]);
        for t in b.build_sorted() {
            v.process(&t);
        }
        let ckpt = v.checkpoint();
        let back = Checkpoint::from_json(&ckpt.to_json()).expect("round-trips");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let v = Verifier::new(VerifierConfig::for_level(IsolationLevel::Serializable));
        let mut ckpt = v.checkpoint();
        ckpt.version = 99;
        let err = Checkpoint::from_json(&ckpt.to_json()).unwrap_err();
        assert!(matches!(err, CheckpointError::Version { found: 99, .. }));
    }

    #[test]
    fn file_round_trip() {
        let v = Verifier::new(VerifierConfig::for_level(IsolationLevel::Serializable));
        let ckpt = v.checkpoint();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("leopard-ckpt-test-{}.json", std::process::id()));
        ckpt.write(&path).expect("writes");
        let back = Checkpoint::read(&path).expect("reads");
        let _ = fs::remove_file(&path);
        assert_eq!(back, ckpt);
    }
}
