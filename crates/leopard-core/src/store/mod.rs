//! `leopard_core::store` — the disk-spilling backing tier for cold
//! verifier state, behind a pin/unpin buffer pool, plus the checkpoint
//! generation chain.
//!
//! The module exists so captures larger than RAM verify with **zero
//! coverage loss**: when the [`crate::budget::MemBudget`] is exceeded,
//! the overload ladder's new *spill* rung pages cold
//! [`crate::verify::VersionStore`] records out to append-organized
//! segment files ([`segment`]) instead of escalating straight to forced
//! dispatch and degraded-coverage evictions. Reads fault records back in
//! through a small clock page cache ([`pool`]).
//!
//! Because the tier now holds verdict-critical state, the disk is
//! treated as hostile: every byte moves through the injectable
//! [`StoreIo`] trait ([`io`]), every page carries a CRC ([`page`]), and
//! the checkpoint path grows a CRC'd generation chain with corrupt-head
//! fallback ([`genchain`]). Every error path resolves to exactly one of
//! three outcomes — transparent retry ([`RetryPolicy`]), counted
//! fallback to the in-memory path, or a typed [`StoreError`] — never a
//! silent wrong verdict.

pub mod genchain;
pub mod io;
pub mod page;
pub mod pool;
pub mod segment;
pub mod tier;

pub use genchain::{GenChain, GenLoad};
pub use io::{FaultIo, FaultSpec, FsIo, InjectedFaults, SplitMix64, StoreFile, StoreIo};
pub use page::{PageError, PAGE_PAYLOAD, PAGE_SIZE};
pub use pool::{BufferPool, PageRef, PoolStats};
pub use segment::{RecordAddr, SegmentWriter};
pub use tier::{SpillStats, SpillTier};

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Result alias of the store module.
pub type StoreResult<T> = Result<T, StoreError>;

/// Why a store operation failed, after retries were exhausted.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying I/O failed (ENOSPC, EIO, fsync failure, ...).
    Io(std::io::Error),
    /// On-disk data failed validation (CRC mismatch, bad magic, torn
    /// record, address/data disagreement). Retrying cannot help; the
    /// caller must fall back or fail with this typed error.
    Corrupt(String),
    /// The spill tier is poisoned by an earlier unrecoverable fault;
    /// the original failure is carried as a message.
    Poisoned(String),
    /// State on disk is referenced but unavailable (e.g. a resume names
    /// spilled records but no spill directory was configured).
    Unavailable(String),
}

impl StoreError {
    /// Wraps an I/O error.
    #[must_use]
    pub fn io(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }

    /// A corruption finding.
    #[must_use]
    pub fn corrupt(msg: impl Into<String>) -> StoreError {
        StoreError::Corrupt(msg.into())
    }

    /// `true` when retrying the operation could plausibly succeed
    /// (transient I/O); corruption and poisoning are never retriable.
    #[must_use]
    pub fn is_retriable(&self) -> bool {
        matches!(self, StoreError::Io(_))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Poisoned(m) => write!(f, "spill tier poisoned: {m}"),
            StoreError::Unavailable(m) => write!(f, "spilled state unavailable: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Bounded decorrelated-jitter retry schedule for transient store I/O.
///
/// This mirrors the workload runner's `RetryPolicy` (leopard-workloads)
/// but lives in core because the tier cannot depend on the workloads
/// crate. Jitter derives from a seeded [`SplitMix64`], so schedules are
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts before giving up (1 = no retry).
    pub max_attempts: u32,
    /// Base backoff; attempt `n` waits in `[base, base * 2^n * 3]`,
    /// capped at [`RetryPolicy::cap`].
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            seed: 0x1e0_9a5d,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (tests, and the strict fault suite).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// Runs `op` up to [`RetryPolicy::max_attempts`] times, sleeping a
    /// jittered backoff between attempts. Non-retriable errors
    /// (corruption, poisoning) are returned immediately. The number of
    /// retries actually performed is reported to the `on_retry` hook so
    /// callers can count them.
    pub fn run<T>(
        &self,
        mut on_retry: impl FnMut(&StoreError),
        mut op: impl FnMut() -> StoreResult<T>,
    ) -> StoreResult<T> {
        let mut rng = SplitMix64::new(self.seed);
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_retriable() => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.max_attempts.max(1) {
                        return Err(e);
                    }
                    on_retry(&e);
                    let backoff = self.backoff(attempt, &mut rng);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff); // lint: allow(L004): retry backoff is wall-clock by definition; verdicts stay trace-time only
                    }
                }
            }
        }
    }

    /// The jittered backoff before retry number `attempt` (1-based).
    fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.min(16);
        let upper = self
            .base
            .saturating_mul(1u32 << exp.min(10))
            .saturating_mul(3)
            .min(self.cap.max(self.base));
        let span = upper.saturating_sub(self.base);
        let jitter_nanos = if span.is_zero() {
            0
        } else {
            rng.next_u64() % span.as_nanos().min(u128::from(u64::MAX)) as u64
        };
        (self.base + Duration::from_nanos(jitter_nanos)).min(upper)
    }
}

/// Configuration of one spill tier.
#[derive(Debug, Clone)]
pub struct SpillSettings {
    /// Directory holding segment files (created if missing).
    pub dir: PathBuf,
    /// Page-cache capacity in pages ([`PAGE_SIZE`] bytes each).
    pub cache_pages: usize,
    /// Retry schedule for transient I/O.
    pub retry: RetryPolicy,
    /// Fault-injection plan applied to all tier I/O (chaos runs and the
    /// CI fault matrix); the default no-op spec is the real filesystem
    /// untouched.
    pub fault: io::FaultSpec,
}

impl SpillSettings {
    /// Settings for `dir` with the default cache size and retries.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> SpillSettings {
        SpillSettings {
            dir: dir.into(),
            cache_pages: 256,
            retry: RetryPolicy::default(),
            fault: io::FaultSpec::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn retry_runs_until_success() {
        let fails = AtomicU32::new(2);
        let mut retries = 0u32;
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 7,
        };
        let out = policy.run(
            |_| retries += 1,
            || {
                if fails
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                        Some(v.saturating_sub(1))
                    })
                    .unwrap_or(0)
                    > 0
                {
                    Err(StoreError::io(std::io::Error::other("transient")))
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(out.unwrap(), 42);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let policy = RetryPolicy::none();
        let out: StoreResult<()> = policy.run(
            |_| {},
            || Err(StoreError::io(std::io::Error::other("always"))),
        );
        assert!(matches!(out, Err(StoreError::Io(_))));
    }

    #[test]
    fn corruption_is_not_retried() {
        let mut attempts = 0;
        let policy = RetryPolicy {
            max_attempts: 5,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        };
        let out: StoreResult<()> = policy.run(
            |_| {},
            || {
                attempts += 1;
                Err(StoreError::corrupt("crc"))
            },
        );
        assert!(matches!(out, Err(StoreError::Corrupt(_))));
        assert_eq!(attempts, 1, "corruption must fail fast");
    }
}
