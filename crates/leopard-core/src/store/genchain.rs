//! Checkpoint generation chain: incremental images with corrupt-head
//! fallback.
//!
//! Instead of overwriting one monolithic JSON image, the spill-enabled
//! checkpoint path keeps a **manifest** at the configured checkpoint path
//! and writes each checkpoint image to a sibling *generation file*
//! (`<name>.gen<N>`). The manifest records every live generation with
//! its byte length and CRC-32, so resume can verify the head image
//! before trusting it and **fall back to the previous good generation**
//! when the head is truncated or corrupt — a warning, not an abort,
//! because the previous generation plus the capture's resume cursor
//! still reaches the identical verdict.
//!
//! The chain keeps the last [`KEEP_GENERATIONS`] generations; older
//! files are removed after the manifest no longer references them (so a
//! crash between the two steps leaves garbage files, never a manifest
//! pointing at nothing).
//!
//! For back-compat, [`GenChain::load_latest`] transparently accepts a
//! *plain* checkpoint file at the manifest path (pre-chain layouts):
//! anything that does not parse as a manifest is returned as a single
//! unverified legacy generation.

use super::io::StoreIo;
use super::page::crc32;
use super::{StoreError, StoreResult};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Generations retained in the manifest (head + fallback).
pub const KEEP_GENERATIONS: usize = 2;

/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    /// Monotonic generation number.
    gen: u64,
    /// Generation file name (sibling of the manifest).
    file: String,
    /// Byte length of the generation file.
    len: u64,
    /// CRC-32 (IEEE) of the generation file bytes.
    crc32: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    /// Distinguishes a manifest from a plain checkpoint image sitting at
    /// the same path; plain images never carry this field.
    genchain_version: u32,
    /// Live generations, oldest first.
    generations: Vec<ManifestEntry>,
}

/// A loaded checkpoint image plus how it was obtained.
#[derive(Debug)]
pub struct GenLoad {
    /// The checkpoint image bytes (JSON).
    pub payload: Vec<u8>,
    /// Generation number loaded (0 for a legacy plain file).
    pub generation: u64,
    /// `true` when the head generation was bad and an older one was
    /// used; the caller should surface [`GenLoad::warning`].
    pub fell_back: bool,
    /// Human-readable description of any fallback taken.
    pub warning: Option<String>,
}

/// The generation chain anchored at one manifest path. See module docs.
#[derive(Debug)]
pub struct GenChain {
    path: PathBuf,
}

impl GenChain {
    /// A chain anchored at `path` (the path users pass as the checkpoint
    /// file; the manifest lives there, generations are siblings).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> GenChain {
        GenChain { path: path.into() }
    }

    /// The manifest path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn gen_path(&self, entry: &ManifestEntry) -> PathBuf {
        match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.join(&entry.file),
            _ => PathBuf::from(&entry.file),
        }
    }

    fn gen_file_name(&self, generation: u64) -> String {
        let base = self.path.file_name().map_or_else(
            || "checkpoint".to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        format!("{base}.gen{generation}")
    }

    fn read_manifest(&self, io: &dyn StoreIo) -> StoreResult<Option<Manifest>> {
        let bytes = match io.read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let Ok(text) = std::str::from_utf8(&bytes) else {
            return Ok(None); // binary garbage: not a manifest
        };
        // Not a manifest (e.g. a plain pre-chain checkpoint image): the
        // caller handles the legacy layout.
        match serde_json::from_str::<Manifest>(text) {
            Ok(m) if m.genchain_version == MANIFEST_VERSION => Ok(Some(m)),
            Ok(m) => Err(StoreError::corrupt(format!(
                "unsupported genchain manifest version {}",
                m.genchain_version
            ))),
            Err(_) => Ok(None),
        }
    }

    /// Appends `payload` as a new generation: writes the generation file
    /// atomically+durably, then the updated manifest, then prunes
    /// generations beyond [`KEEP_GENERATIONS`]. Returns the new
    /// generation number.
    pub fn append(&self, io: &dyn StoreIo, payload: &[u8]) -> StoreResult<u64> {
        let mut manifest = self.read_manifest(io)?.unwrap_or(Manifest {
            genchain_version: MANIFEST_VERSION,
            generations: Vec::new(),
        });
        let generation = manifest.generations.last().map_or(1, |e| e.gen + 1);
        let entry = ManifestEntry {
            gen: generation,
            file: self.gen_file_name(generation),
            len: payload.len() as u64,
            crc32: crc32(payload),
        };
        let gen_path = self.gen_path(&entry);
        io.write_atomic(&gen_path, payload)
            .map_err(StoreError::Io)?;
        manifest.generations.push(entry);
        let dropped: Vec<ManifestEntry> = if manifest.generations.len() > KEEP_GENERATIONS {
            manifest
                .generations
                .drain(..manifest.generations.len() - KEEP_GENERATIONS)
                .collect()
        } else {
            Vec::new()
        };
        let json = serde_json::to_string(&manifest)
            .map_err(|e| StoreError::corrupt(format!("manifest serialization failed: {e}")))?;
        io.write_atomic(&self.path, json.as_bytes())
            .map_err(StoreError::Io)?;
        // Prune only after the manifest stopped referencing these; a
        // failure here leaves garbage files, never dangling references.
        for old in dropped {
            let _ = io.remove(&self.gen_path(&old));
        }
        Ok(generation)
    }

    /// Loads the newest generation whose bytes verify against the
    /// manifest (length + CRC-32), falling back generation by generation
    /// and reporting the fallback in the returned [`GenLoad`]. A plain
    /// (pre-chain) checkpoint file at the manifest path is returned
    /// as-is as generation 0. Returns `Ok(None)` when nothing exists at
    /// the path; every-generation-bad is a typed corruption error.
    pub fn load_latest(&self, io: &dyn StoreIo) -> StoreResult<Option<GenLoad>> {
        let Some(manifest) = self.read_manifest(io)? else {
            // Legacy or absent: hand back the plain file if present.
            return match io.read(&self.path) {
                Ok(payload) => Ok(Some(GenLoad {
                    payload,
                    generation: 0,
                    fell_back: false,
                    warning: None,
                })),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
                Err(e) => Err(StoreError::Io(e)),
            };
        };
        if manifest.generations.is_empty() {
            return Err(StoreError::corrupt(
                "genchain manifest lists no generations",
            ));
        }
        let mut failures: Vec<String> = Vec::new();
        for entry in manifest.generations.iter().rev() {
            let path = self.gen_path(entry);
            let verdict = match io.read(&path) {
                Err(e) => Err(format!("generation {}: unreadable: {e}", entry.gen)),
                Ok(bytes) if bytes.len() as u64 != entry.len => Err(format!(
                    "generation {}: length {} != manifest {}",
                    entry.gen,
                    bytes.len(),
                    entry.len
                )),
                Ok(bytes) => {
                    let crc = crc32(&bytes);
                    if crc != entry.crc32 {
                        Err(format!(
                            "generation {}: crc {crc:#010x} != manifest {:#010x}",
                            entry.gen, entry.crc32
                        ))
                    } else {
                        Ok(bytes)
                    }
                }
            };
            match verdict {
                Ok(payload) => {
                    let fell_back = !failures.is_empty();
                    let warning = fell_back.then(|| {
                        format!(
                            "checkpoint head corrupt, resumed from generation {}: {}",
                            entry.gen,
                            failures.join("; ")
                        )
                    });
                    return Ok(Some(GenLoad {
                        payload,
                        generation: entry.gen,
                        fell_back,
                        warning,
                    }));
                }
                Err(why) => failures.push(why),
            }
        }
        Err(StoreError::corrupt(format!(
            "every checkpoint generation is corrupt: {}",
            failures.join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::super::io::FsIo;
    use super::*;

    fn tmp_manifest(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leopard-genchain-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("state.ckpt")
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn append_then_load_returns_head() {
        let path = tmp_manifest("head");
        let chain = GenChain::new(&path);
        chain.append(&FsIo, b"gen one").expect("append 1");
        chain.append(&FsIo, b"gen two").expect("append 2");
        let load = chain.load_latest(&FsIo).expect("load").expect("present");
        assert_eq!(load.payload, b"gen two");
        assert_eq!(load.generation, 2);
        assert!(!load.fell_back);
        cleanup(&path);
    }

    #[test]
    fn corrupt_head_falls_back_with_warning() {
        let path = tmp_manifest("fallback");
        let chain = GenChain::new(&path);
        chain.append(&FsIo, b"good old image").expect("append 1");
        chain.append(&FsIo, b"bad new image").expect("append 2");
        // Corrupt the head generation file.
        let head = path.parent().unwrap().join("state.ckpt.gen2");
        let mut bytes = std::fs::read(&head).expect("read head");
        bytes[0] ^= 0xff;
        std::fs::write(&head, &bytes).expect("corrupt head");
        let load = chain.load_latest(&FsIo).expect("load").expect("present");
        assert_eq!(load.payload, b"good old image");
        assert_eq!(load.generation, 1);
        assert!(load.fell_back);
        let warning = load.warning.expect("fallback carries a warning");
        assert!(warning.contains("generation 1"), "{warning}");
        cleanup(&path);
    }

    #[test]
    fn truncated_head_falls_back_too() {
        let path = tmp_manifest("trunc");
        let chain = GenChain::new(&path);
        chain.append(&FsIo, b"good old image").expect("append 1");
        chain.append(&FsIo, b"bad new image").expect("append 2");
        let head = path.parent().unwrap().join("state.ckpt.gen2");
        std::fs::write(&head, b"bad").expect("truncate head");
        let load = chain.load_latest(&FsIo).expect("load").expect("present");
        assert_eq!(load.payload, b"good old image");
        assert!(load.fell_back);
        cleanup(&path);
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let path = tmp_manifest("allbad");
        let chain = GenChain::new(&path);
        chain.append(&FsIo, b"one").expect("append 1");
        chain.append(&FsIo, b"two").expect("append 2");
        for gen in ["state.ckpt.gen1", "state.ckpt.gen2"] {
            let p = path.parent().unwrap().join(gen);
            std::fs::write(&p, b"garbage that fails crc").expect("corrupt");
        }
        let err = chain.load_latest(&FsIo).expect_err("all-bad must error");
        assert!(matches!(err, StoreError::Corrupt(_)), "typed: {err}");
        cleanup(&path);
    }

    #[test]
    fn old_generations_are_pruned() {
        let path = tmp_manifest("prune");
        let chain = GenChain::new(&path);
        for i in 0..5u8 {
            chain.append(&FsIo, &[i; 8]).expect("append");
        }
        let dir = path.parent().unwrap();
        let gens: Vec<_> = std::fs::read_dir(dir)
            .expect("ls")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".gen"))
            .collect();
        assert_eq!(gens.len(), KEEP_GENERATIONS, "keeps only the last two");
        let load = chain.load_latest(&FsIo).expect("load").expect("present");
        assert_eq!(load.payload, vec![4u8; 8]);
        assert_eq!(load.generation, 5);
        cleanup(&path);
    }

    #[test]
    fn plain_checkpoint_file_is_accepted_as_legacy() {
        let path = tmp_manifest("legacy");
        std::fs::write(&path, br#"{"version":3,"plain":"checkpoint"}"#).expect("write");
        let chain = GenChain::new(&path);
        let load = chain.load_latest(&FsIo).expect("load").expect("present");
        assert_eq!(load.generation, 0, "legacy plain file is generation 0");
        assert!(!load.fell_back);
        cleanup(&path);
    }

    #[test]
    fn missing_path_loads_none() {
        let path = tmp_manifest("absent");
        let chain = GenChain::new(&path);
        assert!(chain.load_latest(&FsIo).expect("ok").is_none());
        cleanup(&path);
    }
}
