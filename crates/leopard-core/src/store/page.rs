//! Fixed-size page format of the spill tier: layout, CRC, codec.
//!
//! Every segment file is a sequence of [`PAGE_SIZE`]-byte pages. A page
//! carries one *part* of one spilled record (records larger than a page
//! payload are chunked over consecutive pages) behind a fixed 32-byte
//! header whose last field is a CRC-32 over the header prefix plus the
//! payload. The CRC is what turns a hostile disk into a typed error: a
//! torn write, a bit flip or a short read all decode to
//! [`PageError::Crc`]/[`PageError::Truncated`] instead of silently
//! feeding the verifier a wrong version chain.
//!
//! The CRC-32 (IEEE 802.3 polynomial, the `crc32` everybody means) is
//! hand-rolled over a 256-entry table because `leopard-core` carries no
//! compression/hashing dependency and must not grow one for this.

use std::fmt;

/// Size of one spill page on disk, header included.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of the fixed page header.
pub const PAGE_HEADER: usize = 32;

/// Maximum payload bytes one page carries.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;

/// Magic bytes opening every record page (`LPpg`).
pub const PAGE_MAGIC: u32 = 0x4c50_7067;

/// Page format version; bumped on incompatible layout change.
pub const PAGE_VERSION: u16 = 1;

/// Why a page failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// Fewer than [`PAGE_SIZE`] bytes were available (torn tail).
    Truncated {
        /// Bytes actually available.
        got: usize,
    },
    /// The magic bytes did not match (never-written or foreign data).
    Magic {
        /// The first word found instead.
        found: u32,
    },
    /// The format version is not supported by this build.
    Version {
        /// Version found in the header.
        found: u16,
    },
    /// The payload length field exceeds [`PAGE_PAYLOAD`].
    Length {
        /// Length claimed by the header.
        claimed: u32,
    },
    /// The stored CRC does not match the recomputed one: torn write,
    /// bit rot, or a short write that zero-padded the payload.
    Crc {
        /// CRC stored in the header.
        stored: u32,
        /// CRC recomputed over header prefix + payload.
        computed: u32,
    },
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::Truncated { got } => {
                write!(f, "truncated page: {got} of {PAGE_SIZE} bytes")
            }
            PageError::Magic { found } => write!(f, "bad page magic {found:#010x}"),
            PageError::Version { found } => write!(f, "unsupported page version {found}"),
            PageError::Length { claimed } => {
                write!(f, "payload length {claimed} exceeds {PAGE_PAYLOAD}")
            }
            PageError::Crc { stored, computed } => {
                write!(
                    f,
                    "page crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for PageError {}

/// Decoded header of one record page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// Monotonic sequence number of the spilled record this page belongs
    /// to (all parts of one record share it).
    pub record_seq: u64,
    /// 0-based index of this part within the record.
    pub part: u32,
    /// Total parts the record was chunked into.
    pub parts: u32,
    /// Payload bytes carried by this page.
    pub len: u32,
}

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xffff_ffff, data) ^ 0xffff_ffff
}

/// Streaming CRC-32 update (state starts at `0xffff_ffff`, finish by
/// xoring with `0xffff_ffff`).
#[must_use]
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = CRC_TABLE[((state ^ u32::from(b)) & 0xff) as usize] ^ (state >> 8);
    }
    state
}

/// Encodes one page: header, payload, zero padding to [`PAGE_SIZE`].
///
/// # Panics
/// Panics if `payload` exceeds [`PAGE_PAYLOAD`] — chunking is the
/// caller's job and a violation is a programming error, not bad data.
#[must_use]
pub fn encode_page(hdr: &PageHeader, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= PAGE_PAYLOAD,
        "payload exceeds page capacity"
    );
    assert!(
        hdr.len as usize == payload.len(),
        "header len must match payload"
    );
    let mut page = vec![0u8; PAGE_SIZE];
    page[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    page[4..6].copy_from_slice(&PAGE_VERSION.to_le_bytes());
    // bytes 6..8: flags, reserved zero.
    page[8..16].copy_from_slice(&hdr.record_seq.to_le_bytes());
    page[16..20].copy_from_slice(&hdr.part.to_le_bytes());
    page[20..24].copy_from_slice(&hdr.parts.to_le_bytes());
    page[24..28].copy_from_slice(&hdr.len.to_le_bytes());
    page[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    let crc = crc32_of_page(&page);
    page[28..32].copy_from_slice(&crc.to_le_bytes());
    page
}

/// CRC over everything the header protects: bytes 0..28 (header minus
/// the CRC field itself) plus the full padded payload area. Covering the
/// padding means a short write that zero-filled the tail still fails.
fn crc32_of_page(page: &[u8]) -> u32 {
    let state = crc32_update(0xffff_ffff, &page[0..28]);
    crc32_update(state, &page[PAGE_HEADER..PAGE_SIZE]) ^ 0xffff_ffff
}

/// Decodes and validates one page, returning the header and payload.
pub fn decode_page(page: &[u8]) -> Result<(PageHeader, &[u8]), PageError> {
    if page.len() < PAGE_SIZE {
        return Err(PageError::Truncated { got: page.len() });
    }
    let page = &page[..PAGE_SIZE];
    let word = |at: usize| u32::from_le_bytes([page[at], page[at + 1], page[at + 2], page[at + 3]]);
    let magic = word(0);
    if magic != PAGE_MAGIC {
        return Err(PageError::Magic { found: magic });
    }
    let version = u16::from_le_bytes([page[4], page[5]]);
    if version != PAGE_VERSION {
        return Err(PageError::Version { found: version });
    }
    let len = word(24);
    if len as usize > PAGE_PAYLOAD {
        return Err(PageError::Length { claimed: len });
    }
    let stored = word(28);
    let computed = crc32_of_page(page);
    if stored != computed {
        return Err(PageError::Crc { stored, computed });
    }
    let hdr = PageHeader {
        record_seq: u64::from_le_bytes([
            page[8], page[9], page[10], page[11], page[12], page[13], page[14], page[15],
        ]),
        part: word(16),
        parts: word(20),
        len,
    };
    Ok((hdr, &page[PAGE_HEADER..PAGE_HEADER + len as usize]))
}

/// Splits a record payload into per-page chunks (at least one, even for
/// an empty payload, so every record occupies a page range).
#[must_use]
pub fn chunk_payload(payload: &[u8]) -> Vec<&[u8]> {
    if payload.is_empty() {
        return vec![&[]];
    }
    payload.chunks(PAGE_PAYLOAD).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn page_round_trip() {
        let hdr = PageHeader {
            record_seq: 42,
            part: 1,
            parts: 3,
            len: 11,
        };
        let page = encode_page(&hdr, b"hello pages");
        assert_eq!(page.len(), PAGE_SIZE);
        let (back, payload) = decode_page(&page).expect("decodes");
        assert_eq!(back, hdr);
        assert_eq!(payload, b"hello pages");
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let hdr = PageHeader {
            record_seq: 7,
            part: 0,
            parts: 1,
            len: 5,
        };
        let page = encode_page(&hdr, b"abcde");
        // Flip one bit in every byte position; every flip must fail decode
        // (magic, version, length, or CRC — never a silent success).
        for i in 0..PAGE_SIZE {
            let mut bad = page.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_page(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncated_page_is_typed() {
        let hdr = PageHeader {
            record_seq: 1,
            part: 0,
            parts: 1,
            len: 3,
        };
        let page = encode_page(&hdr, b"xyz");
        assert_eq!(
            decode_page(&page[..PAGE_SIZE - 1]),
            Err(PageError::Truncated { got: PAGE_SIZE - 1 })
        );
    }

    #[test]
    fn chunking_covers_payload_exactly() {
        let data = vec![7u8; PAGE_PAYLOAD * 2 + 17];
        let chunks = chunk_payload(&data);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), data.len());
        assert!(chunk_payload(&[]).len() == 1);
    }
}
