//! Injectable storage I/O: the [`StoreIo`] boundary, the real
//! filesystem implementation, and a seeded hostile-disk fault injector.
//!
//! Every byte the spill tier and the checkpoint generation chain move
//! crosses this trait, so the fault-injection suite can subject the
//! *production* code paths — not mocks of them — to ENOSPC, short
//! writes, torn writes, fsync failures and delayed errors, and prove
//! each one resolves to a retry, a counted fallback or a typed error.
//!
//! The injector's randomness is a hand-rolled splitmix64: `leopard-core`
//! has no `rand` runtime dependency and the whole point of seeded faults
//! is bit-reproducible schedules.

use crate::lockwitness::TrackedMutex;
use std::fmt;
use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One open, random-access storage file.
pub trait StoreFile: Send + fmt::Debug {
    /// Current length in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// Reads up to `buf.len()` bytes at `off`, returning the count
    /// (short reads are legal, exactly like `pread`).
    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> io::Result<usize>;
    /// Writes up to `data.len()` bytes at `off`, returning the count
    /// (short writes are legal, exactly like `pwrite`).
    fn write_at(&mut self, off: u64, data: &[u8]) -> io::Result<usize>;
    /// Truncates (or extends with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Durably flushes file contents (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
}

/// The storage-I/O boundary of the spill tier and generation chain.
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// Creates `path` and every missing parent directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Opens (creating if absent) `path` for random-access read/write.
    fn open(&self, path: &Path) -> io::Result<Box<dyn StoreFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically and durably replaces `path` with `data`
    /// (write-to-temp, fsync, rename, fsync parent directory).
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Removes a file; absent files are not an error.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Paths of the directory's entries (files only), sorted.
    fn list(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The real filesystem behind [`StoreIo`].
#[derive(Debug, Default, Clone, Copy)]
pub struct FsIo;

/// A real file opened by [`FsIo`]. Positioned reads/writes are done with
/// seek + read/write so the implementation stays platform-portable.
#[derive(Debug)]
struct FsFile {
    file: fs::File,
}

impl StoreFile for FsFile {
    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read(buf)
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> io::Result<usize> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write(data)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

impl StoreIo for FsIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(FsFile { file }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("store.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        fs::File::open(parent)?.sync_all()?;
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn list(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Seeded splitmix64 stream — the injector's only source of randomness.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// `true` with probability `prob` (clamped to `[0, 1]`).
    pub fn chance(&mut self, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        if prob >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < prob
    }
}

/// What the fault injector is allowed to do, all off by default.
/// Probabilities are per-operation; the schedule is fully determined by
/// [`FaultSpec::seed`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed of the injector's splitmix64 stream.
    pub seed: u64,
    /// Fail writes with `ENOSPC` once this many bytes were written
    /// through the injector (`None` = unlimited disk).
    pub enospc_after_bytes: Option<u64>,
    /// Probability a write persists only a prefix (short write, no
    /// error reported — the caller must notice the count).
    pub short_write_prob: f64,
    /// Probability a write persists a prefix *and* reports an error
    /// (torn write: the bytes are damaged and the caller knows
    /// something went wrong, but not how much landed).
    pub torn_write_prob: f64,
    /// Probability an `fsync` fails after the data already reached the
    /// file (the dreaded fsyncgate shape).
    pub sync_fail_prob: f64,
    /// Probability a read fails with `EIO`.
    pub read_err_prob: f64,
    /// Probability a write reports success but the error surfaces on
    /// the *next* `sync` (delayed error, writeback semantics).
    pub delayed_write_err_prob: f64,
}

impl FaultSpec {
    /// `true` when every fault is disabled (the injector is a
    /// pass-through).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.enospc_after_bytes.is_none()
            && self.short_write_prob == 0.0
            && self.torn_write_prob == 0.0
            && self.sync_fail_prob == 0.0
            && self.read_err_prob == 0.0
            && self.delayed_write_err_prob == 0.0
    }
}

/// Shared mutable state of one [`FaultIo`] and all files it opened.
#[derive(Debug)]
struct FaultState {
    rng: SplitMix64,
    spec: FaultSpec,
    bytes_written: u64,
    /// A delayed write error armed for the next sync.
    pending_sync_err: bool,
    /// Faults injected so far, by kind, for test assertions.
    injected: InjectedFaults,
}

/// Tally of faults a [`FaultIo`] injected, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Writes failed with `ENOSPC`.
    pub enospc: u64,
    /// Silent short writes.
    pub short_writes: u64,
    /// Torn writes (prefix persisted + error reported).
    pub torn_writes: u64,
    /// Failed `fsync` calls.
    pub sync_failures: u64,
    /// Failed reads.
    pub read_errors: u64,
    /// Write errors delayed to the following sync.
    pub delayed_errors: u64,
}

impl InjectedFaults {
    /// Total faults injected across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.enospc
            + self.short_writes
            + self.torn_writes
            + self.sync_failures
            + self.read_errors
            + self.delayed_errors
    }
}

/// A fault-injecting [`StoreIo`] wrapping an inner implementation.
///
/// All files opened through one `FaultIo` share one seeded fault stream,
/// so a run's fault schedule is a pure function of the seed and the
/// operation sequence.
#[derive(Debug, Clone)]
pub struct FaultIo<I> {
    inner: Arc<I>,
    state: Arc<TrackedMutex<FaultState>>,
}

impl<I: StoreIo> FaultIo<I> {
    /// Wraps `inner` with the fault schedule of `spec`.
    #[must_use]
    pub fn new(inner: I, spec: FaultSpec) -> FaultIo<I> {
        FaultIo {
            inner: Arc::new(inner),
            state: Arc::new(TrackedMutex::new(
                "FaultIo.state",
                FaultState {
                    rng: SplitMix64::new(spec.seed),
                    spec,
                    bytes_written: 0,
                    pending_sync_err: false,
                    injected: InjectedFaults::default(),
                },
            )),
        }
    }

    /// Faults injected so far.
    #[must_use]
    pub fn injected(&self) -> InjectedFaults {
        self.state.lock().injected
    }
}

fn enospc() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC")
}

fn eio(what: &str) -> io::Error {
    io::Error::other(format!("injected i/o error: {what}"))
}

/// A file opened through a [`FaultIo`].
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn StoreFile>,
    state: Arc<TrackedMutex<FaultState>>,
}

impl StoreFile for FaultFile {
    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        {
            let mut st = self.state.lock();
            let prob = st.spec.read_err_prob;
            if st.rng.chance(prob) {
                st.injected.read_errors += 1;
                return Err(eio("read"));
            }
        }
        self.inner.read_at(off, buf)
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> io::Result<usize> {
        enum Plan {
            Enospc,
            Short(usize),
            Torn(usize),
            Delayed,
            Clean,
        }
        let plan = {
            let mut st = self.state.lock();
            if let Some(cap) = st.spec.enospc_after_bytes {
                if st.bytes_written + data.len() as u64 > cap {
                    st.injected.enospc += 1;
                    Plan::Enospc
                } else {
                    st.bytes_written += data.len() as u64;
                    Plan::Clean
                }
            } else {
                st.bytes_written += data.len() as u64;
                Plan::Clean
            }
        };
        let plan = match plan {
            Plan::Clean => {
                let mut st = self.state.lock();
                if data.len() > 1 && {
                    let p = st.spec.short_write_prob;
                    st.rng.chance(p)
                } {
                    st.injected.short_writes += 1;
                    let cut = 1 + (st.rng.next_u64() as usize) % (data.len() - 1);
                    Plan::Short(cut)
                } else if data.len() > 1 && {
                    let p = st.spec.torn_write_prob;
                    st.rng.chance(p)
                } {
                    st.injected.torn_writes += 1;
                    let cut = 1 + (st.rng.next_u64() as usize) % (data.len() - 1);
                    Plan::Torn(cut)
                } else if {
                    let p = st.spec.delayed_write_err_prob;
                    st.rng.chance(p)
                } {
                    st.injected.delayed_errors += 1;
                    st.pending_sync_err = true;
                    Plan::Delayed
                } else {
                    Plan::Clean
                }
            }
            other => other,
        };
        match plan {
            Plan::Enospc => Err(enospc()),
            Plan::Short(cut) => self.inner.write_at(off, &data[..cut]),
            Plan::Torn(cut) => {
                let _ = self.inner.write_at(off, &data[..cut]);
                Err(eio("torn write"))
            }
            // A delayed error still persists the data (writeback cached);
            // the failure surfaces at the next sync.
            Plan::Delayed | Plan::Clean => self.inner.write_at(off, data),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        {
            let mut st = self.state.lock();
            if st.pending_sync_err {
                st.pending_sync_err = false;
                return Err(eio("delayed write error reported at fsync"));
            }
            let prob = st.spec.sync_fail_prob;
            if st.rng.chance(prob) {
                st.injected.sync_failures += 1;
                return Err(eio("fsync"));
            }
        }
        self.inner.sync()
    }
}

impl<I: StoreIo + 'static> StoreIo for FaultIo<I> {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn StoreFile>> {
        let inner = self.inner.open(path)?;
        Ok(Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        {
            let mut st = self.state.lock();
            let prob = st.spec.read_err_prob;
            if st.rng.chance(prob) {
                st.injected.read_errors += 1;
                return Err(eio("read"));
            }
        }
        self.inner.read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        {
            let mut st = self.state.lock();
            if let Some(cap) = st.spec.enospc_after_bytes {
                if st.bytes_written + data.len() as u64 > cap {
                    st.injected.enospc += 1;
                    return Err(enospc());
                }
            }
            st.bytes_written += data.len() as u64;
            let prob = st.spec.sync_fail_prob;
            if st.rng.chance(prob) {
                st.injected.sync_failures += 1;
                return Err(eio("fsync during atomic replace"));
            }
        }
        self.inner.write_atomic(path, data)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leopard-store-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn fs_io_round_trips() {
        let dir = tmp_dir("fs");
        let io = FsIo;
        let path = dir.join("a.seg");
        let mut f = io.open(&path).expect("open");
        assert_eq!(f.write_at(0, b"hello").expect("write"), 5);
        assert_eq!(f.write_at(5, b" world").expect("write"), 6);
        f.sync().expect("sync");
        let mut buf = [0u8; 11];
        assert_eq!(f.read_at(0, &mut buf).expect("read"), 11);
        assert_eq!(&buf, b"hello world");
        assert_eq!(f.len().expect("len"), 11);
        io.write_atomic(&dir.join("m.json"), b"{}").expect("atomic");
        assert_eq!(io.read(&dir.join("m.json")).expect("read"), b"{}");
        assert_eq!(io.list(&dir).expect("list").len(), 2);
        io.remove(&path).expect("remove");
        io.remove(&path).expect("idempotent remove");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_fires_at_the_byte_cap() {
        let dir = tmp_dir("enospc");
        let io = FaultIo::new(
            FsIo,
            FaultSpec {
                enospc_after_bytes: Some(8),
                ..FaultSpec::default()
            },
        );
        let mut f = io.open(&dir.join("a.seg")).expect("open");
        assert_eq!(f.write_at(0, b"12345678").expect("fits"), 8);
        let err = f.write_at(8, b"9").expect_err("over cap");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(io.injected().enospc, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_are_seed_deterministic() {
        let spec = FaultSpec {
            seed: 0xfeed,
            short_write_prob: 0.3,
            torn_write_prob: 0.2,
            sync_fail_prob: 0.2,
            read_err_prob: 0.1,
            ..FaultSpec::default()
        };
        let run = || {
            let dir = tmp_dir("det");
            let io = FaultIo::new(FsIo, spec);
            let mut f = io.open(&dir.join("a.seg")).expect("open");
            let mut log = Vec::new();
            for i in 0..200u64 {
                log.push(f.write_at(i * 8, b"01234567").map_err(|e| e.to_string()));
                if i % 10 == 0 {
                    log.push(f.sync().map(|()| 8).map_err(|e| e.to_string()));
                }
            }
            let _ = fs::remove_dir_all(&dir);
            (log, io.injected())
        };
        let (log_a, inj_a) = run();
        let (log_b, inj_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(inj_a, inj_b);
        assert!(inj_a.total() > 0, "spec should have injected something");
    }

    #[test]
    fn delayed_error_surfaces_on_next_sync() {
        let dir = tmp_dir("delayed");
        let io = FaultIo::new(
            FsIo,
            FaultSpec {
                seed: 1,
                delayed_write_err_prob: 1.0,
                ..FaultSpec::default()
            },
        );
        let mut f = io.open(&dir.join("a.seg")).expect("open");
        assert_eq!(f.write_at(0, b"abc").expect("write reports success"), 3);
        assert!(f.sync().is_err(), "the armed error fires at fsync");
        let _ = fs::remove_dir_all(&dir);
    }
}
