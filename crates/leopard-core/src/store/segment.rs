//! Append-organized segment files holding spilled records.
//!
//! A segment is a versioned header page followed by record pages
//! ([`crate::store::page`]). Records append only; a record faulted back
//! into memory leaves its pages behind as garbage (space is reclaimed
//! only by dropping whole segments, which keeps the write path a pure
//! append and crash recovery a suffix scan). When the active segment
//! reaches [`SEGMENT_PAGES`] pages the writer rolls to a new file.
//!
//! Crash recovery: on open, the writer scans the tail of the newest
//! segment and truncates after the last page that decodes cleanly — a
//! kill -9 mid-flush leaves at worst a torn tail, never a segment the
//! reader misparses. Earlier pages are protected by their CRCs and
//! validated on every read.

use super::io::{StoreFile, StoreIo};
use super::page::{chunk_payload, crc32, decode_page, encode_page, PageHeader, PAGE_SIZE};
use super::{StoreError, StoreResult};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Pages per segment file (header page included): 16 MiB segments.
pub const SEGMENT_PAGES: u32 = 4096;

/// Magic bytes opening a segment header page (`LPsg`).
pub const SEGMENT_MAGIC: u32 = 0x4c50_7367;

/// Segment format version; bumped on incompatible change.
pub const SEGMENT_VERSION: u32 = 1;

/// Durable address of one spilled record: which segment, which page
/// range, and the record sequence number stamped into each page header
/// (belt-and-braces check that the address and the data agree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordAddr {
    /// Segment file id (`seg-<id>.lps`).
    pub segment: u32,
    /// First page of the record (page 0 is the segment header).
    pub page: u32,
    /// Number of pages the record spans.
    pub parts: u32,
    /// Record sequence number stamped into each page.
    pub seq: u64,
}

fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:08}.lps"))
}

/// Parses `seg-XXXXXXXX.lps` back to the id.
fn segment_id(path: &Path) -> Option<u32> {
    let name = path.file_name()?.to_str()?;
    let id = name.strip_prefix("seg-")?.strip_suffix(".lps")?;
    id.parse().ok()
}

/// Encodes the segment header page.
fn encode_segment_header(id: u32) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    page[0..4].copy_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    page[4..8].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    page[8..12].copy_from_slice(&id.to_le_bytes());
    let crc = crc32(&page[0..12]);
    page[12..16].copy_from_slice(&crc.to_le_bytes());
    page
}

/// Validates a segment header page against the expected id.
fn check_segment_header(page: &[u8], id: u32) -> StoreResult<()> {
    if page.len() < PAGE_SIZE {
        return Err(StoreError::corrupt(format!(
            "segment {id}: truncated header ({} bytes)",
            page.len()
        )));
    }
    let word = |at: usize| u32::from_le_bytes([page[at], page[at + 1], page[at + 2], page[at + 3]]);
    if word(0) != SEGMENT_MAGIC {
        return Err(StoreError::corrupt(format!("segment {id}: bad magic")));
    }
    if word(4) != SEGMENT_VERSION {
        return Err(StoreError::corrupt(format!(
            "segment {id}: unsupported version {}",
            word(4)
        )));
    }
    if word(8) != id {
        return Err(StoreError::corrupt(format!(
            "segment {id}: header claims id {}",
            word(8)
        )));
    }
    if word(12) != crc32(&page[0..12]) {
        return Err(StoreError::corrupt(format!(
            "segment {id}: header crc mismatch"
        )));
    }
    Ok(())
}

/// The append cursor over a directory of segment files.
///
/// Not internally synchronized: the owning [`super::tier::SpillTier`]
/// serializes access behind its own lock.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    /// Active (newest) segment file.
    active: Box<dyn StoreFile>,
    active_id: u32,
    /// Next page to append within the active segment.
    next_page: u32,
    /// Next record sequence number.
    next_seq: u64,
    /// Total bytes across all segment files (garbage included).
    bytes_on_disk: u64,
}

impl SegmentWriter {
    /// Opens the segment directory, recovering from a torn tail: the
    /// newest segment is scanned and truncated after its last cleanly
    /// decoding page. Returns the writer positioned for the next append.
    pub fn open(io: &dyn StoreIo, dir: &Path) -> StoreResult<SegmentWriter> {
        io.create_dir_all(dir).map_err(StoreError::io)?;
        let mut ids: Vec<u32> = io
            .list(dir)
            .map_err(StoreError::io)?
            .iter()
            .filter_map(|p| segment_id(p))
            .collect();
        ids.sort_unstable();
        let mut bytes_on_disk: u64 = 0;
        for &id in &ids {
            let mut f = io.open(&segment_path(dir, id)).map_err(StoreError::io)?;
            bytes_on_disk += f.len().map_err(StoreError::io)?;
        }
        let (active_id, next_page, next_seq) = match ids.last() {
            None => (0, 0, 1),
            Some(&id) => {
                let mut f = io.open(&segment_path(dir, id)).map_err(StoreError::io)?;
                let (pages, max_seq) = recover_tail(f.as_mut(), id)?;
                let new_len = u64::from(pages) * PAGE_SIZE as u64;
                let old_len = f.len().map_err(StoreError::io)?;
                if old_len != new_len {
                    f.set_len(new_len).map_err(StoreError::io)?;
                    bytes_on_disk = bytes_on_disk - old_len + new_len;
                }
                (id, pages, max_seq + 1)
            }
        };
        let active = io
            .open(&segment_path(dir, active_id))
            .map_err(StoreError::io)?;
        let mut writer = SegmentWriter {
            dir: dir.to_path_buf(),
            active,
            active_id,
            next_page,
            next_seq,
            bytes_on_disk,
        };
        if writer.next_page == 0 {
            writer.write_header(io)?;
        }
        Ok(writer)
    }

    /// Writes the active segment's header page (page 0).
    fn write_header(&mut self, _io: &dyn StoreIo) -> StoreResult<()> {
        let hdr = encode_segment_header(self.active_id);
        write_fully(self.active.as_mut(), 0, &hdr)?;
        self.next_page = 1;
        self.bytes_on_disk += PAGE_SIZE as u64;
        Ok(())
    }

    /// Appends one record payload, returning its durable address. The
    /// payload is chunked into pages, each CRC-stamped. Short writes are
    /// retried at the residual offset; any error leaves the tail torn,
    /// which the next open (or a verified read-back) detects.
    pub fn append(&mut self, io: &dyn StoreIo, payload: &[u8]) -> StoreResult<RecordAddr> {
        let chunks = chunk_payload(payload);
        let parts = u32::try_from(chunks.len())
            .map_err(|_| StoreError::corrupt("record spans more than u32::MAX pages"))?;
        if self.next_page + parts > SEGMENT_PAGES {
            self.roll(io)?;
        }
        let seq = self.next_seq;
        let addr = RecordAddr {
            segment: self.active_id,
            page: self.next_page,
            parts,
            seq,
        };
        for (i, chunk) in chunks.iter().enumerate() {
            let hdr = PageHeader {
                record_seq: seq,
                part: i as u32,
                parts,
                len: chunk.len() as u32,
            };
            let page = encode_page(&hdr, chunk);
            let off = u64::from(self.next_page + i as u32) * PAGE_SIZE as u64;
            write_fully(self.active.as_mut(), off, &page)?;
        }
        self.next_page += parts;
        self.next_seq += 1;
        self.bytes_on_disk += u64::from(parts) * PAGE_SIZE as u64;
        Ok(addr)
    }

    /// Reads the record at `addr`, validating every page CRC, the part
    /// chain and the stamped sequence number.
    pub fn read_record(&mut self, io: &dyn StoreIo, addr: &RecordAddr) -> StoreResult<Vec<u8>> {
        let mut file;
        let f: &mut dyn StoreFile = if addr.segment == self.active_id {
            self.active.as_mut()
        } else {
            file = io
                .open(&segment_path(&self.dir, addr.segment))
                .map_err(StoreError::io)?;
            file.as_mut()
        };
        read_record_from(f, addr)
    }

    /// Durably flushes the active segment.
    pub fn sync(&mut self) -> StoreResult<()> {
        self.active.sync().map_err(StoreError::io)
    }

    /// Total bytes across all segment files (live and garbage pages).
    #[must_use]
    pub fn bytes_on_disk(&self) -> u64 {
        self.bytes_on_disk
    }

    /// Rolls to a fresh segment file.
    fn roll(&mut self, io: &dyn StoreIo) -> StoreResult<()> {
        self.active.sync().map_err(StoreError::io)?;
        self.active_id += 1;
        self.active = io
            .open(&segment_path(&self.dir, self.active_id))
            .map_err(StoreError::io)?;
        self.next_page = 0;
        self.write_header(io)
    }
}

/// Reads one record from an open segment file, validating everything.
fn read_record_from(f: &mut dyn StoreFile, addr: &RecordAddr) -> StoreResult<Vec<u8>> {
    let mut out = Vec::new();
    for i in 0..addr.parts {
        let off = u64::from(addr.page + i) * PAGE_SIZE as u64;
        let page = read_fully(f, off, PAGE_SIZE)?;
        let (hdr, payload) = decode_page(&page).map_err(|e| {
            StoreError::corrupt(format!(
                "segment {} page {}: {e}",
                addr.segment,
                addr.page + i
            ))
        })?;
        if hdr.record_seq != addr.seq || hdr.part != i || hdr.parts != addr.parts {
            return Err(StoreError::corrupt(format!(
                "segment {} page {}: header names record {} part {}/{}, address names record {} part {}/{}",
                addr.segment,
                addr.page + i,
                hdr.record_seq,
                hdr.part,
                hdr.parts,
                addr.seq,
                i,
                addr.parts
            )));
        }
        out.extend_from_slice(payload);
    }
    Ok(out)
}

/// Scans a segment from the front and returns `(pages, max_seq)` where
/// `pages` counts the header page plus every record page up to (not
/// including) the first one that fails to decode — the torn-tail
/// truncation point — and `max_seq` is the highest record sequence seen.
fn recover_tail(f: &mut dyn StoreFile, id: u32) -> StoreResult<(u32, u64)> {
    let len = f.len().map_err(StoreError::io)?;
    if len < PAGE_SIZE as u64 {
        // Not even a whole header page: treat as empty (header rewritten).
        return Ok((0, 0));
    }
    let hdr_page = read_fully(f, 0, PAGE_SIZE)?;
    check_segment_header(&hdr_page, id)?;
    let full_pages = (len / PAGE_SIZE as u64) as u32;
    let mut pages = 1u32;
    let mut max_seq = 0u64;
    while pages < full_pages {
        let off = u64::from(pages) * PAGE_SIZE as u64;
        let page = read_fully(f, off, PAGE_SIZE)?;
        match decode_page(&page) {
            Ok((hdr, _)) => {
                max_seq = max_seq.max(hdr.record_seq);
                pages += 1;
            }
            Err(_) => break, // torn tail starts here
        }
    }
    Ok((pages, max_seq))
}

/// Reads exactly `n` bytes at `off`, looping over short reads. A read
/// that ends early (EOF inside the range) is a truncation error.
fn read_fully(f: &mut dyn StoreFile, off: u64, n: usize) -> StoreResult<Vec<u8>> {
    let mut buf = vec![0u8; n];
    let mut done = 0usize;
    while done < n {
        let got = f
            .read_at(off + done as u64, &mut buf[done..])
            .map_err(StoreError::io)?;
        if got == 0 {
            return Err(StoreError::corrupt(format!(
                "short read: {done} of {n} bytes at offset {off}"
            )));
        }
        done += got;
    }
    Ok(buf)
}

/// Writes all of `data` at `off`, looping over short writes (a short
/// write is not an error at the `StoreFile` layer — `pwrite` semantics —
/// so the loop is what turns "some bytes landed" into "all bytes
/// landed or a real error surfaced").
fn write_fully(f: &mut dyn StoreFile, off: u64, data: &[u8]) -> StoreResult<()> {
    let mut done = 0usize;
    while done < data.len() {
        let put = f
            .write_at(off + done as u64, &data[done..])
            .map_err(StoreError::io)?;
        if put == 0 {
            return Err(StoreError::io(std::io::Error::other(
                "write_at returned 0 bytes",
            )));
        }
        done += put;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::io::FsIo;
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leopard-store-seg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tmp_dir("rt");
        let io = FsIo;
        let mut w = SegmentWriter::open(&io, &dir).expect("open");
        let small = b"just a little record".to_vec();
        let big = vec![0xabu8; PAGE_SIZE * 3 + 100]; // spans 4 pages
        let a1 = w.append(&io, &small).expect("append small");
        let a2 = w.append(&io, &big).expect("append big");
        assert_eq!(w.read_record(&io, &a1).expect("read"), small);
        assert_eq!(w.read_record(&io, &a2).expect("read"), big);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_positions_after_existing_records() {
        let dir = tmp_dir("reopen");
        let io = FsIo;
        let a1;
        {
            let mut w = SegmentWriter::open(&io, &dir).expect("open");
            a1 = w.append(&io, b"first").expect("append");
            w.sync().expect("sync");
        }
        let mut w = SegmentWriter::open(&io, &dir).expect("reopen");
        let a2 = w.append(&io, b"second").expect("append");
        assert!(a2.seq > a1.seq, "sequence resumes past recovered records");
        assert_eq!(w.read_record(&io, &a1).expect("read"), b"first");
        assert_eq!(w.read_record(&io, &a2).expect("read"), b"second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let io = FsIo;
        let a1;
        {
            let mut w = SegmentWriter::open(&io, &dir).expect("open");
            a1 = w.append(&io, b"good record").expect("append");
            w.append(&io, b"doomed record").expect("append");
            w.sync().expect("sync");
        }
        // Tear the last page: overwrite its second half with garbage.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).expect("read segment");
        let torn_from = bytes.len() - PAGE_SIZE / 2;
        for b in &mut bytes[torn_from..] {
            *b = 0xff;
        }
        fs::write(&seg, &bytes).expect("write torn segment");

        let mut w = SegmentWriter::open(&io, &dir).expect("recovering open");
        assert_eq!(
            w.read_record(&io, &a1).expect("survivor intact"),
            b"good record"
        );
        let a3 = w.append(&io, b"after recovery").expect("append");
        assert_eq!(a3.page, a1.page + 1, "writer reuses the truncated tail");
        assert_eq!(w.read_record(&io, &a3).expect("read"), b"after recovery");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rolls_when_full() {
        let dir = tmp_dir("roll");
        let io = FsIo;
        let mut w = SegmentWriter::open(&io, &dir).expect("open");
        // Each record takes one page; fill past one segment.
        let mut last = None;
        for i in 0..u64::from(SEGMENT_PAGES) {
            last = Some(w.append(&io, format!("r{i}").as_bytes()).expect("append"));
        }
        let last = last.expect("appended");
        assert!(last.segment >= 1, "rolled to a second segment");
        assert_eq!(
            w.read_record(&io, &last).expect("read"),
            format!("r{}", u64::from(SEGMENT_PAGES) - 1).as_bytes()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn address_data_mismatch_is_corrupt() {
        let dir = tmp_dir("mismatch");
        let io = FsIo;
        let mut w = SegmentWriter::open(&io, &dir).expect("open");
        let a1 = w.append(&io, b"one").expect("append");
        let _a2 = w.append(&io, b"two").expect("append");
        let wrong = RecordAddr {
            seq: a1.seq + 1,
            ..a1
        };
        assert!(matches!(
            w.read_record(&io, &wrong),
            Err(StoreError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
