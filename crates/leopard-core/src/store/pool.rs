//! Pin/unpin buffer pool over spill-segment pages with clock eviction.
//!
//! The pool caches decoded-and-validated page payloads keyed by
//! `(segment, page)`. Callers [`BufferPool::pin`] a page to get a
//! refcounted handle; while any pin is held the frame is ineligible for
//! eviction. Eviction runs the classic clock: a sweep hand clears
//! reference bits and reclaims the first unpinned frame whose bit was
//! already clear.
//!
//! ## Locking rules (the pin/unpin vs. eviction race)
//!
//! The frame map and the clock hand live behind **one** mutex owned by
//! the enclosing [`super::tier::SpillTier`]. The race every buffer pool
//! must kill — eviction freeing a frame between a reader finding it and
//! bumping its pin — cannot occur here because both the find+bump and
//! the sweep happen under that single lock, and the payload itself is
//! shared out as an `Arc`: even a frame evicted *after* a pin was taken
//! keeps its bytes alive until the last [`PageRef`] drops. What the lock
//! does **not** cover is I/O: a cache miss reads the page with the lock
//! held by the tier. That is a deliberate simplification (one reader,
//! the verifier thread, per tier) and is called out in DESIGN.md §13 —
//! lifting it requires per-frame IO-pending states, which this pool
//! does not need yet.

use crate::fxhash::FxHashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Key of one cached page.
pub type PageKey = (u32, u32);

/// One cached page payload. The pin count rides in the frame so a
/// [`PageRef`] can unpin without re-entering the pool lock.
#[derive(Debug)]
struct Frame {
    payload: Arc<Vec<u8>>,
    pins: Arc<AtomicU32>,
    referenced: bool,
}

/// A pinned page: the decoded payload plus the pin it holds. Dropping
/// the reference unpins. Cloning the `Arc` out keeps bytes alive past
/// eviction, so holders never observe a reused frame.
#[derive(Debug)]
pub struct PageRef {
    payload: Arc<Vec<u8>>,
    pins: Arc<AtomicU32>,
}

impl PageRef {
    /// The validated page payload.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        // Release pairs with the Acquire load in the eviction sweep: a
        // sweeper that observes pins == 0 also observes every access the
        // holder made through the payload before unpinning.
        self.pins.fetch_sub(1, Ordering::Release);
    }
}

/// Cache statistics, for gauges and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to read the page from disk.
    pub misses: u64,
    /// Frames reclaimed by the clock sweep.
    pub evictions: u64,
}

/// The page cache. Not internally synchronized — the owning tier holds
/// it behind its `TrackedMutex`; see the module docs for why that is
/// sufficient.
#[derive(Debug)]
pub struct BufferPool {
    frames: FxHashMap<PageKey, Frame>,
    /// Clock order: insertion-ordered keys; the hand sweeps this ring.
    ring: Vec<PageKey>,
    hand: usize,
    capacity: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            frames: FxHashMap::default(),
            ring: Vec::new(),
            hand: 0,
            capacity: capacity.max(1),
            stats: PoolStats::default(),
        }
    }

    /// Pins `key` if cached, bumping its reference bit.
    pub fn pin(&mut self, key: PageKey) -> Option<PageRef> {
        let frame = self.frames.get_mut(&key)?;
        frame.referenced = true;
        // lint: allow(L102): the count is a pure refcount whose
        // publication is ordered by the pool mutex; relaxed is correct.
        frame.pins.fetch_add(1, Ordering::Relaxed);
        self.stats.hits += 1;
        Some(PageRef {
            payload: Arc::clone(&frame.payload),
            pins: Arc::clone(&frame.pins),
        })
    }

    /// Inserts a freshly read page and pins it. Evicts if at capacity;
    /// when every frame is pinned the pool temporarily exceeds capacity
    /// rather than fail (documented overflow, counted by the caller via
    /// [`BufferPool::len`]).
    pub fn insert_pinned(&mut self, key: PageKey, payload: Vec<u8>) -> PageRef {
        self.stats.misses += 1;
        while self.frames.len() >= self.capacity {
            if !self.evict_one() {
                break; // every frame pinned: overflow rather than deadlock
            }
        }
        let pins = Arc::new(AtomicU32::new(1));
        let payload = Arc::new(payload);
        let frame = Frame {
            payload: Arc::clone(&payload),
            pins: Arc::clone(&pins),
            referenced: true,
        };
        if self.frames.insert(key, frame).is_none() {
            self.ring.push(key);
        }
        PageRef { payload, pins }
    }

    /// Drops every cached page for `segment` (the segment's records were
    /// all faulted back in or superseded).
    pub fn invalidate_segment(&mut self, segment: u32) {
        self.ring.retain(|k| k.0 != segment);
        self.frames.retain(|k, _| k.0 != segment);
        self.hand = 0;
    }

    /// Drops one specific page if cached and unpinned.
    pub fn invalidate(&mut self, key: PageKey) {
        if let Some(f) = self.frames.get(&key) {
            if f.pins.load(Ordering::Acquire) == 0 {
                self.frames.remove(&key);
                self.ring.retain(|k| *k != key);
                self.hand = 0;
            }
        }
    }

    /// Runs the clock until one unpinned frame is reclaimed. Returns
    /// `false` when every frame is pinned.
    fn evict_one(&mut self) -> bool {
        if self.ring.is_empty() {
            return false;
        }
        // Two full sweeps suffice: the first clears reference bits, the
        // second reclaims the first unpinned frame. A third pass only
        // finds pinned frames again.
        for _ in 0..self.ring.len() * 2 {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand];
            let evict = match self.frames.get_mut(&key) {
                None => {
                    // Stale ring entry (invalidated): drop it in place.
                    self.ring.swap_remove(self.hand);
                    continue;
                }
                Some(f) => {
                    // Acquire pairs with the Release unpin in PageRef::drop.
                    if f.pins.load(Ordering::Acquire) > 0 {
                        self.hand += 1;
                        continue;
                    }
                    if f.referenced {
                        f.referenced = false;
                        self.hand += 1;
                        continue;
                    }
                    true
                }
            };
            if evict {
                self.frames.remove(&key);
                self.ring.swap_remove(self.hand);
                self.stats.evictions += 1;
                return true;
            }
        }
        false
    }

    /// Cached page count (may transiently exceed capacity when every
    /// frame is pinned).
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Configured capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache statistics so far.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: u8) -> Vec<u8> {
        vec![tag; 16]
    }

    #[test]
    fn hit_after_insert() {
        let mut pool = BufferPool::new(4);
        let r = pool.insert_pinned((0, 1), payload(1));
        assert_eq!(r.payload(), &payload(1)[..]);
        drop(r);
        let r = pool.pin((0, 1)).expect("cached");
        assert_eq!(r.payload(), &payload(1)[..]);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn clock_evicts_unpinned_cold_frames() {
        let mut pool = BufferPool::new(2);
        drop(pool.insert_pinned((0, 1), payload(1)));
        drop(pool.insert_pinned((0, 2), payload(2)));
        drop(pool.insert_pinned((0, 3), payload(3))); // forces one eviction
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let mut pool = BufferPool::new(2);
        let hold = pool.insert_pinned((0, 1), payload(1));
        drop(pool.insert_pinned((0, 2), payload(2)));
        drop(pool.insert_pinned((0, 3), payload(3)));
        drop(pool.insert_pinned((0, 4), payload(4)));
        // (0,1) is pinned and must still be resident.
        assert!(pool.pin((0, 1)).is_some(), "pinned frame evicted");
        assert_eq!(hold.payload(), &payload(1)[..]);
    }

    #[test]
    fn all_pinned_overflows_instead_of_deadlocking() {
        let mut pool = BufferPool::new(2);
        let _a = pool.insert_pinned((0, 1), payload(1));
        let _b = pool.insert_pinned((0, 2), payload(2));
        let _c = pool.insert_pinned((0, 3), payload(3));
        assert_eq!(pool.len(), 3, "overflow while all frames pinned");
    }

    #[test]
    fn evicted_frame_bytes_outlive_eviction() {
        let mut pool = BufferPool::new(1);
        let held = pool.insert_pinned((0, 1), payload(9));
        // Force the frame out from under the holder (pin prevents that,
        // so unpin a clone path: drop our pin but keep the Arc alive).
        let bytes = Arc::clone(&held.payload);
        drop(held);
        drop(pool.insert_pinned((0, 2), payload(2)));
        assert_eq!(&bytes[..], &payload(9)[..], "payload survived eviction");
    }

    #[test]
    fn invalidate_segment_drops_only_that_segment() {
        let mut pool = BufferPool::new(8);
        drop(pool.insert_pinned((0, 1), payload(1)));
        drop(pool.insert_pinned((1, 1), payload(2)));
        pool.invalidate_segment(0);
        assert!(pool.pin((0, 1)).is_none());
        assert!(pool.pin((1, 1)).is_some());
    }
}
