//! The spill tier: cold record chains paged out behind the buffer pool.
//!
//! [`SpillTier`] maps a [`Key`] to the durable [`RecordAddr`] of its
//! serialized version chain. Writes go through [`SegmentWriter`] with a
//! **verified write**: after appending, the record is read back through
//! the CRC-validating path, so a torn or silently-short write is caught
//! while the in-memory copy still exists and can be kept (counted
//! fallback) instead of surfacing later as a wrong verdict. Reads fault
//! whole records back in through the pin/unpin [`super::pool::BufferPool`].
//!
//! Error discipline (the tentpole contract):
//! * **write path** — transient errors retry under the tier's
//!   [`RetryPolicy`]; persistent failure returns the error and the
//!   caller keeps the record in memory (clean fallback, counted);
//! * **read path** — transient errors retry; CRC/corruption failures
//!   poison the tier ([`StoreError::Poisoned`] thereafter), because a
//!   record that cannot be faulted back in means full-coverage
//!   verification is no longer possible — the caller must surface a
//!   typed fatal error, never guess.
//!
//! The tier is internally synchronized (one `TrackedMutex`), so the
//! `VersionStore` can read spilled records through `&self` accessors.

use super::io::StoreIo;
use super::page::PAGE_SIZE;
use super::pool::BufferPool;
use super::segment::{RecordAddr, SegmentWriter};
use super::{RetryPolicy, SpillSettings, StoreError, StoreResult};
use crate::budget::MemUsage;
use crate::fxhash::FxHashMap;
use crate::lockwitness::TrackedMutex;
use crate::obs;
use crate::types::Key;
use crate::verify::KeyVersions;

/// Spill-tier activity counters, for gauges, `--json` and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Records written out to segments.
    pub records_out: u64,
    /// Records faulted back into memory.
    pub records_in: u64,
    /// Transient I/O retries performed.
    pub retries: u64,
    /// Writes abandoned to the in-memory fallback after retries.
    pub fallbacks: u64,
    /// Bytes across all segment files.
    pub bytes_on_disk: u64,
    /// Page-cache hits.
    pub cache_hits: u64,
    /// Page-cache misses.
    pub cache_misses: u64,
}

#[derive(Debug)]
struct TierInner {
    io: Box<dyn StoreIo>,
    writer: SegmentWriter,
    pool: BufferPool,
    index: FxHashMap<Key, RecordAddr>,
    retry: RetryPolicy,
    stats: SpillStats,
    /// Set on the first unrecoverable read-path failure; every later
    /// operation fails fast with [`StoreError::Poisoned`].
    poison: Option<String>,
}

/// A disk-backed store of spilled version chains. See the module docs.
#[derive(Debug)]
pub struct SpillTier {
    inner: TrackedMutex<TierInner>,
}

impl SpillTier {
    /// Opens (or re-opens, recovering a torn tail) the tier at
    /// `settings.dir` over the real filesystem — wrapped in a
    /// [`super::io::FaultIo`] injector when `settings.fault` enables any
    /// fault (chaos runs, CI fault matrix).
    pub fn open(settings: &SpillSettings) -> StoreResult<SpillTier> {
        if settings.fault.is_noop() {
            SpillTier::open_with(settings, Box::new(super::io::FsIo))
        } else {
            SpillTier::open_with(
                settings,
                Box::new(super::io::FaultIo::new(super::io::FsIo, settings.fault)),
            )
        }
    }

    /// Opens the tier over an injected [`StoreIo`] implementation.
    pub fn open_with(settings: &SpillSettings, io: Box<dyn StoreIo>) -> StoreResult<SpillTier> {
        let writer = SegmentWriter::open(io.as_ref(), &settings.dir)?;
        Ok(SpillTier {
            inner: TrackedMutex::new(
                "SpillTier.inner",
                TierInner {
                    writer,
                    pool: BufferPool::new(settings.cache_pages),
                    index: FxHashMap::default(),
                    retry: settings.retry,
                    stats: SpillStats::default(),
                    poison: None,
                    io,
                },
            ),
        })
    }

    /// Spills one record chain. On success the tier owns the only
    /// durable copy and the caller may drop the in-memory one. On error
    /// the caller **must** keep the record in memory (the error is the
    /// fallback signal; it is already counted in
    /// [`SpillStats::fallbacks`]).
    pub fn put(&self, record: &KeyVersions) -> StoreResult<RecordAddr> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(p) = &inner.poison {
            return Err(StoreError::Poisoned(p.clone()));
        }
        let payload = serde_json::to_string(record)
            .map_err(|e| StoreError::corrupt(format!("record serialization failed: {e}")))?
            .into_bytes();
        let retry = inner.retry;
        let io = inner.io.as_ref();
        let writer = &mut inner.writer;
        let stats = &mut inner.stats;
        let result = retry.run(
            |_| {
                stats.retries += 1;
                obs::ctr(obs::Counter::SpillRetries, 1);
            },
            || {
                // lint: allow(L101): name-union call resolution conflates
                // this with unrelated `append`/`run` functions elsewhere;
                // SegmentWriter and RetryPolicy hold no lock of their own.
                let addr = writer.append(io, &payload)?;
                // Verified write: read back through the CRC path so a torn
                // or silently-short append is caught here, while the
                // in-memory copy still exists, not at fault-in time.
                let back = writer.read_record(io, &addr)?;
                if back != payload {
                    return Err(StoreError::corrupt(format!(
                        "read-back mismatch for record at segment {} page {}",
                        addr.segment, addr.page
                    )));
                }
                Ok(addr)
            },
        );
        match result {
            Ok(addr) => {
                inner.index.insert(record.key, addr);
                inner.stats.records_out += 1;
                inner.stats.bytes_on_disk = inner.writer.bytes_on_disk();
                obs::ctr(obs::Counter::SpillRecordsOut, 1);
                obs::gauge_set(obs::Gauge::SpillBytes, inner.stats.bytes_on_disk);
                Ok(addr)
            }
            Err(e) => {
                // Write-path failure is never fatal: the caller keeps the
                // record in memory. A corrupt *read-back* of a fresh write
                // is treated the same way — the disk copy is abandoned,
                // the memory copy is authoritative.
                inner.stats.fallbacks += 1;
                obs::ctr(obs::Counter::SpillFallbacks, 1);
                Err(e)
            }
        }
    }

    /// Faults the record for `key` back in, removing it from the tier's
    /// index (the in-memory copy becomes authoritative again; the disk
    /// pages become garbage). Returns `Ok(None)` when `key` is not
    /// spilled.
    pub fn take(&self, key: Key) -> StoreResult<Option<KeyVersions>> {
        let record = self.read_inner(key, true)?;
        if record.is_some() {
            obs::ctr(obs::Counter::SpillRecordsIn, 1);
        }
        Ok(record)
    }

    /// Reads the record for `key` without removing it (checkpoint and
    /// snapshot paths).
    pub fn get(&self, key: Key) -> StoreResult<Option<KeyVersions>> {
        self.read_inner(key, false)
    }

    fn read_inner(&self, key: Key, remove: bool) -> StoreResult<Option<KeyVersions>> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(p) = &inner.poison {
            return Err(StoreError::Poisoned(p.clone()));
        }
        let Some(addr) = inner.index.get(&key).copied() else {
            return Ok(None);
        };
        let retry = inner.retry;
        let io = inner.io.as_ref();
        let writer = &mut inner.writer;
        let pool = &mut inner.pool;
        let stats = &mut inner.stats;
        let result = retry.run(
            |_| {
                stats.retries += 1;
                obs::ctr(obs::Counter::SpillRetries, 1);
            },
            || read_via_pool(io, writer, pool, &addr),
        );
        let payload = match result {
            Ok(p) => p,
            Err(e) => {
                // Unrecoverable read failure: full coverage is gone — a
                // spilled record cannot be reconstructed. Poison so every
                // caller sees a typed error instead of a partial store.
                let msg = format!("record for {key:?} unreadable: {e}");
                inner.poison = Some(msg.clone());
                obs::ctr(obs::Counter::SpillIoErrors, 1);
                return Err(e);
            }
        };
        let text = std::str::from_utf8(&payload).map_err(|e| {
            let msg = format!("record for {key:?} is not utf-8: {e}");
            inner.poison = Some(msg.clone());
            obs::ctr(obs::Counter::SpillIoErrors, 1);
            StoreError::corrupt(msg)
        })?;
        let record: KeyVersions = match serde_json::from_str(text) {
            Ok(r) => r,
            Err(e) => {
                let msg = format!("record for {key:?} failed to parse: {e}");
                inner.poison = Some(msg.clone());
                obs::ctr(obs::Counter::SpillIoErrors, 1);
                return Err(StoreError::corrupt(msg));
            }
        };
        if record.key != key {
            let msg = format!("index points {key:?} at a record for {:?}", record.key);
            inner.poison = Some(msg.clone());
            obs::ctr(obs::Counter::SpillIoErrors, 1);
            return Err(StoreError::corrupt(msg));
        }
        // lint: allow(L101): name-union conflates PagePool::stats with
        // SpillTier::stats; the pool is plain data owned by this guard.
        let hits_misses = inner.pool.stats();
        inner.stats.cache_hits = hits_misses.hits;
        inner.stats.cache_misses = hits_misses.misses;
        if remove {
            inner.index.remove(&key);
            inner.stats.records_in += 1;
            for i in 0..addr.parts {
                inner.pool.invalidate((addr.segment, addr.page + i));
            }
        }
        Ok(Some(record))
    }

    /// `true` when `key` is currently spilled.
    #[must_use]
    pub fn contains(&self, key: Key) -> bool {
        self.inner.lock().index.contains_key(&key)
    }

    /// Number of spilled records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// `true` when nothing is spilled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().index.is_empty()
    }

    /// The index as sorted plain data, for the incremental checkpoint.
    #[must_use]
    pub fn index_snapshot(&self) -> Vec<(Key, RecordAddr)> {
        let inner = self.inner.lock();
        let mut out: Vec<(Key, RecordAddr)> = inner.index.iter().map(|(&k, &a)| (k, a)).collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Adopts a checkpointed index (resume path). Existing entries are
    /// replaced wholesale.
    pub fn adopt_index(&self, entries: &[(Key, RecordAddr)]) {
        let mut inner = self.inner.lock();
        inner.index = entries.iter().copied().collect();
    }

    /// Durably flushes the active segment, with retries. Called before
    /// a checkpoint is written so the image never references unsynced
    /// pages.
    pub fn sync(&self) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(p) = &inner.poison {
            return Err(StoreError::Poisoned(p.clone()));
        }
        let retry = inner.retry;
        let writer = &mut inner.writer;
        let stats = &mut inner.stats;
        retry.run(
            |_| {
                stats.retries += 1;
                obs::ctr(obs::Counter::SpillRetries, 1);
            },
            // lint: allow(L101): name-union conflates SegmentWriter::sync
            // with SpillTier::sync itself; the writer holds no lock.
            || writer.sync(),
        )
    }

    /// The poison message, if the tier has failed unrecoverably.
    #[must_use]
    pub fn poisoned(&self) -> Option<String> {
        self.inner.lock().poison.clone()
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> SpillStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        // lint: allow(L101): name-union conflates PagePool::stats with
        // this very function; the pool is plain data owned by the guard.
        let pool = inner.pool.stats();
        stats.cache_hits = pool.hits;
        stats.cache_misses = pool.misses;
        stats.bytes_on_disk = inner.writer.bytes_on_disk();
        stats
    }

    /// The tier's own memory footprint: cached pages plus index slots.
    /// (The spilled record *contents* are exactly what the tier removed
    /// from memory, so they are not counted.)
    #[must_use]
    pub fn mem_usage(&self) -> MemUsage {
        let inner = self.inner.lock();
        let pool_bytes = inner.pool.len() * PAGE_SIZE;
        let index_bytes = inner.index.len() * (std::mem::size_of::<(Key, RecordAddr)>() + 16);
        MemUsage {
            bytes: (pool_bytes + index_bytes) as u64,
            entries: 0,
        }
    }
}

/// Reads a record part-by-part through the buffer pool.
fn read_via_pool(
    io: &dyn StoreIo,
    writer: &mut SegmentWriter,
    pool: &mut BufferPool,
    addr: &RecordAddr,
) -> StoreResult<Vec<u8>> {
    // Fast path: whole-record read bypassing per-page caching when the
    // record is a single page and cached.
    let mut out = Vec::new();
    for i in 0..addr.parts {
        let key = (addr.segment, addr.page + i);
        if let Some(page) = pool.pin(key) {
            out.extend_from_slice(page.payload());
            continue;
        }
        // Miss: read *this* page's record slice through the writer (which
        // validates CRC + addressing), then cache the page payload.
        let one = RecordAddr {
            segment: addr.segment,
            page: addr.page + i,
            parts: 1,
            seq: addr.seq,
        };
        // read_record validates part/parts stamped in the page header
        // against the address; for a mid-record page those differ, so we
        // read the raw page via a single-part address only when the
        // record is single-part. Multi-part records read in one shot.
        if addr.parts == 1 {
            let payload = writer.read_record(io, &one)?;
            let pinned = pool.insert_pinned(key, payload);
            out.extend_from_slice(pinned.payload());
        } else {
            return writer.read_record(io, addr);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::io::{FaultIo, FaultSpec, FsIo};
    use super::*;
    use crate::interval::Interval;
    use crate::types::{Timestamp, TxnId, Value};
    use crate::verify::VersionEntry;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leopard-store-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(key: u64, versions: usize) -> KeyVersions {
        let entries = (0..versions)
            .map(|i| VersionEntry {
                uid: crate::verify::VersionUid(i as u64 + 1),
                value: Value(i as u64),
                txn: TxnId(i as u64 + 1),
                install: Interval::new(Timestamp(i as u64 * 10), Timestamp(i as u64 * 10 + 1)),
                visibility: Some(Interval::new(
                    Timestamp(i as u64 * 10 + 2),
                    Timestamp(i as u64 * 10 + 3),
                )),
                writer_snapshot: Interval::new(Timestamp(0), Timestamp(1)),
                readers: Vec::new(),
            })
            .collect();
        KeyVersions {
            key: Key(key),
            entries,
        }
    }

    fn settings(dir: &PathBuf) -> SpillSettings {
        SpillSettings {
            dir: dir.clone(),
            cache_pages: 8,
            retry: RetryPolicy::none(),
            fault: super::super::io::FaultSpec::default(),
        }
    }

    #[test]
    fn put_take_round_trip() {
        let dir = tmp_dir("rt");
        let tier = SpillTier::open(&settings(&dir)).expect("open");
        let rec = record(7, 5);
        tier.put(&rec).expect("put");
        assert!(tier.contains(Key(7)));
        assert_eq!(tier.len(), 1);
        let back = tier.take(Key(7)).expect("take").expect("present");
        assert_eq!(back, rec);
        assert!(!tier.contains(Key(7)), "take removes from index");
        assert_eq!(tier.take(Key(7)).expect("ok"), None);
        let stats = tier.stats();
        assert_eq!(stats.records_out, 1);
        assert_eq!(stats.records_in, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_does_not_remove() {
        let dir = tmp_dir("get");
        let tier = SpillTier::open(&settings(&dir)).expect("open");
        let rec = record(3, 2);
        tier.put(&rec).expect("put");
        assert_eq!(tier.get(Key(3)).expect("get").expect("present"), rec);
        assert!(tier.contains(Key(3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_put_falls_back_cleanly() {
        let dir = tmp_dir("enospc");
        let io = FaultIo::new(
            FsIo,
            FaultSpec {
                enospc_after_bytes: Some(PAGE_SIZE as u64 * 2), // header + 1 page
                ..FaultSpec::default()
            },
        );
        let tier = SpillTier::open_with(&settings(&dir), Box::new(io)).expect("open");
        tier.put(&record(1, 1)).expect("first put fits");
        let err = tier.put(&record(2, 1)).expect_err("second put hits ENOSPC");
        assert!(matches!(err, StoreError::Io(_)), "typed i/o error: {err}");
        // The tier is NOT poisoned by a write failure: reads still work
        // and the caller keeps record 2 in memory.
        assert!(tier.poisoned().is_none());
        assert_eq!(
            tier.take(Key(1)).expect("take").expect("present"),
            record(1, 1)
        );
        assert_eq!(tier.stats().fallbacks, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_caught_by_read_back() {
        let dir = tmp_dir("torn");
        // Lay the segment down cleanly first so reopening under the
        // always-torn spec does not fail at the header write.
        SpillTier::open(&settings(&dir))
            .expect("clean open")
            .put(&record(0, 1))
            .expect("clean put");
        let io = FaultIo::new(
            FsIo,
            FaultSpec {
                seed: 3,
                torn_write_prob: 1.0,
                ..FaultSpec::default()
            },
        );
        let tier = SpillTier::open_with(&settings(&dir), Box::new(io)).expect("open");
        let err = tier
            .put(&record(1, 1))
            .expect_err("torn write must not succeed");
        assert!(
            matches!(err, StoreError::Io(_) | StoreError::Corrupt(_)),
            "typed error: {err}"
        );
        assert!(tier.poisoned().is_none(), "write failures never poison");
        assert_eq!(tier.stats().fallbacks, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_fault_retries_to_success() {
        let dir = tmp_dir("retry");
        // Short writes are repaired by the write_fully loop; a seed with
        // bounded fault probability plus retries must converge.
        let io = FaultIo::new(
            FsIo,
            FaultSpec {
                seed: 11,
                short_write_prob: 0.5,
                ..FaultSpec::default()
            },
        );
        let mut s = settings(&dir);
        s.retry = RetryPolicy {
            max_attempts: 6,
            base: std::time::Duration::ZERO,
            cap: std::time::Duration::ZERO,
            seed: 1,
        };
        let tier = SpillTier::open_with(&s, Box::new(io)).expect("open");
        for k in 0..20u64 {
            tier.put(&record(k, 3))
                .expect("retries absorb short writes");
        }
        for k in 0..20u64 {
            assert_eq!(
                tier.take(Key(k)).expect("take").expect("present"),
                record(k, 3)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_page_poisons_reads() {
        let dir = tmp_dir("poison");
        let tier = SpillTier::open(&settings(&dir)).expect("open");
        tier.put(&record(5, 1)).expect("put");
        tier.sync().expect("sync");
        // Corrupt the record's page on disk behind the tier's back.
        let seg = dir.join("seg-00000000.lps");
        let mut bytes = std::fs::read(&seg).expect("read");
        let off = PAGE_SIZE + 100; // inside the first record page
        bytes[off] ^= 0xff;
        std::fs::write(&seg, &bytes).expect("write");
        let err = tier.take(Key(5)).expect_err("corruption must surface");
        assert!(matches!(err, StoreError::Corrupt(_)), "typed: {err}");
        assert!(
            tier.poisoned().is_some(),
            "read corruption poisons the tier"
        );
        // Every later operation fails fast with the poison.
        assert!(matches!(
            tier.put(&record(6, 1)),
            Err(StoreError::Poisoned(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_snapshot_round_trips_through_adopt() {
        let dir = tmp_dir("index");
        let tier = SpillTier::open(&settings(&dir)).expect("open");
        for k in [9u64, 2, 5] {
            tier.put(&record(k, 2)).expect("put");
        }
        tier.sync().expect("sync");
        let snap = tier.index_snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
        drop(tier);
        // Re-open (as resume would) and adopt the index.
        let tier = SpillTier::open(&settings(&dir)).expect("re-open");
        assert_eq!(tier.len(), 0);
        tier.adopt_index(&snap);
        for k in [2u64, 5, 9] {
            assert_eq!(
                tier.take(Key(k)).expect("take").expect("present"),
                record(k, 2)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
