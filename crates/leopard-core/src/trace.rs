//! Interval-based traces (§IV-A of the paper).
//!
//! A trace records one database operation as observed from the client:
//! the timestamps taken immediately before and after the call, the
//! operation kind, and the data it touched. Collecting traces requires no
//! change to application logic and no access to the DBMS — this is what
//! makes Leopard black-box.

use crate::interval::Interval;
use crate::types::{ClientId, Key, TxnId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The payload of a traced operation:
/// `r_t(rs)`, `w_t(ws)`, `c_t` or `a_t` in the paper's notation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// A read with its read set: each element is the (key, value) pair the
    /// operation observed. Range reads produce multi-element read sets.
    Read(Vec<(Key, Value)>),
    /// A locking read (`SELECT ... FOR UPDATE`): observes the latest
    /// committed values and acquires exclusive locks, without installing
    /// versions. Needed to reproduce lock-compatibility bugs such as
    /// §VI-F Bug 3.
    LockedRead(Vec<(Key, Value)>),
    /// A write with its write set: each element is the (key, value) pair
    /// the operation installed (a new version per key).
    Write(Vec<(Key, Value)>),
    /// Transaction commit: installs all versions the transaction created.
    Commit,
    /// Transaction abort: discards all versions the transaction created.
    Abort,
}

impl OpKind {
    /// `true` for `Commit` and `Abort`.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, OpKind::Commit | OpKind::Abort)
    }

    /// The (key, value) set a data operation touched; `None` for the
    /// terminal operations (`Commit`, `Abort`), which carry no data.
    #[must_use]
    pub fn key_values(&self) -> Option<&[(Key, Value)]> {
        match self {
            OpKind::Read(set) | OpKind::LockedRead(set) | OpKind::Write(set) => Some(set),
            OpKind::Commit | OpKind::Abort => None,
        }
    }

    /// Short tag used in diagnostics.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            OpKind::Read(_) => "r",
            OpKind::LockedRead(_) => "rl",
            OpKind::Write(_) => "w",
            OpKind::Commit => "c",
            OpKind::Abort => "a",
        }
    }
}

/// One interval-based trace:
/// `T = {ts_bef, ts_aft, r_t(rs) | w_t(ws) | a_t | c_t}` (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The execution time interval `(ts_bef, ts_aft)` of the operation.
    pub interval: Interval,
    /// The client connection that issued the operation.
    pub client: ClientId,
    /// The transaction the operation belongs to.
    pub txn: TxnId,
    /// What the operation did.
    pub op: OpKind,
}

impl Trace {
    /// Convenience constructor.
    #[must_use]
    pub fn new(interval: Interval, client: ClientId, txn: TxnId, op: OpKind) -> Trace {
        Trace {
            interval,
            client,
            txn,
            op,
        }
    }

    /// `ts_bef`, the sort key of the two-level pipeline (§IV-C).
    #[must_use]
    pub fn ts_bef(&self) -> crate::types::Timestamp {
        self.interval.lo
    }

    /// `ts_aft`.
    #[must_use]
    pub fn ts_aft(&self) -> crate::types::Timestamp {
        self.interval.hi
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{} @{}",
            self.op.tag(),
            self.txn,
            match &self.op {
                OpKind::Read(set) | OpKind::LockedRead(set) | OpKind::Write(set) => {
                    let items: Vec<String> = set.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    format!("({})", items.join(","))
                }
                _ => String::new(),
            },
            self.interval
        )
    }
}

/// Builder producing well-formed trace streams for tests and examples.
///
/// Guarantees per-client monotonically increasing `ts_bef`, which is the
/// precondition of the two-level pipeline's Theorem 1.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    traces: Vec<Trace>,
}

impl TraceBuilder {
    /// New empty builder.
    #[must_use]
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Appends a read trace.
    pub fn read(
        &mut self,
        lo: u64,
        hi: u64,
        client: u32,
        txn: u64,
        set: Vec<(u64, u64)>,
    ) -> &mut Self {
        self.push(lo, hi, client, txn, OpKind::Read(tuple_set(set)))
    }

    /// Appends a write trace.
    pub fn write(
        &mut self,
        lo: u64,
        hi: u64,
        client: u32,
        txn: u64,
        set: Vec<(u64, u64)>,
    ) -> &mut Self {
        self.push(lo, hi, client, txn, OpKind::Write(tuple_set(set)))
    }

    /// Appends a commit trace.
    pub fn commit(&mut self, lo: u64, hi: u64, client: u32, txn: u64) -> &mut Self {
        self.push(lo, hi, client, txn, OpKind::Commit)
    }

    /// Appends an abort trace.
    pub fn abort(&mut self, lo: u64, hi: u64, client: u32, txn: u64) -> &mut Self {
        self.push(lo, hi, client, txn, OpKind::Abort)
    }

    fn push(&mut self, lo: u64, hi: u64, client: u32, txn: u64, op: OpKind) -> &mut Self {
        self.traces.push(Trace::new(
            Interval::new(crate::types::Timestamp(lo), crate::types::Timestamp(hi)),
            ClientId(client),
            TxnId(txn),
            op,
        ));
        self
    }

    /// Finishes the builder, returning traces sorted by `ts_bef` — the
    /// order in which the pipeline would dispatch them.
    #[must_use]
    pub fn build_sorted(mut self) -> Vec<Trace> {
        self.traces.sort_by_key(|t| (t.ts_bef(), t.ts_aft(), t.txn));
        self.traces
    }

    /// Finishes the builder in insertion order.
    #[must_use]
    pub fn build(self) -> Vec<Trace> {
        self.traces
    }
}

fn tuple_set(set: Vec<(u64, u64)>) -> Vec<(Key, Value)> {
    set.into_iter().map(|(k, v)| (Key(k), Value(v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Timestamp;

    #[test]
    fn terminal_classification() {
        assert!(OpKind::Commit.is_terminal());
        assert!(OpKind::Abort.is_terminal());
        assert!(!OpKind::Read(vec![]).is_terminal());
        assert!(!OpKind::Write(vec![]).is_terminal());
    }

    #[test]
    fn builder_sorts_by_ts_bef() {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 1)]);
        b.write(2, 4, 1, 2, vec![(1, 2)]);
        b.commit(20, 21, 0, 1);
        let traces = b.build_sorted();
        assert_eq!(traces[0].txn, TxnId(2));
        assert_eq!(traces[1].txn, TxnId(1));
        assert_eq!(traces[2].op, OpKind::Commit);
    }

    #[test]
    fn trace_accessors() {
        let t = Trace::new(
            Interval::new(Timestamp(3), Timestamp(8)),
            ClientId(1),
            TxnId(2),
            OpKind::Commit,
        );
        assert_eq!(t.ts_bef(), Timestamp(3));
        assert_eq!(t.ts_aft(), Timestamp(8));
    }

    #[test]
    fn display_is_compact() {
        let t = Trace::new(
            Interval::new(Timestamp(1), Timestamp(2)),
            ClientId(0),
            TxnId(7),
            OpKind::Write(vec![(Key(3), Value(9))]),
        );
        assert_eq!(t.to_string(), "wt7(k3=v9) @(1, 2)");
    }

    #[test]
    fn serde_round_trip() {
        let t = Trace::new(
            Interval::new(Timestamp(1), Timestamp(2)),
            ClientId(0),
            TxnId(7),
            OpKind::Read(vec![(Key(3), Value(9)), (Key(4), Value(0))]),
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
