//! Multi-threaded front end for the two-level pipeline.
//!
//! Worker threads hold a [`ClientHandle`] each and record traces without
//! any cross-thread coordination (an unbounded MPSC channel per client —
//! the paper's "local buffers asynchronously buffer traces from each
//! client"). The collector side drains the channels into the deterministic
//! [`TwoLevelPipeline`](super::TwoLevelPipeline) and dispatches.

use super::{PipelineConfig, PipelineError, PipelineStats, TwoLevelPipeline};
use crate::trace::Trace;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

/// The client-thread side: cheap, cloneable-per-client trace sink.
#[derive(Debug)]
pub struct ClientHandle {
    sender: Sender<Trace>,
}

impl ClientHandle {
    /// Records one trace. Never blocks.
    ///
    /// Dropping the handle closes the client's stream.
    pub fn record(&self, trace: Trace) {
        // A send error means the collector has shut down; traces recorded
        // after that are intentionally discarded.
        let _ = self.sender.send(trace);
    }
}

/// The collector side: owns the per-client channels and the pipeline.
#[derive(Debug)]
pub struct ChannelTracer {
    receivers: Vec<Receiver<Trace>>,
    disconnected: Vec<bool>,
    pipeline: TwoLevelPipeline,
    errors: Vec<PipelineError>,
}

impl ChannelTracer {
    /// Creates a tracer for `n_clients` worker threads, returning the
    /// handles to distribute to them.
    #[must_use]
    pub fn new(n_clients: usize, cfg: PipelineConfig) -> (ChannelTracer, Vec<ClientHandle>) {
        let mut receivers = Vec::with_capacity(n_clients);
        let mut handles = Vec::with_capacity(n_clients);
        for _ in 0..n_clients {
            let (tx, rx) = unbounded();
            receivers.push(rx);
            handles.push(ClientHandle { sender: tx });
        }
        let tracer = ChannelTracer {
            disconnected: vec![false; n_clients],
            receivers,
            pipeline: TwoLevelPipeline::new(n_clients, cfg),
            errors: Vec::new(),
        };
        (tracer, handles)
    }

    /// Drains every client channel into the local buffers, then dispatches
    /// every provable trace into `out`. Returns `true` while more traces
    /// may still arrive (some client handle is still alive or undrained).
    pub fn poll(&mut self, out: &mut Vec<Trace>) -> bool {
        for (i, rx) in self.receivers.iter().enumerate() {
            if self.disconnected[i] {
                continue;
            }
            loop {
                match rx.try_recv() {
                    Ok(trace) => {
                        // Client threads time operations with a monotonic
                        // clock, so per-client order normally holds; a
                        // stepping clock would break it. Close the broken
                        // stream and record the error instead of taking
                        // the verification thread down.
                        if let Err(e) = self.pipeline.push(i, trace) {
                            self.errors.push(e);
                            self.disconnected[i] = true;
                            // Index is valid by construction (enumerate over
                            // receivers); record defensively rather than panic.
                            if let Err(e) = self.pipeline.close(i) {
                                self.errors.push(e);
                            }
                            break;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.disconnected[i] = true;
                        if let Err(e) = self.pipeline.close(i) {
                            self.errors.push(e);
                        }
                        break;
                    }
                }
            }
        }
        self.pipeline.drain_available(out);
        !self.pipeline.is_exhausted() || self.disconnected.iter().any(|d| !d)
    }

    /// Runs `poll` until every client has disconnected and every buffered
    /// trace has been dispatched, yielding them to `sink` in order.
    pub fn run_to_completion(mut self, mut sink: impl FnMut(Trace)) -> PipelineStats {
        let mut batch = Vec::new();
        loop {
            let live = self.poll(&mut batch);
            for t in batch.drain(..) {
                sink(t);
            }
            if !live {
                // `poll` only reports dead once every client disconnected
                // and the pipeline drained.
                debug_assert!(self.pipeline.is_exhausted());
                return self.pipeline.stats();
            }
            std::thread::yield_now();
        }
    }

    /// Force-closes a dead or stalled client: its channel is abandoned and
    /// its local buffer closed via [`TwoLevelPipeline::evict`], so it stops
    /// pinning the watermark. Traces it already delivered still dispatch;
    /// anything still in its channel is discarded (the client is presumed
    /// dead). Safe to call for an already-disconnected client.
    pub fn evict(&mut self, client: usize) -> Result<(), PipelineError> {
        if client >= self.receivers.len() {
            return Err(PipelineError::UnknownClient(client));
        }
        self.disconnected[client] = true;
        self.pipeline.evict(client)
    }

    /// The client currently pinning the watermark (blocking every
    /// dispatch by its silence), if any. See
    /// [`TwoLevelPipeline::pinning_client`].
    #[must_use]
    pub fn pinning_client(&self) -> Option<usize> {
        self.pipeline.pinning_client()
    }

    /// Indices of clients whose streams are still open (not yet
    /// disconnected, errored or evicted).
    #[must_use]
    pub fn open_clients(&self) -> Vec<usize> {
        self.disconnected
            .iter()
            .enumerate()
            .filter_map(|(i, d)| (!d).then_some(i))
            .collect()
    }

    /// Stream errors encountered so far (e.g. a client whose timestamps
    /// went backwards; its stream was closed at the offending trace).
    #[must_use]
    pub fn errors(&self) -> &[PipelineError] {
        &self.errors
    }

    /// Occupancy/progress counters of the underlying pipeline.
    #[must_use]
    pub fn stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpKind;
    use crate::types::{ClientId, Timestamp, TxnId};
    use crate::Interval;
    use std::thread;

    fn t(client: u32, lo: u64) -> Trace {
        Trace::new(
            Interval::new(Timestamp(lo), Timestamp(lo + 1)),
            ClientId(client),
            TxnId(lo),
            OpKind::Commit,
        )
    }

    #[test]
    fn threads_stream_in_sorted_out() {
        let (tracer, handles) = ChannelTracer::new(4, PipelineConfig::default());
        let mut joins = Vec::new();
        for (c, handle) in handles.into_iter().enumerate() {
            joins.push(thread::spawn(move || {
                for i in 0..250u64 {
                    // Distinct ts per client: ts = i * 4 + client.
                    handle.record(t(c as u32, i * 4 + c as u64));
                }
                // handle dropped here -> stream closed
            }));
        }
        let mut out = Vec::new();
        let stats = tracer.run_to_completion(|trace| out.push(trace));
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(out.len(), 1000);
        assert_eq!(stats.dispatched, 1000);
        assert!(out.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
    }

    #[test]
    fn non_monotonic_client_stream_is_closed_not_fatal() {
        let (mut tracer, handles) = ChannelTracer::new(2, PipelineConfig::default());
        handles[0].record(t(0, 100));
        handles[0].record(t(0, 50)); // clock stepped backwards
        handles[0].record(t(0, 200)); // discarded: stream already closed
        handles[1].record(t(1, 10));
        drop(handles);
        let mut out = Vec::new();
        while tracer.poll(&mut out) {}
        assert_eq!(tracer.errors().len(), 1);
        assert!(matches!(
            tracer.errors()[0],
            crate::pipeline::PipelineError::NonMonotonicClient { client: 0, .. }
        ));
        // The healthy client's trace and the pre-error trace still flow.
        let ts: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(ts, vec![10, 100]);
    }

    #[test]
    fn poll_reports_liveness() {
        let (mut tracer, handles) = ChannelTracer::new(1, PipelineConfig::default());
        let mut out = Vec::new();
        assert!(tracer.poll(&mut out), "client still connected");
        handles[0].record(t(0, 1));
        drop(handles);
        // Poll until fully drained.
        while tracer.poll(&mut out) {}
        assert_eq!(out.len(), 1);
    }
}
