//! Multi-threaded front end for the two-level pipeline.
//!
//! Worker threads hold a [`ClientHandle`] each and record traces without
//! any cross-thread coordination (an MPSC channel per client — the
//! paper's "local buffers asynchronously buffer traces from each
//! client"). The collector side drains the channels into the
//! deterministic [`TwoLevelPipeline`](super::TwoLevelPipeline) and
//! dispatches.
//!
//! Channels are governed by a [`Backpressure`] policy. The historical
//! default is unbounded buffering, which lets ingest outrun verification
//! until the process OOMs; bounded policies couple the two rates
//! instead: `Blocking` stalls the recording client when the collector
//! lags, `Lossy` sheds the trace and counts it
//! ([`PipelineStats::shed_traces`]) so the loss is an explicit coverage
//! hole rather than silent growth.

use super::{PipelineConfig, PipelineError, PipelineStats, TwoLevelPipeline, TRACE_APPROX_BYTES};
use crate::budget::MemUsage;
use crate::obs;
use crate::trace::Trace;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a [`ClientHandle`] behaves when the collector lags behind ingest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Unbounded channels: `record` never blocks and never sheds, memory
    /// grows with the collector's lag. The historical default.
    #[default]
    Unbounded,
    /// Bounded channels of the given per-client capacity: `record`
    /// blocks until the collector catches up, coupling ingest rate to
    /// verification rate.
    Blocking(usize),
    /// Bounded channels of the given per-client capacity: `record`
    /// sheds the trace when the channel is full, counting it in
    /// [`PipelineStats::shed_traces`].
    Lossy(usize),
}

/// The client-thread side: cheap, cloneable-per-client trace sink.
#[derive(Debug)]
pub struct ClientHandle {
    sender: Sender<Trace>,
    shed: Arc<AtomicU64>,
    lossy: bool,
}

impl ClientHandle {
    /// Records one trace. Returns `true` if it was delivered to the
    /// collector's channel, `false` if it was shed — because the
    /// collector has shut down, or because the channel is full under
    /// [`Backpressure::Lossy`]. Every shed trace is counted in the
    /// tracer's shared [`PipelineStats::shed_traces`] counter, so even
    /// callers that ignore the return value never lose traces silently.
    ///
    /// Under [`Backpressure::Blocking`] this blocks while the channel is
    /// full. Dropping the handle closes the client's stream.
    pub fn record(&self, trace: Trace) -> bool {
        let delivered = if self.lossy {
            match self.sender.try_send(trace) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    // Lossy backpressure: the collector is keeping up with
                    // the budget, not the workload. Distinct from the
                    // post-shutdown case below so operators can tell
                    // "shedding under load" from "recording into a closed
                    // chain" in the metrics.
                    obs::ctr_always(obs::Counter::ShedLossy, 1);
                    false
                }
                Err(TrySendError::Disconnected(_)) => {
                    obs::ctr_always(obs::Counter::PostShutdownDrops, 1);
                    false
                }
            }
        } else {
            let ok = self.sender.send(trace).is_ok();
            if !ok {
                obs::ctr_always(obs::Counter::PostShutdownDrops, 1);
            }
            ok
        };
        if !delivered {
            // relaxed: a monotonically increasing tally read only for
            // reporting; no other memory depends on its ordering.
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
        delivered
    }

    /// Traces shed so far across *all* handles of this tracer (the
    /// counter is shared): lossy-backpressure drops plus records
    /// attempted after collector shutdown.
    #[must_use]
    pub fn shed_count(&self) -> u64 {
        // relaxed: monotone counter, an in-flight increment may be missed
        // by one read and picked up by the next; exactness is only needed
        // after the channels close, which synchronizes via the channel.
        self.shed.load(Ordering::Relaxed)
    }
}

/// The collector side: owns the per-client channels and the pipeline.
#[derive(Debug)]
pub struct ChannelTracer {
    receivers: Vec<Receiver<Trace>>,
    disconnected: Vec<bool>,
    pipeline: TwoLevelPipeline,
    errors: Vec<PipelineError>,
    shed: Arc<AtomicU64>,
}

impl ChannelTracer {
    /// Creates a tracer for `n_clients` worker threads with unbounded
    /// channels, returning the handles to distribute to them.
    #[must_use]
    pub fn new(n_clients: usize, cfg: PipelineConfig) -> (ChannelTracer, Vec<ClientHandle>) {
        ChannelTracer::with_backpressure(n_clients, cfg, Backpressure::Unbounded)
    }

    /// Creates a tracer whose per-client channels follow the given
    /// [`Backpressure`] policy.
    #[must_use]
    pub fn with_backpressure(
        n_clients: usize,
        cfg: PipelineConfig,
        backpressure: Backpressure,
    ) -> (ChannelTracer, Vec<ClientHandle>) {
        let shed = Arc::new(AtomicU64::new(0));
        let mut receivers = Vec::with_capacity(n_clients);
        let mut handles = Vec::with_capacity(n_clients);
        for _ in 0..n_clients {
            let (tx, rx) = match backpressure {
                Backpressure::Unbounded => unbounded(),
                Backpressure::Blocking(cap) | Backpressure::Lossy(cap) => bounded(cap.max(1)),
            };
            receivers.push(rx);
            handles.push(ClientHandle {
                sender: tx,
                shed: Arc::clone(&shed),
                lossy: matches!(backpressure, Backpressure::Lossy(_)),
            });
        }
        let tracer = ChannelTracer {
            disconnected: vec![false; n_clients],
            receivers,
            pipeline: TwoLevelPipeline::new(n_clients, cfg),
            errors: Vec::new(),
            shed,
        };
        (tracer, handles)
    }

    /// Drains every client channel into the local buffers, then dispatches
    /// every provable trace into `out`. Returns `true` while more traces
    /// may still arrive (some client handle is still alive or undrained).
    pub fn poll(&mut self, out: &mut Vec<Trace>) -> bool {
        for (i, rx) in self.receivers.iter().enumerate() {
            if self.disconnected[i] {
                continue;
            }
            loop {
                match rx.try_recv() {
                    Ok(trace) => {
                        // Client threads time operations with a monotonic
                        // clock, so per-client order normally holds; a
                        // stepping clock would break it. Close the broken
                        // stream and record the error instead of taking
                        // the verification thread down.
                        if let Err(e) = self.pipeline.push(i, trace) {
                            self.errors.push(e);
                            self.disconnected[i] = true;
                            // Index is valid by construction (enumerate over
                            // receivers); record defensively rather than panic.
                            if let Err(e) = self.pipeline.close(i) {
                                self.errors.push(e);
                            }
                            break;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.disconnected[i] = true;
                        if let Err(e) = self.pipeline.close(i) {
                            self.errors.push(e);
                        }
                        break;
                    }
                }
            }
        }
        self.pipeline.drain_available(out);
        !self.pipeline.is_exhausted() || self.disconnected.iter().any(|d| !d)
    }

    /// Runs `poll` until every client has disconnected and every buffered
    /// trace has been dispatched, yielding them to `sink` in order.
    pub fn run_to_completion(mut self, mut sink: impl FnMut(Trace)) -> PipelineStats {
        let mut batch = Vec::new();
        loop {
            let live = self.poll(&mut batch);
            for t in batch.drain(..) {
                sink(t);
            }
            if !live {
                // `poll` only reports dead once every client disconnected
                // and the pipeline drained.
                debug_assert!(self.pipeline.is_exhausted());
                return self.stats();
            }
            std::thread::yield_now();
        }
    }

    /// Force-closes a dead or stalled client: its channel is abandoned and
    /// its local buffer closed via [`TwoLevelPipeline::evict`], so it stops
    /// pinning the watermark. Traces it already delivered still dispatch;
    /// anything still in its channel is discarded (the client is presumed
    /// dead). Safe to call for an already-disconnected client.
    pub fn evict(&mut self, client: usize) -> Result<(), PipelineError> {
        if client >= self.receivers.len() {
            return Err(PipelineError::UnknownClient(client));
        }
        self.disconnected[client] = true;
        self.pipeline.evict(client)
    }

    /// Rung 2 of the overload ladder: drain the channels one last time,
    /// then flush every buffered trace into `out` in global order via
    /// [`TwoLevelPipeline::force_dispatch`]. Stragglers that later
    /// arrive below the forced floor are shed (counted).
    pub fn force_dispatch(&mut self, out: &mut Vec<Trace>) -> usize {
        let before = out.len();
        self.poll(out);
        self.pipeline.force_dispatch(out);
        out.len() - before
    }

    /// The client currently pinning the watermark (blocking every
    /// dispatch by its silence), if any. See
    /// [`TwoLevelPipeline::pinning_client`].
    #[must_use]
    pub fn pinning_client(&self) -> Option<usize> {
        self.pipeline.pinning_client()
    }

    /// The open client with the smallest watermark bound, buffered or
    /// not. See [`TwoLevelPipeline::laggard_client`].
    #[must_use]
    pub fn laggard_client(&self) -> Option<usize> {
        self.pipeline.laggard_client()
    }

    /// Indices of clients whose streams are still open (not yet
    /// disconnected, errored or evicted).
    #[must_use]
    pub fn open_clients(&self) -> Vec<usize> {
        self.disconnected
            .iter()
            .enumerate()
            .filter_map(|(i, d)| (!d).then_some(i))
            .collect()
    }

    /// Stream errors encountered so far (e.g. a client whose timestamps
    /// went backwards; its stream was closed at the offending trace).
    #[must_use]
    pub fn errors(&self) -> &[PipelineError] {
        &self.errors
    }

    /// Occupancy/progress counters of the underlying pipeline, with the
    /// channel layer's shed counter folded in.
    #[must_use]
    pub fn stats(&self) -> PipelineStats {
        let mut stats = self.pipeline.stats();
        // relaxed: same monotone-tally argument as `shed_count`.
        stats.shed_traces = self.shed.load(Ordering::Relaxed);
        stats
    }

    /// Cheap estimate of everything buffered on the collector side:
    /// undrained channel backlog plus the pipeline's local buffers and
    /// global heap.
    #[must_use]
    pub fn mem_usage(&self) -> MemUsage {
        let backlog: usize = self.receivers.iter().map(Receiver::len).sum();
        self.pipeline.mem_usage() + MemUsage::per_entry(backlog, TRACE_APPROX_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpKind;
    use crate::types::{ClientId, Timestamp, TxnId};
    use crate::Interval;
    use std::thread;

    fn t(client: u32, lo: u64) -> Trace {
        Trace::new(
            Interval::new(Timestamp(lo), Timestamp(lo + 1)),
            ClientId(client),
            TxnId(lo),
            OpKind::Commit,
        )
    }

    #[test]
    fn threads_stream_in_sorted_out() {
        let (tracer, handles) = ChannelTracer::new(4, PipelineConfig::default());
        let mut joins = Vec::new();
        for (c, handle) in handles.into_iter().enumerate() {
            joins.push(thread::spawn(move || {
                for i in 0..250u64 {
                    // Distinct ts per client: ts = i * 4 + client.
                    handle.record(t(c as u32, i * 4 + c as u64));
                }
                // handle dropped here -> stream closed
            }));
        }
        let mut out = Vec::new();
        let stats = tracer.run_to_completion(|trace| out.push(trace));
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(out.len(), 1000);
        assert_eq!(stats.dispatched, 1000);
        assert_eq!(stats.shed_traces, 0);
        assert!(out.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
    }

    #[test]
    fn non_monotonic_client_stream_is_closed_not_fatal() {
        let (mut tracer, handles) = ChannelTracer::new(2, PipelineConfig::default());
        handles[0].record(t(0, 100));
        handles[0].record(t(0, 50)); // clock stepped backwards
        handles[0].record(t(0, 200)); // discarded: stream already closed
        handles[1].record(t(1, 10));
        drop(handles);
        let mut out = Vec::new();
        while tracer.poll(&mut out) {}
        assert_eq!(tracer.errors().len(), 1);
        assert!(matches!(
            tracer.errors()[0],
            crate::pipeline::PipelineError::NonMonotonicClient { client: 0, .. }
        ));
        // The healthy client's trace and the pre-error trace still flow.
        let ts: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(ts, vec![10, 100]);
    }

    #[test]
    fn poll_reports_liveness() {
        let (mut tracer, handles) = ChannelTracer::new(1, PipelineConfig::default());
        let mut out = Vec::new();
        assert!(tracer.poll(&mut out), "client still connected");
        handles[0].record(t(0, 1));
        drop(handles);
        // Poll until fully drained.
        while tracer.poll(&mut out) {}
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn record_after_collector_shutdown_is_counted_not_silent() {
        let (tracer, handles) = ChannelTracer::new(2, PipelineConfig::default());
        assert!(handles[0].record(t(0, 1)));
        drop(tracer); // collector gone: channels disconnect
        assert!(!handles[0].record(t(0, 2)));
        assert!(!handles[1].record(t(1, 3)));
        // The shared counter saw both drops, from either handle's view.
        assert_eq!(handles[0].shed_count(), 2);
        assert_eq!(handles[1].shed_count(), 2);
    }

    #[test]
    fn lossy_backpressure_sheds_with_counter_when_full() {
        let (mut tracer, handles) =
            ChannelTracer::with_backpressure(1, PipelineConfig::default(), Backpressure::Lossy(4));
        let mut delivered = 0;
        for i in 0..10u64 {
            if handles[0].record(t(0, i)) {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 4, "capacity-4 lossy channel admits 4 of 10");
        drop(handles);
        let mut out = Vec::new();
        while tracer.poll(&mut out) {}
        assert_eq!(out.len(), 4);
        assert_eq!(tracer.stats().shed_traces, 6);
    }

    #[test]
    fn blocking_backpressure_couples_ingest_to_drain_rate() {
        let (mut tracer, mut handles) = ChannelTracer::with_backpressure(
            1,
            PipelineConfig::default(),
            Backpressure::Blocking(2),
        );
        let handle = handles.remove(0);
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                // Blocks whenever the collector is 2 traces behind.
                assert!(handle.record(t(0, i)));
            }
        });
        let mut out = Vec::new();
        while tracer.poll(&mut out) {
            assert!(
                tracer.mem_usage().entries <= 3,
                "bounded channel must cap collector-side backlog"
            );
            thread::yield_now();
        }
        producer.join().unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(tracer.stats().shed_traces, 0);
    }

    #[test]
    fn client_dropping_handle_mid_drain_closes_cleanly() {
        let (mut tracer, mut handles) = ChannelTracer::new(2, PipelineConfig::default());
        let h0 = handles.remove(0);
        let h1 = handles.remove(0);
        h0.record(t(0, 1));
        h0.record(t(0, 5));
        h1.record(t(1, 2));
        let mut out = Vec::new();
        assert!(tracer.poll(&mut out));
        // Client 0 dies between polls with one more trace in flight.
        h0.record(t(0, 9));
        drop(h0);
        assert!(tracer.poll(&mut out));
        // Its buffered traces must all still dispatch once client 1 ends.
        drop(h1);
        while tracer.poll(&mut out) {}
        let ts: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(ts, vec![1, 2, 5, 9]);
        assert!(tracer.errors().is_empty());
    }

    #[test]
    fn evicting_already_disconnected_client_is_a_noop() {
        let (mut tracer, mut handles) = ChannelTracer::new(2, PipelineConfig::default());
        let h0 = handles.remove(0);
        h0.record(t(0, 3));
        drop(h0); // client 0 disconnects on its own
        let mut out = Vec::new();
        tracer.poll(&mut out);
        assert_eq!(tracer.open_clients(), vec![1]);
        // Evicting it afterwards must not error or double-count.
        tracer.evict(0).unwrap();
        tracer.evict(0).unwrap();
        assert_eq!(tracer.stats().evicted_clients, 0, "close beat the evict");
        drop(handles);
        while tracer.poll(&mut out) {}
        assert_eq!(out.len(), 1);
        assert!(tracer.evict(7).is_err(), "unknown client index");
    }

    #[test]
    fn drain_after_all_channels_closed_flushes_everything() {
        let (mut tracer, handles) = ChannelTracer::new(3, PipelineConfig::default());
        handles[0].record(t(0, 10));
        handles[1].record(t(1, 20));
        handles[2].record(t(2, 15));
        drop(handles); // all channels close before the first poll
        let mut out = Vec::new();
        let mut polls = 0;
        while tracer.poll(&mut out) {
            polls += 1;
            assert!(polls < 100, "tracer failed to report exhaustion");
        }
        let ts: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(ts, vec![10, 15, 20]);
        assert!(tracer.open_clients().is_empty());
        // A further poll after exhaustion stays dead and yields nothing.
        assert!(!tracer.poll(&mut out));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn force_dispatch_drains_channels_and_heap() {
        let (mut tracer, handles) = ChannelTracer::new(2, PipelineConfig::default());
        handles[0].record(t(0, 10));
        handles[0].record(t(0, 30));
        // Client 1 silent: nothing provable.
        let mut out = Vec::new();
        assert!(tracer.poll(&mut out));
        assert!(out.is_empty());
        let n = tracer.force_dispatch(&mut out);
        assert_eq!(n, 2);
        let ts: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(ts, vec![10, 30]);
        assert_eq!(tracer.stats().forced_dispatches, 1);
        drop(handles);
    }
}
