//! The two-level pipeline that sorts massive streaming traces online
//! (§IV-C, Algorithm 1 of the paper).
//!
//! Each client appends traces — in increasing `ts_bef` order — to its own
//! *local buffer*. A *global buffer* (min-heap keyed on `ts_bef`) fetches
//! traces from the local buffers and dispatches them to the verifier once
//! the *watermark* proves no smaller-timestamped trace can still arrive.
//!
//! Theorem 1 (dispatch order) is enforced structurally: a trace leaves the
//! heap only when its `ts_bef` is at or below the minimum possible
//! `ts_bef` of every trace not yet in the heap, which is tracked per
//! client as "head of its local buffer, else the last timestamp it was
//! seen at, else +∞ once closed".
//!
//! The two §IV-C optimizations are independently switchable so the paper's
//! `w/o Opt` baseline (Fig. 10) shares this exact code path:
//!
//! * **prefer-smallest fetch** — fetch only from the local buffer whose
//!   head timestamp currently blocks the watermark, instead of draining
//!   every buffer each round;
//! * **bounded global buffer** — stop fetching once the heap holds enough
//!   dispatchable traces, keeping in-rate equal to out-rate and the heap
//!   size stable.

mod channel;

pub use channel::{Backpressure, ChannelTracer, ClientHandle};

use crate::obs;
use crate::trace::Trace;
use crate::types::Timestamp;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Optimization (a): fetch from the local buffer with the smallest
    /// head timestamp first, rather than draining all buffers each round.
    pub prefer_smallest: bool,
    /// Optimization (b): keep fetch and dispatch rates matched by moving
    /// at most `fetch_batch` traces per fetch step instead of draining
    /// the pinning buffer completely.
    pub bound_global: bool,
    /// Maximum traces moved from one local buffer per fetch step when
    /// `bound_global` is set.
    pub fetch_batch: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            prefer_smallest: true,
            bound_global: true,
            fetch_batch: 256,
        }
    }
}

impl PipelineConfig {
    /// The paper's `w/o Opt` configuration: Algorithm 1 verbatim, fetching
    /// every local buffer fully each round with no size bound.
    #[must_use]
    pub fn without_optimizations() -> PipelineConfig {
        PipelineConfig {
            prefer_smallest: false,
            bound_global: false,
            ..PipelineConfig::default()
        }
    }
}

/// Errors surfaced by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A client pushed a trace whose `ts_bef` went backwards. Per-client
    /// monotonicity is the precondition of Theorem 1.
    NonMonotonicClient {
        /// Index of the offending local buffer.
        client: usize,
        /// Timestamp the client was last seen at.
        last: Timestamp,
        /// The regressing timestamp that was pushed.
        pushed: Timestamp,
    },
    /// A push or close referenced a client index that does not exist.
    UnknownClient(usize),
    /// A push arrived after the client was closed.
    ClientClosed(usize),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::NonMonotonicClient {
                client,
                last,
                pushed,
            } => write!(
                f,
                "client {client} pushed ts_bef {pushed} after {last}: traces must be \
                 pushed in increasing ts_bef order"
            ),
            PipelineError::UnknownClient(c) => write!(f, "unknown client index {c}"),
            PipelineError::ClientClosed(c) => write!(f, "client {c} already closed"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Occupancy and progress counters of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Traces dispatched so far.
    pub dispatched: u64,
    /// Traces fetched from local buffers into the global heap so far.
    pub fetched: u64,
    /// Fetch rounds executed.
    pub rounds: u64,
    /// Maximum size the global heap ever reached.
    pub max_global: usize,
    /// Maximum total occupancy of all local buffers.
    pub max_local_total: usize,
    /// Maximum of (heap + local buffers): the pipeline's peak footprint
    /// in buffered traces (Fig. 10(a)'s memory metric).
    pub max_total_buffered: usize,
    /// Clients force-closed by [`TwoLevelPipeline::evict`] (stall-timeout
    /// eviction under degraded-mode operation).
    pub evicted_clients: u64,
    /// Exact back-to-back duplicate pushes dropped at the local buffers
    /// (re-delivery under chaotic trace transport).
    pub duplicates_dropped: u64,
    /// Traces shed before reaching the pipeline: lossy-backpressure
    /// drops and records attempted after collector shutdown (see
    /// [`ClientHandle::record`]).
    pub shed_traces: u64,
    /// Traces dropped because they arrived below a forced-dispatch
    /// floor: [`TwoLevelPipeline::force_dispatch`] flushed the buffers
    /// past them, so replaying them would break Theorem 1's dispatch
    /// order. Each one is an explicit coverage hole.
    pub late_dropped: u64,
    /// Budget-ladder rung 2 activations ([`TwoLevelPipeline::force_dispatch`]).
    pub forced_dispatches: u64,
    /// High-water mark of the pipeline's estimated buffered bytes
    /// (`max_total_buffered × ~bytes-per-trace`).
    pub peak_mem_bytes: u64,
}

/// Cheap per-trace byte estimate used by the pipeline's
/// [`MemUsage`](crate::budget::MemUsage) accounting: the inline `Trace`
/// struct plus a flat allowance for its op payload (key/value vectors).
pub const TRACE_APPROX_BYTES: usize = std::mem::size_of::<Trace>() + 64;

#[derive(Debug)]
struct HeapEntry {
    trace: Trace,
    seq: u64,
}

impl HeapEntry {
    fn key(&self) -> (Timestamp, Timestamp, u64) {
        (self.trace.ts_bef(), self.trace.ts_aft(), self.seq)
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

#[derive(Debug)]
struct LocalBuffer {
    queue: VecDeque<Trace>,
    /// Lower bound on the `ts_bef` of any trace this client may still
    /// produce: the last timestamp seen from it.
    last_seen: Timestamp,
    closed: bool,
    local_total: usize,
    /// The most recent trace accepted from this client, kept to drop
    /// exact re-deliveries (duplicates arrive back-to-back per client).
    last_pushed: Option<Trace>,
}

impl LocalBuffer {
    /// Minimum `ts_bef` any not-yet-fetched trace of this client can have;
    /// `None` means "no further traces" (closed and drained).
    fn lower_bound(&self) -> Option<Timestamp> {
        if let Some(front) = self.queue.front() {
            Some(front.ts_bef())
        } else if self.closed {
            None
        } else {
            Some(self.last_seen)
        }
    }
}

/// The two-level pipeline: local buffers + watermarked global min-heap.
///
/// This is a single-owner deterministic structure; multi-threaded trace
/// collection wraps it via [`ChannelTracer`].
#[derive(Debug)]
pub struct TwoLevelPipeline {
    locals: Vec<LocalBuffer>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    cfg: PipelineConfig,
    stats: PipelineStats,
    seq: u64,
    local_total: usize,
    last_dispatched: Timestamp,
    /// Set by [`force_dispatch`](Self::force_dispatch): traces below this
    /// floor can no longer be dispatched in order and are shed on push.
    forced_floor: Timestamp,
}

impl TwoLevelPipeline {
    /// Creates a pipeline for `n_clients` trace-producing clients.
    #[must_use]
    pub fn new(n_clients: usize, cfg: PipelineConfig) -> TwoLevelPipeline {
        TwoLevelPipeline {
            locals: (0..n_clients)
                .map(|_| LocalBuffer {
                    queue: VecDeque::new(),
                    last_seen: Timestamp::ZERO,
                    closed: false,
                    local_total: 0,
                    last_pushed: None,
                })
                .collect(),
            heap: BinaryHeap::new(),
            cfg,
            stats: PipelineStats::default(),
            seq: 0,
            local_total: 0,
            last_dispatched: Timestamp::ZERO,
            forced_floor: Timestamp::ZERO,
        }
    }

    /// Number of clients the pipeline was created with.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.locals.len()
    }

    /// Appends a trace to `client`'s local buffer. Traces must arrive in
    /// non-decreasing `ts_bef` order per client (Theorem 1 precondition).
    pub fn push(&mut self, client: usize, trace: Trace) -> Result<(), PipelineError> {
        let local = self
            .locals
            .get_mut(client)
            .ok_or(PipelineError::UnknownClient(client))?;
        if local.closed {
            return Err(PipelineError::ClientClosed(client));
        }
        if local.last_pushed.as_ref() == Some(&trace) {
            // A re-delivered trace: transports under fault injection may
            // duplicate a delivery; the duplicate arrives immediately after
            // the original because pushes are per-client FIFO. Dropping it
            // here keeps duplicates out of the watermark accounting and the
            // verifier alike.
            self.stats.duplicates_dropped += 1;
            obs::ctr(obs::Counter::DuplicatesDropped, 1);
            return Ok(());
        }
        if trace.ts_bef() < local.last_seen {
            return Err(PipelineError::NonMonotonicClient {
                client,
                last: local.last_seen,
                pushed: trace.ts_bef(),
            });
        }
        if trace.ts_bef() < self.forced_floor {
            // A forced dispatch already flushed the stream past this
            // timestamp; replaying the trace would dispatch out of order.
            // Shed it (counted — it is a coverage hole, not a silent loss)
            // but still advance the client's bound so the watermark moves.
            local.last_seen = trace.ts_bef();
            self.stats.late_dropped += 1;
            obs::ctr(obs::Counter::LateDropped, 1);
            return Ok(());
        }
        local.last_seen = trace.ts_bef();
        local.last_pushed = Some(trace.clone());
        local.queue.push_back(trace);
        local.local_total += 1;
        self.local_total += 1;
        self.stats.max_local_total = self.stats.max_local_total.max(self.local_total);
        self.note_footprint();
        Ok(())
    }

    /// Declares that `client` will produce no further traces.
    pub fn close(&mut self, client: usize) -> Result<(), PipelineError> {
        let local = self
            .locals
            .get_mut(client)
            .ok_or(PipelineError::UnknownClient(client))?;
        local.closed = true;
        Ok(())
    }

    /// Force-closes a dead or stalled client so it stops pinning the
    /// watermark. Identical to [`close`](Self::close) except the eviction
    /// is counted in [`PipelineStats::evicted_clients`]; traces the client
    /// already buffered are still dispatched in order, so the watermark
    /// stays monotone.
    pub fn evict(&mut self, client: usize) -> Result<(), PipelineError> {
        let local = self
            .locals
            .get_mut(client)
            .ok_or(PipelineError::UnknownClient(client))?;
        if !local.closed {
            local.closed = true;
            self.stats.evicted_clients += 1;
        }
        Ok(())
    }

    /// The open client currently *pinning* the watermark with an empty
    /// local buffer — i.e. the one client whose silence alone blocks every
    /// dispatch — or `None` if dispatch is not blocked on a silent client.
    ///
    /// This is the stall-detection probe: when the pipeline makes no
    /// progress for longer than the eviction timeout, the pinning client is
    /// the one to [`evict`](Self::evict).
    #[must_use]
    pub fn pinning_client(&self) -> Option<usize> {
        if self.heap.is_empty() && self.local_total == 0 {
            return None; // nothing buffered: no dispatch is blocked
        }
        let (_, empty, idx) = self
            .locals
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.lower_bound().map(|b| (b, l.queue.is_empty(), i)))
            .min()?;
        if empty && !self.locals[idx].closed {
            Some(idx)
        } else {
            None
        }
    }

    /// The open client holding the watermark furthest back — the one
    /// with the smallest lower bound — regardless of whether anything is
    /// currently buffered. This is the budget ladder's rung-3 target:
    /// unlike [`pinning_client`](Self::pinning_client) it also names the
    /// laggard when a forced dispatch just emptied the buffers.
    #[must_use]
    pub fn laggard_client(&self) -> Option<usize> {
        self.locals
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.closed)
            .filter_map(|(i, l)| l.lower_bound().map(|b| (b, i)))
            .min()
            .map(|(_, i)| i)
    }

    /// The current watermark: the smallest `ts_bef` any not-yet-fetched
    /// trace can have, or `None` when every client is closed and drained
    /// (in which case everything in the heap is dispatchable).
    #[must_use]
    pub fn watermark(&self) -> Option<Timestamp> {
        self.locals
            .iter()
            .filter_map(LocalBuffer::lower_bound)
            .min()
    }

    /// Tries to dispatch the next trace in global `ts_bef` order.
    ///
    /// Returns `None` when no trace can currently be *proven* next — either
    /// the pipeline is empty, or an open client with an empty buffer pins
    /// the watermark (more pushes or a `close` are needed).
    pub fn try_dispatch(&mut self) -> Option<Trace> {
        loop {
            if self.heap_top_dispatchable() {
                // `heap_top_dispatchable` returned true, so the heap is
                // non-empty; degrade to "nothing provable" otherwise.
                let Reverse(entry) = self.heap.pop()?;
                self.stats.dispatched += 1;
                debug_assert!(
                    entry.trace.ts_bef() >= self.last_dispatched,
                    "Theorem 1 violated: dispatch went backwards"
                );
                self.last_dispatched = entry.trace.ts_bef();
                return Some(entry.trace);
            }
            if !self.fetch_round() {
                return None;
            }
        }
    }

    /// Dispatches every currently provable trace into `out`.
    pub fn drain_available(&mut self, out: &mut Vec<Trace>) {
        let span = obs::span_start();
        let before = out.len();
        while let Some(t) = self.try_dispatch() {
            out.push(t);
        }
        let drained = out.len() - before;
        if span.is_some() && drained > 0 {
            let dur = obs::span_end(obs::Stage::Dispatch, obs::LANE_PIPELINE, span);
            obs::hist(obs::HistId::DispatchLatencyUs, dur);
            obs::ctr(obs::Counter::Dispatched, drained as u64);
            obs::gauge_set(obs::Gauge::WatermarkLag, self.watermark_lag());
        }
    }

    /// Observability estimate of how far dispatch trails ingest: the
    /// newest `ts_bef` any client has pushed minus the current watermark,
    /// in capture-timestamp units. Zero when everything provable has been
    /// dispatched or the pipeline is fully drained.
    fn watermark_lag(&self) -> u64 {
        let Some(wm) = self.watermark() else { return 0 };
        let newest = self.locals.iter().map(|l| l.last_seen).max().unwrap_or(wm);
        newest.0.saturating_sub(wm.0)
    }

    /// Rung 2 of the overload ladder: flush *everything* buffered —
    /// local buffers and global heap — into `out` in global `ts_bef`
    /// order, without waiting for the watermark proof.
    ///
    /// The flushed traces themselves are emitted sorted (the heap pops
    /// in order), so the verifier still sees a monotone stream; the cost
    /// is paid by stragglers: any trace later pushed below the forced
    /// floor is shed and counted in [`PipelineStats::late_dropped`].
    /// Returns the number of traces flushed.
    pub fn force_dispatch(&mut self, out: &mut Vec<Trace>) -> usize {
        for idx in 0..self.locals.len() {
            self.move_from_local(idx, usize::MAX);
        }
        let mut n = 0;
        while let Some(Reverse(entry)) = self.heap.pop() {
            self.stats.dispatched += 1;
            self.last_dispatched = entry.trace.ts_bef();
            out.push(entry.trace);
            n += 1;
        }
        self.forced_floor = self.forced_floor.max(self.last_dispatched);
        self.stats.forced_dispatches += 1;
        obs::ctr(obs::Counter::ForcedDispatches, 1);
        obs::ctr(obs::Counter::Dispatched, n as u64);
        n
    }

    /// Cheap estimate of the pipeline's buffered memory: every trace in
    /// the local buffers and the global heap at
    /// [`TRACE_APPROX_BYTES`] each.
    #[must_use]
    pub fn mem_usage(&self) -> crate::budget::MemUsage {
        crate::budget::MemUsage::per_entry(self.heap.len() + self.local_total, TRACE_APPROX_BYTES)
    }

    /// `true` when every client is closed and every buffer (local and
    /// global) is empty.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.heap.is_empty() && self.locals.iter().all(|l| l.closed && l.queue.is_empty())
    }

    /// Progress and occupancy counters.
    #[must_use]
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Current global heap occupancy.
    #[must_use]
    pub fn global_len(&self) -> usize {
        self.heap.len()
    }

    /// Current total local buffer occupancy.
    #[must_use]
    pub fn local_len(&self) -> usize {
        self.local_total
    }

    fn heap_top_dispatchable(&self) -> bool {
        match self.heap.peek() {
            None => false,
            Some(Reverse(top)) => match self.watermark() {
                None => true,
                Some(w) => top.trace.ts_bef() <= w,
            },
        }
    }

    /// One fetch round (stage (b) of Algorithm 1). Returns `false` when no
    /// trace could be moved, i.e. the caller must wait for more pushes.
    fn fetch_round(&mut self) -> bool {
        self.stats.rounds += 1;
        let moved = if self.cfg.prefer_smallest {
            self.fetch_preferring_smallest()
        } else {
            self.fetch_all_locals()
        };
        moved > 0
    }

    /// Optimized fetch: move traces only from the buffer that *pins the
    /// watermark*, a batch at a time, and only while that helps dispatch.
    ///
    /// Fetching from any other buffer cannot raise the watermark, so it
    /// would only inflate the heap with traces that are not yet provably
    /// next — this is precisely how the optimized pipeline keeps the
    /// global buffer small on skewed clients (Fig. 10(a)). If the
    /// watermark is pinned by an open client with an empty buffer, no
    /// fetch can help: the dispatcher must wait for that client.
    fn fetch_preferring_smallest(&mut self) -> usize {
        let mut moved = 0;
        loop {
            if self.heap_top_dispatchable() {
                break;
            }
            // The client with the smallest lower bound pins the watermark.
            let pin = self
                .locals
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.lower_bound().map(|b| (b, l.queue.is_empty(), i)))
                .min();
            let Some((_, empty, idx)) = pin else {
                break; // every client closed and drained
            };
            if empty {
                break; // pinned by a silent open client: wait for pushes
            }
            let batch = if self.cfg.bound_global {
                self.cfg.fetch_batch
            } else {
                usize::MAX
            };
            let n = self.move_from_local(idx, batch);
            moved += n;
            if n == 0 {
                break;
            }
        }
        moved
    }

    /// Unoptimized fetch: drain every local buffer completely into the
    /// global heap (Algorithm 1 lines 4–5, verbatim).
    fn fetch_all_locals(&mut self) -> usize {
        let mut moved = 0;
        for idx in 0..self.locals.len() {
            moved += self.move_from_local(idx, usize::MAX);
        }
        moved
    }

    fn move_from_local(&mut self, idx: usize, limit: usize) -> usize {
        let mut n = 0;
        while n < limit {
            let Some(trace) = self.locals[idx].queue.pop_front() else {
                break;
            };
            self.locals[idx].local_total -= 1;
            self.local_total -= 1;
            self.seq += 1;
            self.heap.push(Reverse(HeapEntry {
                trace,
                seq: self.seq,
            }));
            n += 1;
        }
        self.stats.fetched += n as u64;
        self.stats.max_global = self.stats.max_global.max(self.heap.len());
        self.note_footprint();
        n
    }

    fn note_footprint(&mut self) {
        let total = self.heap.len() + self.local_total;
        self.stats.max_total_buffered = self.stats.max_total_buffered.max(total);
        self.stats.peak_mem_bytes = self
            .stats
            .peak_mem_bytes
            .max((total as u64) * (TRACE_APPROX_BYTES as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{OpKind, Trace};
    use crate::types::{ClientId, TxnId};
    use crate::Interval;

    fn t(client: u32, lo: u64, hi: u64) -> Trace {
        Trace::new(
            Interval::new(Timestamp(lo), Timestamp(hi)),
            ClientId(client),
            TxnId(u64::from(client) * 1000 + lo),
            OpKind::Commit,
        )
    }

    fn run_to_completion(p: &mut TwoLevelPipeline) -> Vec<Trace> {
        let mut out = Vec::new();
        p.drain_available(&mut out);
        assert!(p.is_exhausted(), "pipeline left traces behind");
        out
    }

    #[test]
    fn dispatches_in_ts_bef_order_across_clients() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        // Fig. 5's example: interleaved odd/even timestamps on two clients.
        for ts in [1u64, 3, 5, 7, 9, 11] {
            p.push(0, t(0, ts, ts + 1)).unwrap();
        }
        for ts in [2u64, 4, 6, 8, 10, 12] {
            p.push(1, t(1, ts, ts + 1)).unwrap();
        }
        p.close(0).unwrap();
        p.close(1).unwrap();
        let out = run_to_completion(&mut p);
        let times: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
    }

    #[test]
    fn waits_for_slow_open_client() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        p.push(0, t(0, 10, 11)).unwrap();
        // Client 1 is open and silent: nothing may be dispatched because a
        // trace with ts_bef < 10 could still arrive from it.
        assert_eq!(p.try_dispatch(), None);
        p.push(1, t(1, 5, 6)).unwrap();
        // Now 5 is provably first (client 0's bound is 10, client 1's is 5).
        let first = p.try_dispatch().unwrap();
        assert_eq!(first.ts_bef(), Timestamp(5));
        // 10 still can't go: client 1's bound is its last seen ts (5).
        assert_eq!(p.try_dispatch(), None);
        p.close(1).unwrap();
        assert_eq!(p.try_dispatch().unwrap().ts_bef(), Timestamp(10));
    }

    #[test]
    fn rejects_non_monotonic_push() {
        let mut p = TwoLevelPipeline::new(1, PipelineConfig::default());
        p.push(0, t(0, 10, 11)).unwrap();
        let err = p.push(0, t(0, 9, 12)).unwrap_err();
        assert!(matches!(err, PipelineError::NonMonotonicClient { .. }));
    }

    #[test]
    fn rejects_unknown_and_closed_clients() {
        let mut p = TwoLevelPipeline::new(1, PipelineConfig::default());
        assert!(matches!(
            p.push(3, t(0, 1, 2)),
            Err(PipelineError::UnknownClient(3))
        ));
        p.close(0).unwrap();
        assert!(matches!(
            p.push(0, t(0, 1, 2)),
            Err(PipelineError::ClientClosed(0))
        ));
    }

    #[test]
    fn equal_timestamps_are_dispatched_stably() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        p.push(0, t(0, 5, 6)).unwrap();
        p.push(1, t(1, 5, 6)).unwrap();
        p.close(0).unwrap();
        p.close(1).unwrap();
        let out = run_to_completion(&mut p);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts_bef(), out[1].ts_bef());
    }

    #[test]
    fn optimized_keeps_heap_smaller_on_skewed_clients() {
        // Client 0 runs far behind client 1; the unoptimized pipeline
        // accumulates all of client 1's traces in the heap while waiting.
        let make_pushes = |p: &mut TwoLevelPipeline| {
            for i in 0..500u64 {
                p.push(1, t(1, 10_000 + i, 10_001 + i)).unwrap();
            }
            for i in 0..5u64 {
                p.push(0, t(0, i, i + 1)).unwrap();
            }
            p.close(0).unwrap();
            p.close(1).unwrap();
        };

        let mut opt = TwoLevelPipeline::new(2, PipelineConfig::default());
        make_pushes(&mut opt);
        let out_opt = run_to_completion(&mut opt);

        let mut noopt = TwoLevelPipeline::new(2, PipelineConfig::without_optimizations());
        make_pushes(&mut noopt);
        let out_noopt = run_to_completion(&mut noopt);

        assert_eq!(out_opt.len(), out_noopt.len());
        assert!(
            opt.stats().max_global < noopt.stats().max_global,
            "optimized heap {} should be smaller than unoptimized {}",
            opt.stats().max_global,
            noopt.stats().max_global
        );
    }

    #[test]
    fn incremental_push_dispatch_cycles() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        let mut out = Vec::new();
        let mut next = [0u64, 0u64];
        // Interleave pushes and drains in small batches, like the 0.5 s
        // batching of §VI-C.
        for round in 0..50 {
            for (c, n) in next.iter_mut().enumerate() {
                for _ in 0..3 {
                    *n += 1 + (round as u64 % 3);
                    let ts = *n * 2 + c as u64;
                    p.push(c, t(c as u32, ts, ts + 1)).unwrap();
                }
            }
            p.drain_available(&mut out);
        }
        p.close(0).unwrap();
        p.close(1).unwrap();
        p.drain_available(&mut out);
        assert!(p.is_exhausted());
        assert_eq!(out.len(), 300);
        assert!(out.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()));
    }

    #[test]
    fn close_with_buffered_traces_still_dispatches_them() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        for ts in [1u64, 4, 7] {
            p.push(0, t(0, ts, ts + 1)).unwrap();
        }
        p.push(1, t(1, 2, 3)).unwrap();
        // Close client 0 while it still has three buffered traces; they
        // must all come out, interleaved in global order.
        p.close(0).unwrap();
        p.close(1).unwrap();
        let out = run_to_completion(&mut p);
        let times: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(times, vec![1, 2, 4, 7]);
    }

    #[test]
    fn evicting_all_clients_unblocks_and_exhausts() {
        let mut p = TwoLevelPipeline::new(3, PipelineConfig::default());
        p.push(0, t(0, 10, 11)).unwrap();
        p.push(1, t(1, 20, 21)).unwrap();
        // Client 2 is silent and pins the watermark at ZERO.
        assert_eq!(p.try_dispatch(), None);
        assert_eq!(p.pinning_client(), Some(2));
        p.evict(2).unwrap();
        // Clients 0 and 1 are now the (successive) pins once drained.
        let first = p.try_dispatch().unwrap();
        assert_eq!(first.ts_bef(), Timestamp(10));
        p.evict(0).unwrap();
        p.evict(1).unwrap();
        let out = run_to_completion(&mut p);
        assert_eq!(out.len(), 1);
        assert_eq!(p.stats().evicted_clients, 3);
        // Evicting an already-closed client is a no-op, not a double count.
        p.evict(1).unwrap();
        assert_eq!(p.stats().evicted_clients, 3);
    }

    #[test]
    fn duplicate_delivery_is_dropped_exactly_once() {
        let mut p = TwoLevelPipeline::new(1, PipelineConfig::default());
        let tr = t(0, 5, 6);
        p.push(0, tr.clone()).unwrap();
        p.push(0, tr.clone()).unwrap(); // exact re-delivery: dropped
        p.push(0, t(0, 7, 8)).unwrap();
        p.close(0).unwrap();
        let out = run_to_completion(&mut p);
        assert_eq!(out.len(), 2, "duplicate must be deduped exactly once");
        assert_eq!(out[0], tr);
        assert_eq!(p.stats().duplicates_dropped, 1);
        assert_eq!(p.stats().dispatched, 2);
    }

    #[test]
    fn distinct_traces_at_equal_timestamps_are_not_deduped() {
        let mut p = TwoLevelPipeline::new(1, PipelineConfig::default());
        // Same interval, different txn ids: both must survive.
        let a = Trace::new(
            Interval::new(Timestamp(5), Timestamp(6)),
            ClientId(0),
            TxnId(1),
            OpKind::Commit,
        );
        let b = Trace::new(
            Interval::new(Timestamp(5), Timestamp(6)),
            ClientId(0),
            TxnId(2),
            OpKind::Commit,
        );
        p.push(0, a).unwrap();
        p.push(0, b).unwrap();
        p.close(0).unwrap();
        let out = run_to_completion(&mut p);
        assert_eq!(out.len(), 2);
        assert_eq!(p.stats().duplicates_dropped, 0);
    }

    #[test]
    fn watermark_stays_monotone_under_eviction() {
        let mut p = TwoLevelPipeline::new(3, PipelineConfig::default());
        for ts in [3u64, 6, 9] {
            p.push(0, t(0, ts, ts + 1)).unwrap();
        }
        for ts in [4u64, 8] {
            p.push(1, t(1, ts, ts + 1)).unwrap();
        }
        p.push(2, t(2, 1, 2)).unwrap();
        let mut out = Vec::new();
        p.drain_available(&mut out);
        // Client 2 went silent after ts 1; evicting it mid-stream must not
        // let any dispatch go backwards.
        p.evict(2).unwrap();
        p.drain_available(&mut out);
        p.close(0).unwrap();
        p.close(1).unwrap();
        p.drain_available(&mut out);
        assert!(p.is_exhausted());
        assert_eq!(out.len(), 6);
        assert!(
            out.windows(2).all(|w| w[0].ts_bef() <= w[1].ts_bef()),
            "dispatch order regressed after eviction"
        );
    }

    #[test]
    fn pinning_client_is_none_when_idle_or_fetchable() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        // Nothing buffered: no dispatch is blocked, so no pin.
        assert_eq!(p.pinning_client(), None);
        p.push(0, t(0, 5, 6)).unwrap();
        // Client 1 is silent at ZERO and blocks client 0's trace.
        assert_eq!(p.pinning_client(), Some(1));
        p.push(1, t(1, 3, 4)).unwrap();
        // The smallest bound now heads a non-empty buffer: fetchable.
        assert_eq!(p.pinning_client(), None);
    }

    #[test]
    fn force_dispatch_flushes_everything_in_order() {
        let mut p = TwoLevelPipeline::new(3, PipelineConfig::default());
        for ts in [10u64, 20, 30] {
            p.push(0, t(0, ts, ts + 1)).unwrap();
        }
        p.push(1, t(1, 15, 16)).unwrap();
        // Client 2 is silent at ZERO: nothing is provably dispatchable.
        assert_eq!(p.try_dispatch(), None);
        let mut out = Vec::new();
        let n = p.force_dispatch(&mut out);
        assert_eq!(n, 4);
        let times: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(times, vec![10, 15, 20, 30]);
        assert_eq!(p.stats().forced_dispatches, 1);
        assert_eq!(p.global_len() + p.local_len(), 0);
    }

    #[test]
    fn straggler_below_forced_floor_is_shed_not_reordered() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        p.push(0, t(0, 10, 11)).unwrap();
        let mut out = Vec::new();
        p.force_dispatch(&mut out);
        assert_eq!(out.len(), 1);
        // Client 1 now reports a trace from before the forced floor: it
        // cannot be dispatched in order any more, so it is shed (counted),
        // and the client's bound still advances.
        p.push(1, t(1, 5, 6)).unwrap();
        assert_eq!(p.stats().late_dropped, 1);
        // At-or-above the floor still flows normally.
        p.push(1, t(1, 10, 12)).unwrap();
        p.close(0).unwrap();
        p.close(1).unwrap();
        p.drain_available(&mut out);
        assert!(p.is_exhausted());
        let times: Vec<u64> = out.iter().map(|t| t.ts_bef().0).collect();
        assert_eq!(times, vec![10, 10]);
    }

    #[test]
    fn mem_usage_tracks_buffered_traces() {
        let mut p = TwoLevelPipeline::new(2, PipelineConfig::default());
        assert_eq!(p.mem_usage().entries, 0);
        for ts in [1u64, 2, 3] {
            p.push(0, t(0, ts, ts + 1)).unwrap();
        }
        let u = p.mem_usage();
        assert_eq!(u.entries, 3);
        assert_eq!(u.bytes, 3 * TRACE_APPROX_BYTES as u64);
        assert!(p.stats().peak_mem_bytes >= u.bytes);
        p.close(0).unwrap();
        p.close(1).unwrap();
        let mut out = Vec::new();
        p.drain_available(&mut out);
        assert_eq!(p.mem_usage().entries, 0);
    }

    #[test]
    fn stats_track_progress() {
        let mut p = TwoLevelPipeline::new(1, PipelineConfig::default());
        for i in 0..10u64 {
            p.push(0, t(0, i, i + 1)).unwrap();
        }
        p.close(0).unwrap();
        let out = run_to_completion(&mut p);
        let s = p.stats();
        assert_eq!(out.len(), 10);
        assert_eq!(s.dispatched, 10);
        assert_eq!(s.fetched, 10);
        assert!(s.max_total_buffered >= 10);
        assert!(s.rounds >= 1);
    }
}
