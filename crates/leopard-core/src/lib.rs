//! # Leopard: black-box verification of database isolation levels
//!
//! A from-scratch Rust implementation of *Leopard: A Black-Box Approach for
//! Efficiently Verifying Various Isolation Levels* (ICDE 2023).
//!
//! Leopard verifies that a DBMS actually delivers the isolation level it
//! promises, using nothing but **interval-based traces** collected at the
//! clients: for every operation, the timestamps just before and just after
//! the call, plus the data it touched. No DBMS instrumentation, no
//! constraints on the workload.
//!
//! The crate has two halves, mirroring the paper's architecture (Fig. 2):
//!
//! * [`pipeline`] — the *Tracer*: a two-level pipeline (per-client local
//!   buffers + a watermarked global min-heap) that merges the per-client
//!   trace streams into one stream sorted by `ts_bef`, online and with
//!   bounded memory (§IV-C, Theorem 1 — enforced, not just stated: the
//!   [`budget`] module's [`MemBudget`] caps the chain, bounded
//!   backpressure channels couple ingest to verification rate
//!   ([`ChannelTracer::with_backpressure`]), and the online governor
//!   ([`online`]) drives watermark GC plus a graduated shedding ladder
//!   when the cap is hit).
//! * [`verify`] — the *Verifier*: mechanism-mirrored verification (§V).
//!   Instead of searching a giant dependency graph for cycles, it mirrors
//!   the four mechanisms every commercial DBMS assembles its isolation
//!   levels from — consistent read, mutual exclusion, first updater wins,
//!   and a serialization certifier — and checks each directly against the
//!   trace intervals.
//!
//! ## Quick start
//!
//! ```
//! use leopard_core::{
//!     IsolationLevel, Key, TraceBuilder, Value, Verifier, VerifierConfig,
//! };
//!
//! // Traces normally come from the pipeline; build a tiny history by hand.
//! let mut history = TraceBuilder::new();
//! history.write(10, 12, 0, 1, vec![(1, 42)]); // t1 writes key 1 := 42
//! history.commit(13, 15, 0, 1);
//! history.read(20, 22, 1, 2, vec![(1, 42)]); // t2 reads 42
//! history.commit(23, 25, 1, 2);
//!
//! let mut verifier = Verifier::new(VerifierConfig::for_level(IsolationLevel::Serializable));
//! verifier.preload(Key(1), Value(0));
//! for trace in history.build_sorted() {
//!     verifier.process(&trace);
//! }
//! let outcome = verifier.finish();
//! assert!(outcome.report.is_clean());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod capture;
pub mod catalog;
pub mod checkpoint;
pub mod fxhash;
pub mod interval;
pub mod lockwitness;
pub mod obs;
pub mod online;
pub mod pipeline;
pub mod preflight;
pub mod report;
pub mod serve;
pub mod stats;
pub mod store;
pub mod trace;
pub mod types;
pub mod verify;
pub mod wire;

pub use budget::{BudgetCounters, MemBudget, MemUsage};
pub use capture::{CaptureError, CaptureHeader, CaptureReader, CaptureWriter, CAPTURE_VERSION};
pub use catalog::{
    catalog, CertifierRule, DbmsProfile, IsolationLevel, MechanismSet, SnapshotLevel,
};
pub use checkpoint::{
    Checkpoint, CheckpointError, PendingReadSnap, ShardedCheckpoint, CHECKPOINT_VERSION,
};
pub use interval::{Interval, PairOrder};
pub use lockwitness::{TrackedMutex, TrackedMutexGuard};
pub use obs::{ObsSnapshot, Registry};
pub use online::{FinishTimeout, OnlineLeopard, OnlineOptions};
pub use pipeline::{
    Backpressure, ChannelTracer, ClientHandle, PipelineConfig, PipelineStats, TwoLevelPipeline,
    TRACE_APPROX_BYTES,
};
pub use preflight::{
    DiagCode, Diagnostic, PreflightAnalyzer, PreflightConfig, PreflightReport, QuarantineGate,
    Severity,
};
pub use report::{BugReport, Mechanism, Violation};
pub use serve::{
    control_command, ingest_capture, Endpoint, IngestError, ServeOptions, Server, ServerHandle,
    StreamInfo, StreamState, StreamVerdict, WireConn,
};
pub use stats::{DeductionStats, DepCounts, DepKind};
pub use store::{
    FaultIo, FaultSpec, FsIo, GenChain, GenLoad, RetryPolicy, SpillSettings, SpillStats, SpillTier,
    StoreError, StoreIo,
};
pub use trace::{OpKind, Trace, TraceBuilder};
pub use types::{ClientId, Key, Timestamp, TxnId, Value};
pub use verify::{
    Coverage, Footprint, ShardedVerifier, Verifier, VerifierConfig, VerifyCounters, VerifyOutcome,
    MAX_COVERAGE_NOTES,
};
pub use wire::{Frame, FrameDecoder, Hello, RejectReason, TraceFrame, WireError, WIRE_VERSION};
