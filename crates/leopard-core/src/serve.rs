//! The `leopard serve` daemon: a long-running, fault-isolated,
//! multi-tenant verification service (DESIGN.md §12).
//!
//! Many concurrent capture streams connect over the binary wire protocol
//! ([`crate::wire`]); each stream gets its own degraded-mode
//! [`Verifier`] on its own connection thread, so one tenant's ill-formed
//! input — or a panic inside its verifier — is quarantined into a
//! degraded verdict without touching its neighbors. Global admission
//! control ([`GlobalAdmission`]) refuses handshakes the shared memory
//! pool cannot cover. Every stream is checkpointed durably every
//! `checkpoint_every` ingested traces and on disconnect, keyed by stream
//! name under the checkpoint directory; on restart the daemon re-opens
//! every checkpoint it finds, and a reconnecting client is told the
//! resume cursor in the handshake `Ack`, so a `kill -9` mid-stream
//! converges to a final verdict and checkpoint byte-identical to an
//! uninterrupted run.
//!
//! A second (control) endpoint serves the [`crate::obs`] registry's
//! Prometheus exposition and a tiny line protocol: `metrics`, `streams`,
//! `drain` (stop accepting new streams), `shutdown` (flush all stream
//! checkpoints and exit). `GET /metrics` over the same socket answers
//! with a minimal HTTP response, so a stock Prometheus scraper can point
//! at it directly.

use crate::budget::{GlobalAdmission, MemBudget};
use crate::capture::CaptureReader;
use crate::catalog::{IsolationLevel, MechanismSet};
use crate::checkpoint::{write_atomic_durable, Checkpoint, CheckpointError};
use crate::lockwitness::TrackedMutex;
use crate::obs;
use crate::verify::{Verifier, VerifierConfig, VerifyOutcome};
use crate::wire::{
    read_frame, write_frame, Frame, FrameDecoder, Hello, RejectReason, TraceFrame, WireError,
    WIRE_VERSION,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked socket reads wake up to check the shutdown/drain
/// flags, and how often the accept loops poll.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// An ingest or control endpoint address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address in `host:port` form.
    Tcp(String),
}

impl Endpoint {
    /// Parses `unix:<path>` or `tcp:<host:port>`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a path: unix:/some/path.sock".to_string());
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            if !addr.contains(':') {
                return Err("tcp endpoint needs host:port: tcp:127.0.0.1:7878".to_string());
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "endpoint must start with unix: or tcp: (got {s:?})"
            ))
        }
    }

    /// Connects a client socket to this endpoint.
    pub fn connect(&self) -> std::io::Result<WireConn> {
        match self {
            Endpoint::Unix(path) => Ok(WireConn::Unix(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => Ok(WireConn::Tcp(TcpStream::connect(addr.as_str())?)),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// One bidirectional wire connection (either transport).
#[derive(Debug)]
pub enum WireConn {
    /// Unix-domain socket.
    Unix(UnixStream),
    /// TCP socket.
    Tcp(TcpStream),
}

impl WireConn {
    /// Sets the read timeout (used by the server to poll shutdown flags).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            WireConn::Unix(s) => s.set_read_timeout(dur),
            WireConn::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Shuts down the write half, signalling end-of-stream to the peer.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        match self {
            WireConn::Unix(s) => s.shutdown(std::net::Shutdown::Write),
            WireConn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl Read for WireConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            WireConn::Unix(s) => s.read(buf),
            WireConn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for WireConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            WireConn::Unix(s) => s.write(buf),
            WireConn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            WireConn::Unix(s) => s.flush(),
            WireConn::Tcp(s) => s.flush(),
        }
    }
}

enum AnyListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl AnyListener {
    fn bind(ep: &Endpoint) -> std::io::Result<AnyListener> {
        match ep {
            Endpoint::Unix(path) => {
                // A stale socket file from a killed daemon would fail the
                // bind; remove it first (crash recovery is a feature).
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(AnyListener::Unix(l))
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Ok(AnyListener::Tcp(l))
            }
        }
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    fn accept(&self) -> std::io::Result<Option<WireConn>> {
        match self {
            AnyListener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(WireConn::Unix(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            AnyListener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(WireConn::Tcp(s))),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory holding per-stream checkpoints and verdicts. Created if
    /// missing; scanned for existing checkpoints on startup.
    pub checkpoint_dir: PathBuf,
    /// Checkpoint every N ingested traces per stream (also on disconnect
    /// and on shutdown). Checkpoints land on exact multiples of N, which
    /// is what makes interrupted and uninterrupted runs byte-identical.
    pub checkpoint_every: u64,
    /// Global admission pool in bytes (0 = unlimited).
    pub global_budget_bytes: u64,
    /// Disk-spilling backing tier for cold verifier state, one private
    /// subdirectory per stream. `None` (the default) keeps every stream
    /// fully in memory. When set, stream checkpoints are written through
    /// the generation chain (manifest + CRC-verified generations with
    /// corrupt-head fallback at resume).
    pub spill: Option<crate::store::SpillSettings>,
    /// Retry schedule for periodic stream-checkpoint writes: transient
    /// I/O failures back off and retry; only repeated failure degrades
    /// the stream.
    pub checkpoint_retry: crate::store::RetryPolicy,
}

impl ServeOptions {
    /// Options with the default cadence (every 512 traces) and an
    /// unlimited admission pool.
    #[must_use]
    pub fn new(checkpoint_dir: PathBuf) -> ServeOptions {
        ServeOptions {
            checkpoint_dir,
            checkpoint_every: 512,
            global_budget_bytes: 0,
            spill: None,
            checkpoint_retry: crate::store::RetryPolicy::default(),
        }
    }
}

/// The per-stream spill settings: the daemon-wide configuration rooted
/// at a private `spill/<stream>` subdirectory, so tenant tiers never
/// share segment files.
fn stream_spill_settings(opts: &ServeOptions, stream: &str) -> Option<crate::store::SpillSettings> {
    opts.spill.as_ref().map(|s| {
        let mut per = s.clone();
        per.dir = s.dir.join(sanitize_stream_name(stream));
        per
    })
}

/// Lifecycle of one stream as the registry tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamState {
    /// A connection is feeding the stream right now.
    Active,
    /// No live connection; a checkpoint holds the resume cursor.
    Idle,
    /// Finished cleanly; the verdict file is on disk.
    Finished,
    /// Quarantined into a degraded verdict (malformed input or panic).
    Quarantined,
}

impl StreamState {
    /// Lower-case label used in stream listings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StreamState::Active => "active",
            StreamState::Idle => "idle",
            StreamState::Finished => "finished",
            StreamState::Quarantined => "quarantined",
        }
    }
}

/// One row of the `streams` control listing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamInfo {
    /// Stream (tenant) name from the handshake.
    pub stream: String,
    /// Isolation level label (`RC`/`RR`/`SI`/`SR`, `-` if unknown).
    pub level: String,
    /// Current state label.
    pub state: String,
    /// Ingest cursor: traces admitted so far.
    pub ingested: u64,
}

/// The final verdict document for one stream — written durably next to
/// the stream's checkpoint and returned in the `Verdict` frame. The JSON
/// serialization of this struct is the byte-identity surface of the
/// kill-recovery guarantee.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamVerdict {
    /// Stream name.
    pub stream: String,
    /// Isolation level verified.
    pub level: String,
    /// `"ok"` for a finished verification, `"quarantined"` for a stream
    /// aborted by malformed input or a verifier panic.
    pub status: String,
    /// Traces ingested.
    pub traces: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Violations found.
    pub violations: u64,
    /// True when no violations were found.
    pub clean: bool,
    /// True when coverage is complete (no quarantine/demotion holes).
    pub complete: bool,
    /// Traces quarantined by degraded-mode admission.
    pub quarantined_traces: u64,
    /// Reads demoted to unverifiable in degraded mode.
    pub demoted_reads: u64,
}

impl StreamVerdict {
    /// Serializes to the canonical verdict JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("verdict serializes")
    }

    /// Parses a verdict JSON document.
    pub fn from_json(json: &str) -> Result<StreamVerdict, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

struct StreamEntry {
    name: String,
    level: String,
    state: StreamState,
    ingested: u64,
}

struct Shared {
    opts: ServeOptions,
    admission: GlobalAdmission,
    streams: TrackedMutex<Vec<StreamEntry>>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
}

impl Shared {
    fn update_stream(&self, name: &str, level: &str, state: StreamState, ingested: u64) {
        let mut streams = self.streams.lock();
        if let Some(e) = streams.iter_mut().find(|e| e.name == name) {
            e.state = state;
            e.ingested = ingested;
            if level != "-" {
                e.level = level.to_string();
            }
        } else {
            streams.push(StreamEntry {
                name: name.to_string(),
                level: level.to_string(),
                state,
                ingested,
            });
        }
    }

    fn stream_infos(&self) -> Vec<StreamInfo> {
        let mut rows: Vec<StreamInfo> = self
            .streams
            .lock()
            .iter()
            .map(|e| StreamInfo {
                stream: e.name.clone(),
                level: e.level.clone(),
                state: e.state.label().to_string(),
                ingested: e.ingested,
            })
            .collect();
        rows.sort_by(|a, b| a.stream.cmp(&b.stream));
        rows
    }
}

/// A handle for poking a running [`Server`] from another thread: drain,
/// shut down, list streams.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Stops accepting new streams; existing streams keep running.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Asks the daemon to flush every active stream's checkpoint and
    /// exit. [`Server::run`] returns once all connection threads have
    /// finished their final checkpoints.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Current stream listing, sorted by name.
    #[must_use]
    pub fn streams(&self) -> Vec<StreamInfo> {
        self.shared.stream_infos()
    }
}

/// The daemon: an ingest listener, an optional control listener, and the
/// shared stream registry.
pub struct Server {
    ingest: AnyListener,
    control: Option<AnyListener>,
    shared: Arc<Shared>,
}

/// Maps a tenant-supplied stream name to a safe file stem: alphanumerics,
/// `-`, `_` and interior dots survive; everything else becomes `_`, and a
/// leading dot is masked so names cannot hide or traverse.
#[must_use]
pub fn sanitize_stream_name(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        s.push('_');
    }
    if s.starts_with('.') {
        s.replace_range(..1, "_");
    }
    s
}

/// The checkpoint path for a stream name under `dir`.
#[must_use]
pub fn stream_checkpoint_path(dir: &Path, stream: &str) -> PathBuf {
    dir.join(format!("{}.ckpt", sanitize_stream_name(stream)))
}

/// The verdict path for a stream name under `dir`.
#[must_use]
pub fn stream_verdict_path(dir: &Path, stream: &str) -> PathBuf {
    dir.join(format!("{}.verdict.json", sanitize_stream_name(stream)))
}

/// Derives the isolation-level label back out of a checkpointed
/// mechanism assembly (checkpoints store mechanisms, not level names).
fn level_label_of(mechanisms: &MechanismSet) -> String {
    for level in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::RepeatableRead,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializable,
    ] {
        if MechanismSet::postgres(level) == *mechanisms {
            return level.to_string();
        }
    }
    "-".to_string()
}

/// The verifier configuration a serve stream runs with: the handshake's
/// level and budget, degraded mode always on (a multi-tenant daemon must
/// absorb ill-formed input, not corrupt itself on it).
#[must_use]
pub fn stream_config(level: IsolationLevel, mem_budget: u64) -> VerifierConfig {
    let mut vcfg = VerifierConfig::for_level(level);
    vcfg.degraded = true;
    if mem_budget != 0 {
        vcfg.mem_budget = MemBudget::bytes(mem_budget);
    }
    vcfg
}

impl Server {
    /// Binds the ingest (and optional control) endpoints, creates the
    /// checkpoint directory, and recovers every stream checkpoint found
    /// in it into the registry as an idle, resumable stream.
    pub fn bind(
        ingest: &Endpoint,
        control: Option<&Endpoint>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        std::fs::create_dir_all(&opts.checkpoint_dir)?;
        let ingest_l = AnyListener::bind(ingest)?;
        let control_l = match control {
            Some(ep) => Some(AnyListener::bind(ep)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            admission: GlobalAdmission::new(opts.global_budget_bytes),
            opts,
            streams: TrackedMutex::new("Server.streams", Vec::new()),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
        });
        let server = Server {
            ingest: ingest_l,
            control: control_l,
            shared,
        };
        server.recover_streams()?;
        Ok(server)
    }

    /// Scans the checkpoint directory and registers every parseable
    /// stream checkpoint as idle with its resume cursor. Unparseable or
    /// temporary files are skipped — recovery must never refuse to start
    /// over one bad file.
    fn recover_streams(&self) -> std::io::Result<()> {
        for entry in std::fs::read_dir(&self.shared.opts.checkpoint_dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name.strip_suffix(".ckpt") else {
                continue;
            };
            match Checkpoint::read_chained(&path) {
                Ok((ckpt, _warning)) => {
                    let level = level_label_of(&ckpt.config.mechanisms);
                    self.shared.update_stream(
                        stem,
                        &level,
                        StreamState::Idle,
                        ckpt.traces_ingested,
                    );
                }
                Err(_) => continue,
            }
        }
        Ok(())
    }

    /// A control handle usable from other threads (signal watchers, the
    /// embedding test) while [`Server::run`] blocks.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the daemon: accepts ingest and control connections until
    /// shutdown is requested, then waits for every connection thread to
    /// flush its final checkpoint before returning.
    pub fn run(self) -> std::io::Result<()> {
        obs::set_enabled(true);
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut accepted = false;
            if let Some(conn) = self.ingest.accept()? {
                accepted = true;
                let shared = Arc::clone(&self.shared);
                shared.active_conns.fetch_add(1, Ordering::SeqCst);
                workers.push(std::thread::spawn(move || {
                    // The connection thread owns the decrement; a panic
                    // inside handle_stream is already caught per-trace,
                    // and a panic elsewhere in the handler only kills
                    // this thread, never the daemon.
                    let _guard = ConnGuard(Arc::clone(&shared));
                    handle_ingest_conn(&shared, conn);
                }));
            }
            if let Some(ctrl) = &self.control {
                if let Some(conn) = ctrl.accept()? {
                    accepted = true;
                    let shared = Arc::clone(&self.shared);
                    handle_control_conn(&shared, conn);
                }
            }
            workers.retain(|w| !w.is_finished());
            if !accepted {
                std::thread::sleep(POLL_INTERVAL);
            }
        }
        // Shutdown: connection threads see the flag at their next poll
        // tick, flush checkpoints, and exit; join them all.
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What the framed-read loop yielded.
enum NextFrame {
    Frame(Frame),
    /// Peer closed cleanly at a frame boundary.
    Eof,
    /// Shutdown was requested while waiting.
    Stop,
    /// The stream is undecodable from here on.
    Bad(WireError),
}

/// Reads the next frame, polling the shutdown flag during quiet periods.
fn next_frame(sock: &mut WireConn, dec: &mut FrameDecoder, shared: &Shared) -> NextFrame {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match dec.next_frame() {
            Ok(Some(f)) => {
                obs::ctr(obs::Counter::WireFrames, 1);
                return NextFrame::Frame(f);
            }
            Ok(None) => {}
            Err(e) => {
                obs::ctr_always(obs::Counter::WireDecodeErrors, 1);
                return NextFrame::Bad(e);
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return NextFrame::Stop;
        }
        match sock.read(&mut buf) {
            Ok(0) => {
                // A torn trailing frame is what a killed client leaves
                // behind — indistinguishable from a crash, so it is a
                // disconnect (checkpoint + resume), never a quarantine.
                // Everything up to the tear was checksummed and ingested.
                return NextFrame::Eof;
            }
            Ok(n) => {
                obs::ctr(obs::Counter::WireBytes, n as u64);
                dec.extend(&buf[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return NextFrame::Bad(WireError::Io(e)),
        }
    }
}

fn send(sock: &mut WireConn, frame: &Frame) {
    if write_frame(sock, frame).is_ok() {
        let _ = sock.flush();
    }
}

fn reject(sock: &mut WireConn, reason: RejectReason, message: &str) {
    obs::ctr(obs::Counter::StreamsRejected, 1);
    send(
        sock,
        &Frame::Reject {
            reason,
            message: message.to_string(),
        },
    );
}

/// Chaos hook: `LEOPARD_SERVE_PANIC_AT=<stream-substring>:<seq>` makes
/// the verifier panic while ingesting that sequence number of matching
/// streams — the fault-isolation tests use it to prove a panicking
/// tenant cannot take its neighbors down.
fn panic_injection_for(stream: &str) -> Option<u64> {
    let spec = std::env::var("LEOPARD_SERVE_PANIC_AT").ok()?;
    let (substr, seq) = spec.rsplit_split_once()?;
    if stream.contains(substr) {
        seq.parse().ok()
    } else {
        None
    }
}

/// Helper trait so the hook parses `"name:7"` without unstable API.
trait RSplitOnce {
    fn rsplit_split_once(&self) -> Option<(&str, &str)>;
}

impl RSplitOnce for String {
    fn rsplit_split_once(&self) -> Option<(&str, &str)> {
        let idx = self.rfind(':')?;
        Some((&self[..idx], &self[idx + 1..]))
    }
}

/// Handles one ingest connection, start to finish.
fn handle_ingest_conn(shared: &Shared, mut sock: WireConn) {
    let _ = sock.set_read_timeout(Some(POLL_INTERVAL));
    let mut dec = FrameDecoder::new();

    // --- Handshake -----------------------------------------------------
    let hello = match next_frame(&mut sock, &mut dec, shared) {
        NextFrame::Frame(Frame::Hello(h)) => h,
        NextFrame::Frame(_) => {
            reject(&mut sock, RejectReason::Malformed, "expected Hello first");
            return;
        }
        NextFrame::Bad(e) => {
            reject(&mut sock, RejectReason::Malformed, &e.to_string());
            return;
        }
        NextFrame::Eof | NextFrame::Stop => return,
    };
    if hello.version != WIRE_VERSION {
        reject(
            &mut sock,
            RejectReason::Version,
            &format!(
                "wire version {} not supported (want {WIRE_VERSION})",
                hello.version
            ),
        );
        return;
    }
    if shared.draining.load(Ordering::SeqCst) {
        reject(&mut sock, RejectReason::Draining, "server is draining");
        return;
    }
    // One live connection per stream name.
    {
        let streams = shared.streams.lock();
        if streams
            .iter()
            .any(|e| e.name == hello.stream && e.state == StreamState::Active)
        {
            drop(streams);
            reject(
                &mut sock,
                RejectReason::Admission,
                "stream is already being fed by another connection",
            );
            return;
        }
    }
    let Some(grant) = shared.admission.admit(hello.mem_budget) else {
        reject(
            &mut sock,
            RejectReason::Admission,
            &format!(
                "global budget exhausted ({}/{} bytes granted)",
                shared.admission.outstanding(),
                shared.admission.capacity()
            ),
        );
        return;
    };

    // --- Build or resume the stream's verifier -------------------------
    let vcfg = stream_config(hello.level, hello.mem_budget);
    let ckpt_path = stream_checkpoint_path(&shared.opts.checkpoint_dir, &hello.stream);
    let spill_settings = stream_spill_settings(&shared.opts, &hello.stream);
    let (verifier, mut cursor) = if ckpt_path.exists() {
        match Checkpoint::read_chained(&ckpt_path).and_then(|(ckpt, warning)| {
            Verifier::from_checkpoint(&ckpt).map(|v| (ckpt, warning, v))
        }) {
            Ok((ckpt, warning, mut v)) => {
                if ckpt.config != vcfg {
                    reject(
                        &mut sock,
                        RejectReason::Malformed,
                        "handshake configuration differs from the stream's checkpoint",
                    );
                    return;
                }
                if let Some(w) = warning {
                    // Generation fallback: degraded-but-safe — the older
                    // image plus the resume cursor reaches the identical
                    // verdict, so warn in coverage instead of aborting.
                    v.note_degraded_load(&w);
                }
                match spill_settings.as_ref() {
                    Some(s) => match crate::store::SpillTier::open(s) {
                        Ok(tier) => v.resume_spill(tier, &ckpt.spill),
                        Err(e) if ckpt.spill.is_empty() => {
                            v.note_spill_unavailable(&e.to_string());
                        }
                        Err(e) => {
                            reject(
                                &mut sock,
                                RejectReason::Malformed,
                                &format!(
                                    "checkpoint references {} spilled records but the \
                                     spill tier cannot be opened: {e}",
                                    ckpt.spill.len()
                                ),
                            );
                            return;
                        }
                    },
                    None if !ckpt.spill.is_empty() => {
                        reject(
                            &mut sock,
                            RejectReason::Malformed,
                            &format!(
                                "checkpoint references {} spilled records but the daemon \
                                 has no spill directory configured",
                                ckpt.spill.len()
                            ),
                        );
                        return;
                    }
                    None => {}
                }
                (v, ckpt.traces_ingested)
            }
            Err(e) => {
                reject(
                    &mut sock,
                    RejectReason::Malformed,
                    &format!("cannot resume stream checkpoint: {e}"),
                );
                return;
            }
        }
    } else {
        let mut v = Verifier::new(vcfg);
        if let Some(s) = spill_settings.as_ref() {
            match crate::store::SpillTier::open(s) {
                Ok(tier) => v.attach_spill(tier),
                Err(e) => v.note_spill_unavailable(&e.to_string()),
            }
        }
        for &(k, val) in &hello.preload {
            v.preload(k, val);
        }
        (v, 0)
    };

    let level_label = hello.level.to_string();
    shared.update_stream(&hello.stream, &level_label, StreamState::Active, cursor);
    obs::ctr(obs::Counter::StreamsAccepted, 1);
    send(
        &mut sock,
        &Frame::Ack {
            resume_from: cursor,
        },
    );

    let panic_at = panic_injection_for(&hello.stream);
    let mut verifier = Some(verifier);
    let every = shared.opts.checkpoint_every.max(1);

    let quarantine = |shared: &Shared, sock: &mut WireConn, cursor: u64, why: &str| {
        obs::ctr(obs::Counter::StreamsQuarantined, 1);
        let verdict = StreamVerdict {
            stream: hello.stream.clone(),
            level: level_label.clone(),
            status: "quarantined".to_string(),
            traces: cursor,
            committed: 0,
            violations: 0,
            clean: false,
            complete: false,
            quarantined_traces: 0,
            demoted_reads: 0,
        };
        let vpath = stream_verdict_path(&shared.opts.checkpoint_dir, &hello.stream);
        let _ = write_atomic_durable(&vpath, &verdict.to_json());
        shared.update_stream(
            &hello.stream,
            &level_label,
            StreamState::Quarantined,
            cursor,
        );
        reject(sock, RejectReason::Quarantined, why);
    };

    // --- Ingest loop ---------------------------------------------------
    loop {
        match next_frame(&mut sock, &mut dec, shared) {
            NextFrame::Frame(Frame::Trace(tf)) => {
                if tf.seq <= cursor {
                    // Duplicate delivery (chaos or a cautious resender):
                    // idempotently dropped.
                    continue;
                }
                if tf.seq != cursor + 1 {
                    quarantine(
                        shared,
                        &mut sock,
                        cursor,
                        &format!("sequence gap: expected {} got {}", cursor + 1, tf.seq),
                    );
                    return;
                }
                let v = verifier.as_mut().map(|v| ingest_one(v, &tf, panic_at));
                match v {
                    Some(Ok(())) => {
                        // An unrecoverable spill-store fault latches the
                        // verifier (the trace was refused, the cursor must
                        // not advance): surface the typed error, never a
                        // wrong verdict.
                        if let Some(e) = verifier.as_ref().and_then(Verifier::store_fault) {
                            let why = format!("spill store fault: {e}");
                            quarantine(shared, &mut sock, cursor, &why);
                            return;
                        }
                        cursor += 1;
                        if cursor % every == 0 {
                            if let Some(v) = verifier.as_mut() {
                                if let Err(e) = write_stream_checkpoint_retry(
                                    v,
                                    cursor,
                                    &ckpt_path,
                                    &shared.opts.checkpoint_retry,
                                ) {
                                    quarantine(
                                        shared,
                                        &mut sock,
                                        cursor,
                                        &format!("checkpoint write failed: {e}"),
                                    );
                                    return;
                                }
                            }
                        }
                    }
                    Some(Err(panic_msg)) => {
                        // The verifier panicked mid-trace; its invariants
                        // are suspect, so it is dropped, not checkpointed.
                        quarantine(
                            shared,
                            &mut sock,
                            cursor,
                            &format!("verifier panicked: {panic_msg}"),
                        );
                        return;
                    }
                    None => return,
                }
            }
            NextFrame::Frame(Frame::Bye { traces_sent }) => {
                if traces_sent != cursor {
                    quarantine(
                        shared,
                        &mut sock,
                        cursor,
                        &format!("client sent {traces_sent} traces, server ingested {cursor}"),
                    );
                    return;
                }
                let Some(v) = verifier.take() else { return };
                match finalize_stream(shared, &hello.stream, &level_label, v, cursor, &ckpt_path) {
                    Ok(verdict) => {
                        shared.update_stream(
                            &hello.stream,
                            &level_label,
                            StreamState::Finished,
                            cursor,
                        );
                        send(
                            &mut sock,
                            &Frame::Verdict {
                                json: verdict.to_json(),
                            },
                        );
                    }
                    Err(e) => {
                        quarantine(shared, &mut sock, cursor, &format!("finalize failed: {e}"));
                    }
                }
                drop(grant);
                return;
            }
            NextFrame::Frame(_) => {
                quarantine(shared, &mut sock, cursor, "unexpected frame mid-stream");
                return;
            }
            NextFrame::Bad(e) => {
                quarantine(shared, &mut sock, cursor, &e.to_string());
                return;
            }
            NextFrame::Eof | NextFrame::Stop => {
                // Disconnect (or daemon shutdown) without Bye: persist the
                // cursor so a reconnect resumes exactly here.
                if let Some(v) = verifier.as_mut() {
                    let _ = write_stream_checkpoint_retry(
                        v,
                        cursor,
                        &ckpt_path,
                        &shared.opts.checkpoint_retry,
                    );
                }
                shared.update_stream(&hello.stream, &level_label, StreamState::Idle, cursor);
                return;
            }
        }
    }
}

/// Feeds one trace, catching panics so a poisoned tenant stream cannot
/// unwind into the daemon. Returns the panic payload text on panic.
fn ingest_one(v: &mut Verifier, tf: &TraceFrame, panic_at: Option<u64>) -> Result<(), String> {
    let seq = tf.seq;
    let trace = tf.trace.clone();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if panic_at == Some(seq) {
            panic!("injected fault (LEOPARD_SERVE_PANIC_AT) at seq {seq}");
        }
        v.process(&trace);
    }));
    result.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())
    })
}

/// Writes the stream's checkpoint with its ingest cursor patched in.
/// With a spill tier attached the tier is synced first (so the image
/// never references unsynced pages) and the image is written through the
/// generation chain, keeping the previous generation as a CRC-verified
/// fallback.
fn write_stream_checkpoint(v: &Verifier, cursor: u64, path: &Path) -> Result<(), CheckpointError> {
    let mut ckpt = v.checkpoint();
    ckpt.traces_ingested = cursor;
    if v.spill_attached() {
        v.sync_spill().map_err(|e| match e {
            crate::store::StoreError::Io(io) => CheckpointError::Io(io),
            other => CheckpointError::Malformed(other.to_string()),
        })?;
        ckpt.write_chained(path)?;
    } else {
        ckpt.write(path)?;
    }
    obs::ctr(obs::Counter::CheckpointsWritten, 1);
    Ok(())
}

/// Wraps [`write_stream_checkpoint`] in the daemon's jittered
/// [`crate::store::RetryPolicy`]: transient I/O failures back off and
/// retry; only repeated failure (or a non-retriable error) reaches the
/// caller and degrades the stream.
fn write_stream_checkpoint_retry(
    v: &Verifier,
    cursor: u64,
    path: &Path,
    retry: &crate::store::RetryPolicy,
) -> Result<(), CheckpointError> {
    retry
        .run(
            |_e| (),
            || {
                write_stream_checkpoint(v, cursor, path).map_err(|e| match e {
                    CheckpointError::Io(io) => crate::store::StoreError::Io(io),
                    other => crate::store::StoreError::Corrupt(other.to_string()),
                })
            },
        )
        .map_err(|e| match e {
            crate::store::StoreError::Io(io) => CheckpointError::Io(io),
            other => CheckpointError::Malformed(other.to_string()),
        })
}

/// Finishes a stream: final checkpoint at the terminal cursor, verdict
/// document written durably, verdict returned for the `Verdict` frame.
fn finalize_stream(
    shared: &Shared,
    stream: &str,
    level_label: &str,
    v: Verifier,
    cursor: u64,
    ckpt_path: &Path,
) -> Result<StreamVerdict, CheckpointError> {
    write_stream_checkpoint_retry(&v, cursor, ckpt_path, &shared.opts.checkpoint_retry)?;
    let outcome: VerifyOutcome = v.finish();
    if let Some(e) = outcome.store_fault.as_ref() {
        // Deferred checks flushed at finish may fault spilled records
        // back in; an unrecoverable failure there must surface as a
        // typed error, never as a verdict over partial state.
        return Err(CheckpointError::Malformed(format!(
            "spill store fault at finalize: {e}"
        )));
    }
    let verdict = StreamVerdict {
        stream: stream.to_string(),
        level: level_label.to_string(),
        status: "ok".to_string(),
        traces: outcome.counters.traces,
        committed: outcome.counters.committed,
        violations: outcome.report.violations.len() as u64,
        clean: outcome.report.is_clean(),
        complete: outcome.coverage.is_complete(),
        quarantined_traces: outcome.coverage.quarantined_traces,
        demoted_reads: outcome.coverage.demoted_reads,
    };
    let vpath = stream_verdict_path(&shared.opts.checkpoint_dir, stream);
    write_atomic_durable(&vpath, &verdict.to_json())?;
    Ok(verdict)
}

// -----------------------------------------------------------------------
// Control endpoint
// -----------------------------------------------------------------------

/// Handles one control connection: one line (or HTTP request line) in,
/// one response out, close. Runs inline on the accept loop — control
/// traffic is tiny and must work even when every worker is busy.
fn handle_control_conn(shared: &Shared, mut sock: WireConn) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let mut line = String::new();
    loop {
        match sock.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                line.push_str(&String::from_utf8_lossy(&buf[..n]));
                if line.contains('\n') {
                    break;
                }
                if line.len() > 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let first = line.lines().next().unwrap_or("").trim();
    let (http, command) = if let Some(rest) = first.strip_prefix("GET ") {
        let path = rest.split_whitespace().next().unwrap_or("/");
        let cmd = match path {
            "/metrics" => "metrics",
            "/streams" => "streams",
            _ => "",
        };
        (true, cmd)
    } else {
        (false, first)
    };
    let (status, body) = match command {
        "metrics" => ("200 OK", obs::render_prometheus()),
        "streams" => (
            "200 OK",
            serde_json::to_string(&shared.stream_infos()).unwrap_or_else(|_| "[]".to_string()),
        ),
        "drain" => {
            shared.draining.store(true, Ordering::SeqCst);
            ("200 OK", "ok draining\n".to_string())
        }
        "shutdown" => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.shutdown.store(true, Ordering::SeqCst);
            ("200 OK", "ok shutting down\n".to_string())
        }
        _ => (
            "404 Not Found",
            "unknown command (metrics|streams|drain|shutdown)\n".to_string(),
        ),
    };
    if http {
        let _ = write!(
            sock,
            "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
    } else {
        let _ = sock.write_all(body.as_bytes());
    }
    let _ = sock.flush();
}

// -----------------------------------------------------------------------
// Client side
// -----------------------------------------------------------------------

/// Why a client-side ingest failed.
#[derive(Debug)]
pub enum IngestError {
    /// Socket/file I/O failure.
    Io(std::io::Error),
    /// A protocol decode failure.
    Wire(WireError),
    /// The capture file could not be read.
    Capture(crate::capture::CaptureError),
    /// The server refused the stream.
    Rejected {
        /// Typed refusal class.
        reason: RejectReason,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered out of protocol.
    Protocol(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest i/o error: {e}"),
            IngestError::Wire(e) => write!(f, "ingest wire error: {e}"),
            IngestError::Capture(e) => write!(f, "ingest capture error: {e}"),
            IngestError::Rejected { reason, message } => {
                write!(f, "server rejected stream ({}): {message}", reason.label())
            }
            IngestError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<WireError> for IngestError {
    fn from(e: WireError) -> Self {
        IngestError::Wire(e)
    }
}

impl From<crate::capture::CaptureError> for IngestError {
    fn from(e: crate::capture::CaptureError) -> Self {
        IngestError::Capture(e)
    }
}

/// Streams a capture into a daemon over one connection: handshake,
/// traces the server has not already ingested, `Bye`, verdict. The
/// sequenced resume protocol makes calling this again after a daemon
/// crash (or client kill) converge on the same verdict.
pub fn ingest_capture<R: Read>(
    endpoint: &Endpoint,
    stream_name: &str,
    level: IsolationLevel,
    mem_budget: u64,
    reader: &mut CaptureReader<R>,
) -> Result<StreamVerdict, IngestError> {
    let mut sock = endpoint.connect()?;
    let header = reader.header().clone();
    write_frame(
        &mut sock,
        &Frame::Hello(Hello {
            version: WIRE_VERSION,
            stream: stream_name.to_string(),
            description: header.description,
            level,
            mem_budget,
            preload: header.preload,
        }),
    )?;
    sock.flush()?;
    let resume_from = match read_frame(&mut sock)? {
        Some(Frame::Ack { resume_from }) => resume_from,
        Some(Frame::Reject { reason, message }) => {
            return Err(IngestError::Rejected { reason, message })
        }
        other => {
            return Err(IngestError::Protocol(format!(
                "expected Ack, got {other:?}"
            )))
        }
    };
    let mut seq = 0u64;
    while let Some(trace) = reader.next_trace()? {
        seq += 1;
        if seq <= resume_from {
            continue;
        }
        write_frame(&mut sock, &Frame::Trace(TraceFrame { seq, trace }))?;
    }
    write_frame(&mut sock, &Frame::Bye { traces_sent: seq })?;
    sock.flush()?;
    match read_frame(&mut sock)? {
        Some(Frame::Verdict { json }) => {
            StreamVerdict::from_json(&json).map_err(IngestError::Protocol)
        }
        Some(Frame::Reject { reason, message }) => Err(IngestError::Rejected { reason, message }),
        other => Err(IngestError::Protocol(format!(
            "expected Verdict, got {other:?}"
        ))),
    }
}

/// Sends one control command (`metrics`, `streams`, `drain`, `shutdown`)
/// and returns the raw response body.
pub fn control_command(endpoint: &Endpoint, command: &str) -> std::io::Result<String> {
    let mut sock = endpoint.connect()?;
    sock.write_all(command.as_bytes())?;
    sock.write_all(b"\n")?;
    sock.flush()?;
    let _ = sock.shutdown_write();
    let mut body = String::new();
    sock.read_to_string(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{CaptureHeader, CaptureWriter, CAPTURE_VERSION};
    use crate::trace::{Trace, TraceBuilder};
    use crate::types::{Key, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("leopard-serve-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_capture_bytes(traces: &[Trace]) -> Vec<u8> {
        let header = CaptureHeader {
            version: CAPTURE_VERSION,
            description: "serve unit test".to_string(),
            preload: vec![(Key(1), Value(0))],
        };
        let mut bytes = Vec::new();
        let mut w = CaptureWriter::new(&mut bytes, &header).unwrap();
        for t in traces {
            w.write(t).unwrap();
        }
        w.finish().unwrap();
        bytes
    }

    fn clean_traces() -> Vec<Trace> {
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 42)]);
        b.commit(13, 15, 0, 1);
        b.read(20, 22, 1, 2, vec![(1, 42)]);
        b.commit(23, 25, 1, 2);
        b.build_sorted()
    }

    fn start_server(
        dir: &Path,
        tag: &str,
    ) -> (Endpoint, ServerHandle, std::thread::JoinHandle<()>) {
        let ingest = Endpoint::Unix(dir.join(format!("{tag}.sock")));
        let server = Server::bind(&ingest, None, ServeOptions::new(dir.join("ckpt"))).unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (ingest, handle, join)
    }

    #[test]
    fn stream_verdict_round_trips() {
        let v = StreamVerdict {
            stream: "s".into(),
            level: "SI".into(),
            status: "ok".into(),
            traces: 4,
            committed: 2,
            violations: 0,
            clean: true,
            complete: true,
            quarantined_traces: 0,
            demoted_reads: 0,
        };
        let back = StreamVerdict::from_json(&v.to_json()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn sanitizer_masks_hostile_names() {
        assert_eq!(sanitize_stream_name("tenant-a.prod"), "tenant-a.prod");
        assert_eq!(sanitize_stream_name("../../etc/passwd"), "_._.._etc_passwd");
        assert_eq!(sanitize_stream_name(""), "_");
        assert_eq!(sanitize_stream_name(".hidden"), "_hidden");
    }

    #[test]
    fn endpoint_parse_and_display() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").unwrap().to_string(),
            "unix:/tmp/x.sock"
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7878").unwrap().to_string(),
            "tcp:127.0.0.1:7878"
        );
        assert!(Endpoint::parse("udp:1234").is_err());
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:7878").is_err());
    }

    #[test]
    fn end_to_end_clean_stream() {
        let dir = temp_dir("e2e");
        let (ingest, handle, join) = start_server(&dir, "ingest");
        let bytes = sample_capture_bytes(&clean_traces());
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let verdict = ingest_capture(
            &ingest,
            "tenant-a",
            IsolationLevel::Serializable,
            0,
            &mut reader,
        )
        .unwrap();
        assert!(verdict.clean);
        assert!(verdict.complete);
        assert_eq!(verdict.traces, 4);
        assert_eq!(verdict.status, "ok");
        let listing = handle.streams();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].state, "finished");
        assert!(dir.join("ckpt").join("tenant-a.ckpt").exists());
        assert!(dir.join("ckpt").join("tenant-a.verdict.json").exists());
        handle.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_server_rejects_new_streams() {
        let dir = temp_dir("drain");
        let (ingest, handle, join) = start_server(&dir, "ingest");
        handle.drain();
        let bytes = sample_capture_bytes(&clean_traces());
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let err = ingest_capture(
            &ingest,
            "late",
            IsolationLevel::Serializable,
            0,
            &mut reader,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Rejected {
                reason: RejectReason::Draining,
                ..
            }
        ));
        handle.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_pool_refuses_oversized_streams() {
        let dir = temp_dir("admission");
        let ingest = Endpoint::Unix(dir.join("i.sock"));
        let mut opts = ServeOptions::new(dir.join("ckpt"));
        opts.global_budget_bytes = 1000;
        let server = Server::bind(&ingest, None, opts).unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        let bytes = sample_capture_bytes(&clean_traces());
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let err = ingest_capture(
            &ingest,
            "pig",
            IsolationLevel::Serializable,
            100_000,
            &mut reader,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Rejected {
                reason: RejectReason::Admission,
                ..
            }
        ));
        // A modest stream still fits.
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let verdict = ingest_capture(
            &ingest,
            "ok",
            IsolationLevel::Serializable,
            500,
            &mut reader,
        )
        .unwrap();
        assert!(verdict.clean);
        handle.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = temp_dir("version");
        let (ingest, handle, join) = start_server(&dir, "ingest");
        let mut sock = ingest.connect().unwrap();
        write_frame(
            &mut sock,
            &Frame::Hello(Hello {
                version: 99,
                stream: "future".to_string(),
                description: String::new(),
                level: IsolationLevel::Serializable,
                mem_budget: 0,
                preload: vec![],
            }),
        )
        .unwrap();
        sock.flush().unwrap();
        match read_frame(&mut sock).unwrap() {
            Some(Frame::Reject { reason, .. }) => assert_eq!(reason, RejectReason::Version),
            other => panic!("expected Reject, got {other:?}"),
        }
        handle.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_gap_quarantines_the_stream() {
        let dir = temp_dir("gap");
        let (ingest, handle, join) = start_server(&dir, "ingest");
        let mut sock = ingest.connect().unwrap();
        write_frame(
            &mut sock,
            &Frame::Hello(Hello {
                version: WIRE_VERSION,
                stream: "gappy".to_string(),
                description: String::new(),
                level: IsolationLevel::Serializable,
                mem_budget: 0,
                preload: vec![],
            }),
        )
        .unwrap();
        sock.flush().unwrap();
        assert!(matches!(
            read_frame(&mut sock).unwrap(),
            Some(Frame::Ack { resume_from: 0 })
        ));
        let traces = clean_traces();
        // seq 1 then seq 5: a gap.
        write_frame(
            &mut sock,
            &Frame::Trace(TraceFrame {
                seq: 1,
                trace: traces[0].clone(),
            }),
        )
        .unwrap();
        write_frame(
            &mut sock,
            &Frame::Trace(TraceFrame {
                seq: 5,
                trace: traces[1].clone(),
            }),
        )
        .unwrap();
        sock.flush().unwrap();
        match read_frame(&mut sock).unwrap() {
            Some(Frame::Reject { reason, .. }) => {
                assert_eq!(reason, RejectReason::Quarantined);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        // The quarantined verdict is on disk.
        let vjson = std::fs::read_to_string(dir.join("ckpt").join("gappy.verdict.json")).unwrap();
        let verdict = StreamVerdict::from_json(&vjson).unwrap();
        assert_eq!(verdict.status, "quarantined");
        assert!(!verdict.clean);
        handle.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disconnect_and_resume_reaches_identical_verdict_and_checkpoint() {
        let dir = temp_dir("resume");
        let traces = clean_traces();
        let bytes = sample_capture_bytes(&traces);

        // Uninterrupted reference run.
        let ref_dir = temp_dir("resume-ref");
        let (ingest_r, handle_r, join_r) = start_server(&ref_dir, "ingest");
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let ref_verdict =
            ingest_capture(&ingest_r, "t", IsolationLevel::Serializable, 0, &mut reader).unwrap();
        handle_r.shutdown();
        join_r.join().unwrap();
        let ref_ckpt = std::fs::read_to_string(ref_dir.join("ckpt").join("t.ckpt")).unwrap();

        // Interrupted run: send 2 traces, drop the connection, then
        // restart the whole daemon and replay from a fresh client.
        let (ingest, handle, join) = start_server(&dir, "ingest");
        {
            let mut sock = ingest.connect().unwrap();
            write_frame(
                &mut sock,
                &Frame::Hello(Hello {
                    version: WIRE_VERSION,
                    stream: "t".to_string(),
                    description: "serve unit test".to_string(),
                    level: IsolationLevel::Serializable,
                    mem_budget: 0,
                    preload: vec![(Key(1), Value(0))],
                }),
            )
            .unwrap();
            sock.flush().unwrap();
            assert!(matches!(
                read_frame(&mut sock).unwrap(),
                Some(Frame::Ack { resume_from: 0 })
            ));
            for (i, t) in traces.iter().take(2).enumerate() {
                write_frame(
                    &mut sock,
                    &Frame::Trace(TraceFrame {
                        seq: i as u64 + 1,
                        trace: t.clone(),
                    }),
                )
                .unwrap();
            }
            sock.flush().unwrap();
            // Drop without Bye — simulates a killed client.
        }
        // Daemon shutdown (flushes the stream checkpoint) + restart.
        handle.shutdown();
        join.join().unwrap();
        let ingest2 = Endpoint::Unix(dir.join("restart.sock"));
        let server = Server::bind(&ingest2, None, ServeOptions::new(dir.join("ckpt"))).unwrap();
        let recovered = server.handle().streams();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].state, "idle");
        assert_eq!(recovered[0].ingested, 2);
        let handle2 = server.handle();
        let join2 = std::thread::spawn(move || server.run().unwrap());
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        let verdict =
            ingest_capture(&ingest2, "t", IsolationLevel::Serializable, 0, &mut reader).unwrap();
        handle2.shutdown();
        join2.join().unwrap();

        assert_eq!(verdict, ref_verdict, "verdicts must be byte-identical");
        let ckpt = std::fs::read_to_string(dir.join("ckpt").join("t.ckpt")).unwrap();
        assert_eq!(ckpt, ref_ckpt, "final checkpoints must be byte-identical");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }

    #[test]
    fn control_endpoint_serves_metrics_streams_and_shutdown() {
        let dir = temp_dir("control");
        let ingest = Endpoint::Unix(dir.join("i.sock"));
        let control = Endpoint::Unix(dir.join("c.sock"));
        let server =
            Server::bind(&ingest, Some(&control), ServeOptions::new(dir.join("ckpt"))).unwrap();
        let join = std::thread::spawn(move || server.run().unwrap());
        let bytes = sample_capture_bytes(&clean_traces());
        let mut reader = CaptureReader::new(bytes.as_slice()).unwrap();
        ingest_capture(&ingest, "m", IsolationLevel::Serializable, 0, &mut reader).unwrap();

        let metrics = control_command(&control, "metrics").unwrap();
        assert!(
            metrics.contains("leopard_serve_streams_accepted_total"),
            "{metrics}"
        );
        let streams = control_command(&control, "streams").unwrap();
        assert!(streams.contains("\"m\""), "{streams}");
        // HTTP form.
        let mut sock = control.connect().unwrap();
        sock.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        sock.flush().unwrap();
        let _ = sock.shutdown_write();
        let mut resp = String::new();
        sock.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
        assert!(resp.contains("leopard_wire_frames_total"), "{resp}");

        let bye = control_command(&control, "shutdown").unwrap();
        assert!(bye.contains("ok"), "{bye}");
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
