//! Process-wide observability: metrics registry, stage spans, exporters.
//!
//! Leopard's value is *efficient online* verification, which makes the
//! engine's own behavior part of the product: where a streaming run
//! spends time (shard workers vs. the serial certifier), how far the
//! dispatch watermark lags the newest capture, and how often the
//! overload ladder fires are all questions a verdict alone cannot
//! answer. This module is the single, dependency-free answer:
//!
//! * a static [`Registry`] of atomic **counters**, **gauges** and
//!   fixed-bucket **histograms** covering every stage of the chain
//!   (ingest, dispatch, certifier epoch apply, GC, budget ladder,
//!   sheds/evictions/quarantines);
//! * **span** instrumentation — bounded ring buffer of
//!   `(stage, lane, start, duration)` records around capture →
//!   preflight → dispatch → shard workers → certifier merge → GC
//!   barrier → checkpoint → report;
//! * three **exporters**: Prometheus text exposition
//!   ([`Registry::render_prometheus`]), a structured JSON snapshot
//!   ([`Registry::snapshot`], embedded in
//!   [`VerifyOutcome`](crate::VerifyOutcome) / `--json` output), and a
//!   Chrome trace-event timeline ([`Registry::render_chrome_trace`])
//!   loadable in Perfetto / `about://tracing`, with one lane per shard
//!   plus driver/certifier and pipeline lanes.
//!
//! Everything is lock-free: plain relaxed atomics for tallies, a
//! release-published / acquire-read sequence word per span slot. The
//! global registry starts **disabled**; every gated entry point is a
//! single relaxed boolean load when off, so instrumented builds pay
//! nothing measurable until a caller opts in with [`set_enabled`].
//! Instrumentation is verdict-neutral by construction — nothing in this
//! module is read back by the verification state machines, and
//! `tests/obs_equivalence.rs` enforces byte-identical verdicts and
//! checkpoints with observability on and off.
//!
//! Two counters are deliberately *ungated* ([`ctr_always`]): lossy
//! backpressure sheds and post-shutdown drops are loss accounting and
//! must never vanish just because metrics exporting is off.
//!
//! The registry is process-global and cumulative. Benches and the CLI
//! call [`reset`] at the start of a measured cell; tests that inspect
//! values should use a private `Registry` instance instead of the
//! global one, which races against concurrently-running tests.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Upper bounds (µs) of the finite histogram buckets, shared by every
/// histogram in the registry. `+Inf` is implicit (the `_count` series).
pub const BUCKET_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Maximum number of per-shard busy lanes tracked by the registry.
/// Shards beyond this fold into the last lane.
pub const MAX_SHARD_LANES: usize = 64;

/// Capacity of the span ring buffer. Once full, the oldest spans are
/// overwritten in claim order.
pub const SPAN_CAPACITY: usize = 4096;

/// Trace lane (Chrome-trace `tid`) of the driver/certifier thread.
pub const LANE_DRIVER: u32 = 0;
/// Trace lane of the two-level dispatch pipeline.
pub const LANE_PIPELINE: u32 = 61;
/// Trace lane of the online engine's governor loop.
pub const LANE_ONLINE: u32 = 62;
/// Trace lane of CLI-driven stages (capture read, preflight, report).
pub const LANE_CLI: u32 = 63;

/// Trace lane of shard worker `shard` (0-based). Lanes saturate just
/// below the fixed utility lanes so arbitrary shard counts stay valid.
#[must_use]
pub fn shard_lane(shard: usize) -> u32 {
    1 + (shard.min(59) as u32)
}

/// Monotonic counters tracked by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Traces admitted into the verification engine.
    OpsIngested,
    /// Traces dispatched by the two-level pipeline in timestamp order.
    Dispatched,
    /// Traces shed by lossy backpressure (client channel full).
    ShedLossy,
    /// Trace records dropped because the collector had already shut down.
    PostShutdownDrops,
    /// Traces dropped below a forced-dispatch floor (arrived too late).
    LateDropped,
    /// Duplicate trace ids dropped by the pipeline.
    DuplicatesDropped,
    /// Garbage-collection passes (periodic cadence and forced).
    GcPasses,
    /// Mechanism-table entries reclaimed by garbage collection.
    GcReclaimedEntries,
    /// Budget ladder rung 1: GC passes forced outside the cadence.
    ForcedGcs,
    /// Budget ladder rung 2: pipeline buffers flushed above the watermark.
    ForcedDispatches,
    /// Budget ladder rung 3: clients evicted to shed retained state.
    BudgetEvictions,
    /// Clients evicted for stalling (eviction timeout), not for memory.
    StallEvictions,
    /// Traces quarantined by degraded-mode admission.
    QuarantinedTraces,
    /// Reads demoted to unverifiable in degraded mode.
    DemotedReads,
    /// Cross-shard certifier merge rounds (epoch batches applied).
    CertifierMerges,
    /// Checkpoint images serialized to disk.
    CheckpointsWritten,
    /// Cumulative driver/certifier busy time, microseconds.
    DriverBusyUs,
    /// Wire frames decoded by the serve daemon (all streams).
    WireFrames,
    /// Wire payload bytes decoded by the serve daemon.
    WireBytes,
    /// Wire frames that failed to decode (truncated, corrupt, unknown).
    WireDecodeErrors,
    /// Streams admitted by the serve daemon (fresh and resumed).
    StreamsAccepted,
    /// Streams refused at the handshake (version, admission, draining).
    StreamsRejected,
    /// Streams quarantined mid-flight (malformed input or a panicking
    /// verifier), finished with a degraded verdict.
    StreamsQuarantined,
    /// Version-chain records spilled out to segment files.
    SpillRecordsOut,
    /// Spilled records faulted back into memory.
    SpillRecordsIn,
    /// Transient spill-I/O retries performed under the retry policy.
    SpillRetries,
    /// Spill writes abandoned to the in-memory fallback after retries.
    SpillFallbacks,
    /// Unrecoverable spill I/O or corruption errors (tier poisonings).
    SpillIoErrors,
}

const COUNTER_COUNT: usize = 28;

impl Counter {
    /// Every counter, in registry (and exposition) order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::OpsIngested,
        Counter::Dispatched,
        Counter::ShedLossy,
        Counter::PostShutdownDrops,
        Counter::LateDropped,
        Counter::DuplicatesDropped,
        Counter::GcPasses,
        Counter::GcReclaimedEntries,
        Counter::ForcedGcs,
        Counter::ForcedDispatches,
        Counter::BudgetEvictions,
        Counter::StallEvictions,
        Counter::QuarantinedTraces,
        Counter::DemotedReads,
        Counter::CertifierMerges,
        Counter::CheckpointsWritten,
        Counter::DriverBusyUs,
        Counter::WireFrames,
        Counter::WireBytes,
        Counter::WireDecodeErrors,
        Counter::StreamsAccepted,
        Counter::StreamsRejected,
        Counter::StreamsQuarantined,
        Counter::SpillRecordsOut,
        Counter::SpillRecordsIn,
        Counter::SpillRetries,
        Counter::SpillFallbacks,
        Counter::SpillIoErrors,
    ];

    fn idx(self) -> usize {
        Counter::ALL
            .iter()
            .position(|&c| c == self)
            .expect("Counter::ALL covers every variant") // lint: allow(L001): position over ALL is total by construction
    }

    /// Prometheus metric name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::OpsIngested => "leopard_ops_ingested_total",
            Counter::Dispatched => "leopard_pipeline_dispatched_total",
            Counter::ShedLossy => "leopard_pipeline_shed_total",
            Counter::PostShutdownDrops => "leopard_pipeline_post_shutdown_drops_total",
            Counter::LateDropped => "leopard_pipeline_late_dropped_total",
            Counter::DuplicatesDropped => "leopard_pipeline_duplicates_dropped_total",
            Counter::GcPasses => "leopard_gc_passes_total",
            Counter::GcReclaimedEntries => "leopard_gc_reclaimed_entries_total",
            Counter::ForcedGcs => "leopard_forced_gcs_total",
            Counter::ForcedDispatches => "leopard_forced_dispatches_total",
            Counter::BudgetEvictions => "leopard_budget_evictions_total",
            Counter::StallEvictions => "leopard_stall_evictions_total",
            Counter::QuarantinedTraces => "leopard_quarantined_traces_total",
            Counter::DemotedReads => "leopard_demoted_reads_total",
            Counter::CertifierMerges => "leopard_certifier_merges_total",
            Counter::CheckpointsWritten => "leopard_checkpoints_written_total",
            Counter::DriverBusyUs => "leopard_driver_busy_us_total",
            Counter::WireFrames => "leopard_wire_frames_total",
            Counter::WireBytes => "leopard_wire_bytes_total",
            Counter::WireDecodeErrors => "leopard_wire_decode_errors_total",
            Counter::StreamsAccepted => "leopard_serve_streams_accepted_total",
            Counter::StreamsRejected => "leopard_serve_streams_rejected_total",
            Counter::StreamsQuarantined => "leopard_serve_streams_quarantined_total",
            Counter::SpillRecordsOut => "leopard_spill_records_out_total",
            Counter::SpillRecordsIn => "leopard_spill_records_in_total",
            Counter::SpillRetries => "leopard_spill_retries_total",
            Counter::SpillFallbacks => "leopard_spill_fallbacks_total",
            Counter::SpillIoErrors => "leopard_spill_io_errors_total",
        }
    }

    /// One-line help string for the exposition.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Counter::OpsIngested => "Traces admitted into the verification engine.",
            Counter::Dispatched => {
                "Traces dispatched by the two-level pipeline in timestamp order."
            }
            Counter::ShedLossy => "Traces shed by lossy backpressure (client channel full).",
            Counter::PostShutdownDrops => {
                "Trace records dropped because the collector had already shut down."
            }
            Counter::LateDropped => "Traces dropped below a forced-dispatch floor.",
            Counter::DuplicatesDropped => "Duplicate trace ids dropped by the pipeline.",
            Counter::GcPasses => "Garbage-collection passes (periodic and forced).",
            Counter::GcReclaimedEntries => "Mechanism-table entries reclaimed by GC.",
            Counter::ForcedGcs => "Budget ladder rung 1: GC passes forced outside the cadence.",
            Counter::ForcedDispatches => "Budget ladder rung 2: forced pipeline flushes.",
            Counter::BudgetEvictions => "Budget ladder rung 3: clients evicted for memory.",
            Counter::StallEvictions => "Clients evicted for stalling (eviction timeout).",
            Counter::QuarantinedTraces => "Traces quarantined by degraded-mode admission.",
            Counter::DemotedReads => "Reads demoted to unverifiable in degraded mode.",
            Counter::CertifierMerges => "Cross-shard certifier merge rounds.",
            Counter::CheckpointsWritten => "Checkpoint images serialized to disk.",
            Counter::DriverBusyUs => "Cumulative driver/certifier busy time, microseconds.",
            Counter::WireFrames => "Wire frames decoded by the serve daemon.",
            Counter::WireBytes => "Wire payload bytes decoded by the serve daemon.",
            Counter::WireDecodeErrors => {
                "Wire frames that failed to decode (truncated, corrupt, unknown)."
            }
            Counter::StreamsAccepted => "Streams admitted by the serve daemon.",
            Counter::StreamsRejected => "Streams refused at the handshake.",
            Counter::StreamsQuarantined => {
                "Streams quarantined into a degraded verdict mid-flight."
            }
            Counter::SpillRecordsOut => "Version-chain records spilled to segment files.",
            Counter::SpillRecordsIn => "Spilled records faulted back into memory.",
            Counter::SpillRetries => "Transient spill-I/O retries under the retry policy.",
            Counter::SpillFallbacks => {
                "Spill writes abandoned to the in-memory fallback after retries."
            }
            Counter::SpillIoErrors => "Unrecoverable spill I/O or corruption errors.",
        }
    }
}

/// Point-in-time gauges tracked by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Newest buffered capture timestamp minus the dispatch watermark.
    WatermarkLag,
    /// Current estimated bytes retained by the verification chain.
    MemBytes,
    /// High-water mark of estimated retained bytes.
    PeakMemBytes,
    /// High-water mark of retained entries.
    PeakMemEntries,
    /// Shard count of the active engine (0 = sequential).
    Shards,
    /// Bytes held in spill segment files on disk.
    SpillBytes,
}

const GAUGE_COUNT: usize = 6;

impl Gauge {
    /// Every gauge, in registry (and exposition) order.
    pub const ALL: [Gauge; GAUGE_COUNT] = [
        Gauge::WatermarkLag,
        Gauge::MemBytes,
        Gauge::PeakMemBytes,
        Gauge::PeakMemEntries,
        Gauge::Shards,
        Gauge::SpillBytes,
    ];

    fn idx(self) -> usize {
        Gauge::ALL
            .iter()
            .position(|&g| g == self)
            .expect("Gauge::ALL covers every variant") // lint: allow(L001): position over ALL is total by construction
    }

    /// Prometheus metric name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::WatermarkLag => "leopard_watermark_lag",
            Gauge::MemBytes => "leopard_mem_bytes",
            Gauge::PeakMemBytes => "leopard_peak_mem_bytes",
            Gauge::PeakMemEntries => "leopard_peak_mem_entries",
            Gauge::Shards => "leopard_shards",
            Gauge::SpillBytes => "leopard_spill_bytes",
        }
    }

    /// One-line help string for the exposition.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            Gauge::WatermarkLag => {
                "Newest buffered capture timestamp minus the dispatch watermark."
            }
            Gauge::MemBytes => "Current estimated bytes retained by the verification chain.",
            Gauge::PeakMemBytes => "High-water mark of estimated retained bytes.",
            Gauge::PeakMemEntries => "High-water mark of retained entries.",
            Gauge::Shards => "Shard count of the active engine (0 = sequential).",
            Gauge::SpillBytes => "Bytes held in spill segment files on disk.",
        }
    }
}

/// Fixed-bucket microsecond histograms tracked by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Wall time of one pipeline drain call that dispatched traces.
    DispatchLatencyUs,
    /// Wall time of one certifier epoch-merge round.
    EpochApplyUs,
    /// Wall time of one garbage-collection pass (or GC barrier).
    GcPauseUs,
    /// Wall time of one shard-worker batch.
    ShardBatchUs,
    /// Wall time of one spill pass (records written out under pressure).
    SpillPassUs,
}

const HIST_COUNT: usize = 5;

impl HistId {
    /// Every histogram, in registry (and exposition) order.
    pub const ALL: [HistId; HIST_COUNT] = [
        HistId::DispatchLatencyUs,
        HistId::EpochApplyUs,
        HistId::GcPauseUs,
        HistId::ShardBatchUs,
        HistId::SpillPassUs,
    ];

    fn idx(self) -> usize {
        HistId::ALL
            .iter()
            .position(|&h| h == self)
            .expect("HistId::ALL covers every variant") // lint: allow(L001): position over ALL is total by construction
    }

    /// Prometheus metric name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HistId::DispatchLatencyUs => "leopard_dispatch_latency_us",
            HistId::EpochApplyUs => "leopard_epoch_apply_us",
            HistId::GcPauseUs => "leopard_gc_pause_us",
            HistId::ShardBatchUs => "leopard_shard_batch_us",
            HistId::SpillPassUs => "leopard_spill_pass_us",
        }
    }

    /// One-line help string for the exposition.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            HistId::DispatchLatencyUs => "Wall time of one dispatching pipeline drain call (us).",
            HistId::EpochApplyUs => "Wall time of one certifier epoch-merge round (us).",
            HistId::GcPauseUs => "Wall time of one garbage-collection pass (us).",
            HistId::ShardBatchUs => "Wall time of one shard-worker batch (us).",
            HistId::SpillPassUs => "Wall time of one spill pass (us).",
        }
    }
}

/// Pipeline stages a span can cover. Stage values are packed into span
/// slots, so the discriminants are stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Reading/recording the capture stream.
    Capture = 0,
    /// Capture preflight validation.
    Preflight = 1,
    /// Pipeline dispatch (watermark advance + drain).
    Dispatch = 2,
    /// A shard worker processing one trace batch.
    ShardBatch = 3,
    /// The driver merging shard epochs (serial certifier section).
    CertifierMerge = 4,
    /// A GC pass or cross-shard GC barrier.
    GcBarrier = 5,
    /// Serializing a checkpoint image.
    Checkpoint = 6,
    /// Final verdict assembly and reporting.
    Report = 7,
    /// A spill pass: cold records written out under memory pressure.
    Spill = 8,
}

impl Stage {
    /// Span/exposition name of the stage.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Capture => "capture",
            Stage::Preflight => "preflight",
            Stage::Dispatch => "dispatch",
            Stage::ShardBatch => "shard-batch",
            Stage::CertifierMerge => "certifier-merge",
            Stage::GcBarrier => "gc-barrier",
            Stage::Checkpoint => "checkpoint",
            Stage::Report => "report",
            Stage::Spill => "spill",
        }
    }

    fn from_u8(v: u8) -> Option<Stage> {
        match v {
            0 => Some(Stage::Capture),
            1 => Some(Stage::Preflight),
            2 => Some(Stage::Dispatch),
            3 => Some(Stage::ShardBatch),
            4 => Some(Stage::CertifierMerge),
            5 => Some(Stage::GcBarrier),
            6 => Some(Stage::Checkpoint),
            7 => Some(Stage::Report),
            8 => Some(Stage::Spill),
            _ => None,
        }
    }
}

/// One fixed-bucket microsecond histogram: per-bucket tallies plus sum
/// and count, all relaxed atomics.
struct Hist {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    const fn new() -> Hist {
        Hist {
            buckets: [const { AtomicU64::new(0) }; BUCKET_BOUNDS_US.len()],
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, us: u64) {
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            if us <= bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed); // relaxed: independent tally, read only by exporters
                break;
            }
        }
        self.sum_us.fetch_add(us, Ordering::Relaxed); // relaxed: independent tally, read only by exporters
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed: independent tally, read only by exporters
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // relaxed: reset between bench cells; no readers race a reset
        }
        self.sum_us.store(0, Ordering::Relaxed); // relaxed: reset between bench cells; no readers race a reset
        self.count.store(0, Ordering::Relaxed); // relaxed: reset between bench cells; no readers race a reset
    }
}

/// One span record slot. Fields are written relaxed and published by a
/// release store of `seq` (claim + 1); exporters read `seq` acquire
/// before the fields. After the ring wraps, a slot holds the most
/// recent span that claimed it.
struct SpanSlot {
    seq: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    meta: AtomicU64,
}

impl SpanSlot {
    const fn new() -> SpanSlot {
        SpanSlot {
            seq: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        }
    }
}

/// Bounded lock-free ring of span records.
struct SpanRing {
    head: AtomicU64,
    slots: [SpanSlot; SPAN_CAPACITY],
}

impl SpanRing {
    const fn new() -> SpanRing {
        SpanRing {
            head: AtomicU64::new(0),
            slots: [const { SpanSlot::new() }; SPAN_CAPACITY],
        }
    }
}

/// The observability registry: every counter, gauge, histogram,
/// per-shard busy lane and span slot, as lock-free atomics.
///
/// A process-global instance backs the module-level free functions
/// ([`ctr`], [`span_start`], …); tests construct private instances so
/// assertions don't race concurrently-running suites.
pub struct Registry {
    enabled: AtomicBool,
    counters: [AtomicU64; COUNTER_COUNT],
    gauges: [AtomicU64; GAUGE_COUNT],
    hists: [Hist; HIST_COUNT],
    shard_busy_us: [AtomicU64; MAX_SHARD_LANES],
    spans: SpanRing,
}

static GLOBAL: Registry = Registry::new();

impl Registry {
    /// A fresh, disabled registry with every metric at zero.
    #[must_use]
    pub const fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(false),
            counters: [const { AtomicU64::new(0) }; COUNTER_COUNT],
            gauges: [const { AtomicU64::new(0) }; GAUGE_COUNT],
            hists: [const { Hist::new() }; HIST_COUNT],
            shard_busy_us: [const { AtomicU64::new(0) }; MAX_SHARD_LANES],
            spans: SpanRing::new(),
        }
    }

    /// True when span/metric recording through the gated entry points
    /// is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) // relaxed: an on/off hint; no data is ordered against the flag
    }

    /// Turns gated recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed); // relaxed: an on/off hint; no data is ordered against the flag
    }

    /// Zeroes every metric and span slot. The enabled flag is
    /// preserved. Meant for bench cells and CLI run starts; racing a
    /// reset against live recording yields mixed (but safe) values.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed); // relaxed: reset between bench cells; no readers race a reset
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed); // relaxed: reset between bench cells; no readers race a reset
        }
        for h in &self.hists {
            h.reset();
        }
        for lane in &self.shard_busy_us {
            lane.store(0, Ordering::Relaxed); // relaxed: reset between bench cells; no readers race a reset
        }
        self.spans.head.store(0, Ordering::Relaxed); // relaxed: reset between bench cells; no readers race a reset
        for slot in &self.spans.slots {
            slot.seq.store(0, Ordering::Release); // release: invalidate the slot before any future acquire read
        }
    }

    /// Adds `n` to a counter.
    pub fn ctr_add(&self, c: Counter, n: u64) {
        self.counters[c.idx()].fetch_add(n, Ordering::Relaxed); // relaxed: monotonic tally, read only by exporters
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter_value(&self, c: Counter) -> u64 {
        self.counters[c.idx()].load(Ordering::Relaxed) // relaxed: exporter read of an independent tally
    }

    /// Stores a gauge value.
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        self.gauges[g.idx()].store(v, Ordering::Relaxed); // relaxed: last-writer-wins sample, read only by exporters
    }

    /// Raises a gauge to `v` if `v` is larger (high-water mark).
    pub fn gauge_max(&self, g: Gauge, v: u64) {
        self.gauges[g.idx()].fetch_max(v, Ordering::Relaxed); // relaxed: monotone high-water mark, read only by exporters
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge_value(&self, g: Gauge) -> u64 {
        self.gauges[g.idx()].load(Ordering::Relaxed) // relaxed: exporter read of an independent sample
    }

    /// Records one microsecond observation into a histogram.
    pub fn hist_observe(&self, h: HistId, us: u64) {
        self.hists[h.idx()].observe(us);
    }

    /// Stores the cumulative busy time of shard `shard` (µs). Shards
    /// beyond [`MAX_SHARD_LANES`] fold into the last lane.
    pub fn shard_busy_store(&self, shard: usize, us: u64) {
        let lane = shard.min(MAX_SHARD_LANES - 1);
        self.shard_busy_us[lane].store(us, Ordering::Relaxed); // relaxed: last-writer-wins sample, read only by exporters
    }

    /// Records one completed span. A no-op while disabled.
    pub fn record_span(&self, stage: Stage, lane: u32, start_us: u64, dur_us: u64) {
        if !self.enabled() {
            return;
        }
        let claim = self.spans.head.fetch_add(1, Ordering::Relaxed); // relaxed: slot claim; publication order comes from the seq release below
        let slot = &self.spans.slots[(claim as usize) % SPAN_CAPACITY];
        slot.start_us.store(start_us, Ordering::Relaxed); // relaxed: ordered by the seq release store below
        slot.dur_us.store(dur_us, Ordering::Relaxed); // relaxed: ordered by the seq release store below
        let meta = u64::from(stage as u8) | (u64::from(lane) << 8);
        slot.meta.store(meta, Ordering::Relaxed); // relaxed: ordered by the seq release store below
        slot.seq.store(claim + 1, Ordering::Release); // release: publishes the slot fields to acquire readers
    }

    /// Point-in-time structured snapshot of every metric.
    #[must_use]
    pub fn snapshot(&self) -> ObsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| MetricSample {
                name: c.name().to_string(),
                value: self.counter_value(c),
            })
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| MetricSample {
                name: g.name().to_string(),
                value: self.gauge_value(g),
            })
            .collect();
        let histograms = HistId::ALL
            .iter()
            .map(|&h| {
                let hist = &self.hists[h.idx()];
                let mut buckets = Vec::with_capacity(BUCKET_BOUNDS_US.len());
                for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                    buckets.push(BucketCount {
                        le_us: bound,
                        count: hist.buckets[i].load(Ordering::Relaxed), // relaxed: exporter read of an independent tally
                    });
                }
                HistSnapshot {
                    name: h.name().to_string(),
                    count: hist.count.load(Ordering::Relaxed), // relaxed: exporter read of an independent tally
                    sum_us: hist.sum_us.load(Ordering::Relaxed), // relaxed: exporter read of an independent tally
                    buckets,
                }
            })
            .collect();
        let shards = (self.gauge_value(Gauge::Shards) as usize).min(MAX_SHARD_LANES);
        let shard_busy_us = (0..shards)
            .map(|i| self.shard_busy_us[i].load(Ordering::Relaxed)) // relaxed: exporter read of an independent sample
            .collect();
        let recorded = self.spans.head.load(Ordering::Relaxed); // relaxed: exporter read of an independent tally
        ObsSnapshot {
            counters,
            gauges,
            histograms,
            shard_busy_us,
            spans_recorded: recorded,
            spans_retained: recorded.min(SPAN_CAPACITY as u64),
        }
    }

    /// Renders every metric in Prometheus text exposition format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(8 * 1024);
        for c in Counter::ALL {
            render_header(&mut out, c.name(), c.help(), "counter");
            render_sample(&mut out, c.name(), &[], self.counter_value(c));
        }
        for g in Gauge::ALL {
            render_header(&mut out, g.name(), g.help(), "gauge");
            render_sample(&mut out, g.name(), &[], self.gauge_value(g));
        }
        let shards = (self.gauge_value(Gauge::Shards) as usize).min(MAX_SHARD_LANES);
        if shards > 0 {
            let name = "leopard_shard_busy_us_total";
            render_header(
                &mut out,
                name,
                "Cumulative busy time of each shard worker, microseconds.",
                "counter",
            );
            for i in 0..shards {
                let v = self.shard_busy_us[i].load(Ordering::Relaxed); // relaxed: exporter read of an independent sample
                render_sample(&mut out, name, &[("shard", &i.to_string())], v);
            }
        }
        for h in HistId::ALL {
            let hist = &self.hists[h.idx()];
            render_header(&mut out, h.name(), h.help(), "histogram");
            let mut cumulative = 0u64;
            for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                cumulative += hist.buckets[i].load(Ordering::Relaxed); // relaxed: exporter read of an independent tally
                render_sample(
                    &mut out,
                    &format!("{}_bucket", h.name()),
                    &[("le", &bound.to_string())],
                    cumulative,
                );
            }
            let count = hist.count.load(Ordering::Relaxed); // relaxed: exporter read of an independent tally
            render_sample(
                &mut out,
                &format!("{}_bucket", h.name()),
                &[("le", "+Inf")],
                count,
            );
            render_sample(
                &mut out,
                &format!("{}_sum", h.name()),
                &[],
                hist.sum_us.load(Ordering::Relaxed), // relaxed: exporter read of an independent tally
            );
            render_sample(&mut out, &format!("{}_count", h.name()), &[], count);
        }
        out
    }

    /// Renders the span ring as a Chrome trace-event (Perfetto) JSON
    /// document: one complete (`"ph":"X"`) event per retained span, one
    /// named lane per shard plus driver/pipeline/online/CLI lanes.
    #[must_use]
    pub fn render_chrome_trace(&self) -> String {
        let mut events: Vec<(u64, u64, Stage, u32)> = Vec::new();
        for slot in &self.spans.slots {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed); // relaxed: the acquire load of seq above ordered this field
            let Some(stage) = Stage::from_u8((meta & 0xFF) as u8) else {
                continue;
            };
            let lane = ((meta >> 8) & 0xFFFF_FFFF) as u32;
            let start = slot.start_us.load(Ordering::Relaxed); // relaxed: the acquire load of seq above ordered this field
            let dur = slot.dur_us.load(Ordering::Relaxed); // relaxed: the acquire load of seq above ordered this field
            events.push((start, dur, stage, lane));
        }
        events.sort_unstable();
        let mut lanes: Vec<u32> = events.iter().map(|e| e.3).collect();
        lanes.sort_unstable();
        lanes.dedup();
        let mut out = String::with_capacity(64 + 96 * events.len());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"leopard\"}}",
        );
        for lane in &lanes {
            out.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                lane,
                lane_name(*lane)
            ));
        }
        for (start, dur, stage, lane) in &events {
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"leopard\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                stage.name(),
                lane,
                start,
                dur
            ));
        }
        out.push_str("]}");
        out
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

fn lane_name(lane: u32) -> String {
    match lane {
        LANE_DRIVER => "driver/certifier".to_string(),
        LANE_PIPELINE => "pipeline".to_string(),
        LANE_ONLINE => "online-engine".to_string(),
        LANE_CLI => "cli".to_string(),
        n => format!("shard-{}", n - 1),
    }
}

fn render_header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(&escape_help(help));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn render_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Escapes a HELP string per the Prometheus text format: backslash and
/// newline.
#[must_use]
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline.
#[must_use]
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// True if `s` is a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
#[must_use]
pub fn is_valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// True if `s` is a valid Prometheus label name
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
#[must_use]
pub fn is_valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Structured point-in-time snapshot of the registry, embedded in
/// [`VerifyOutcome`](crate::VerifyOutcome) and `--json` output when
/// observability is enabled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Every counter with its value, in registry order.
    pub counters: Vec<MetricSample>,
    /// Every gauge with its value, in registry order.
    pub gauges: Vec<MetricSample>,
    /// Every histogram with per-bucket tallies.
    pub histograms: Vec<HistSnapshot>,
    /// Cumulative busy microseconds per shard (empty when sequential).
    pub shard_busy_us: Vec<u64>,
    /// Spans recorded since the last reset (including overwritten).
    pub spans_recorded: u64,
    /// Spans still retained in the ring.
    pub spans_retained: u64,
}

impl ObsSnapshot {
    /// Value of the named counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
    }

    /// Value of the named gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|s| s.name == name).map(|s| s.value)
    }
}

/// One named metric value in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name (matches the Prometheus exposition).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Snapshot of one fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, microseconds.
    pub sum_us: u64,
    /// Non-cumulative tallies per finite bucket bound.
    pub buckets: Vec<BucketCount>,
}

/// One histogram bucket: inclusive upper bound and its tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound, microseconds.
    pub le_us: u64,
    /// Observations in this bucket (non-cumulative).
    pub count: u64,
}

/// The process-global registry backing the module-level free functions.
#[must_use]
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// True when global gated recording is on.
#[must_use]
pub fn enabled() -> bool {
    GLOBAL.enabled()
}

/// Turns global gated recording on or off.
pub fn set_enabled(on: bool) {
    GLOBAL.set_enabled(on);
}

/// Zeroes the global registry (see [`Registry::reset`]).
pub fn reset() {
    GLOBAL.reset();
}

/// Adds `n` to a global counter when recording is enabled.
#[inline]
pub fn ctr(c: Counter, n: u64) {
    if GLOBAL.enabled() {
        GLOBAL.ctr_add(c, n);
    }
}

/// Adds `n` to a global counter unconditionally. Reserved for loss
/// accounting (sheds, post-shutdown drops) that must stay visible even
/// with metrics exporting off.
#[inline]
pub fn ctr_always(c: Counter, n: u64) {
    GLOBAL.ctr_add(c, n);
}

/// Current value of a global counter.
#[must_use]
pub fn counter_value(c: Counter) -> u64 {
    GLOBAL.counter_value(c)
}

/// Stores a global gauge value when recording is enabled.
#[inline]
pub fn gauge_set(g: Gauge, v: u64) {
    if GLOBAL.enabled() {
        GLOBAL.gauge_set(g, v);
    }
}

/// Raises a global gauge high-water mark when recording is enabled.
#[inline]
pub fn gauge_max(g: Gauge, v: u64) {
    if GLOBAL.enabled() {
        GLOBAL.gauge_max(g, v);
    }
}

/// Records a histogram observation when recording is enabled.
#[inline]
pub fn hist(h: HistId, us: u64) {
    if GLOBAL.enabled() {
        GLOBAL.hist_observe(h, us);
    }
}

/// Stores a shard's cumulative busy time when recording is enabled.
#[inline]
pub fn shard_busy(shard: usize, us: u64) {
    if GLOBAL.enabled() {
        GLOBAL.shard_busy_store(shard, us);
    }
}

/// Microseconds since the process-wide observability epoch.
#[must_use]
pub fn now_us() -> u64 {
    anchor().elapsed().as_micros() as u64
}

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now) // lint: allow(L004): observability only — wall-clock anchor for span timestamps, never feeds verification state
}

/// Starts a span clock: `Some(start_us)` when recording is enabled,
/// `None` (and no clock read) when disabled.
#[inline]
#[must_use]
pub fn span_start() -> Option<u64> {
    enabled().then(now_us)
}

/// Completes a span opened by [`span_start`], recording it into the
/// global ring. Returns the span duration in microseconds (0 when the
/// span was never started).
#[inline]
pub fn span_end(stage: Stage, lane: u32, start: Option<u64>) -> u64 {
    let Some(start_us) = start else {
        return 0;
    };
    let dur_us = now_us().saturating_sub(start_us);
    GLOBAL.record_span(stage, lane, start_us, dur_us);
    dur_us
}

/// Global snapshot when recording is enabled, `None` otherwise.
#[must_use]
pub fn snapshot_if_enabled() -> Option<ObsSnapshot> {
    enabled().then(|| GLOBAL.snapshot())
}

/// Renders the global registry in Prometheus text exposition format.
#[must_use]
pub fn render_prometheus() -> String {
    GLOBAL.render_prometheus()
}

/// Renders the global span ring as a Chrome trace-event JSON document.
#[must_use]
pub fn render_chrome_trace() -> String {
    GLOBAL.render_chrome_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<Registry> {
        let r = Box::new(Registry::new());
        r.set_enabled(true);
        r
    }

    /// Minimal JSON syntax check (the offline serde_json stub has no
    /// dynamic `Value` type): consumes one JSON value, returns the rest.
    fn json_value(s: &str) -> Result<&str, String> {
        let s = s.trim_start();
        let mut chars = s.char_indices();
        match chars.next().map(|(_, c)| c) {
            Some('{') => json_seq(&s[1..], '}', true),
            Some('[') => json_seq(&s[1..], ']', false),
            Some('"') => json_string(s),
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                    .unwrap_or(s.len());
                Ok(&s[end..])
            }
            Some(_) if s.starts_with("true") => Ok(&s[4..]),
            Some(_) if s.starts_with("false") => Ok(&s[5..]),
            Some(_) if s.starts_with("null") => Ok(&s[4..]),
            other => Err(format!("unexpected start: {other:?}")),
        }
    }

    fn json_string(s: &str) -> Result<&str, String> {
        debug_assert!(s.starts_with('"'));
        let bytes = s.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => return Ok(&s[i + 1..]),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn json_seq(mut s: &str, close: char, keyed: bool) -> Result<&str, String> {
        s = s.trim_start();
        if let Some(rest) = s.strip_prefix(close) {
            return Ok(rest);
        }
        loop {
            if keyed {
                s = s.trim_start();
                if !s.starts_with('"') {
                    return Err(format!("expected key at: {:.20}", s));
                }
                s = json_string(s)?.trim_start();
                s = s
                    .strip_prefix(':')
                    .ok_or_else(|| format!("expected ':' at: {:.20}", s))?;
            }
            s = json_value(s)?.trim_start();
            if let Some(rest) = s.strip_prefix(',') {
                s = rest;
            } else {
                return s
                    .strip_prefix(close)
                    .ok_or_else(|| format!("expected '{close}' at: {:.20}", s));
            }
        }
    }

    fn assert_valid_json(s: &str) {
        match json_value(s) {
            Ok(rest) => assert!(rest.trim().is_empty(), "trailing JSON content: {rest:.40}"),
            Err(e) => panic!("invalid JSON: {e}"),
        }
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let r = fresh();
        // A value equal to a bound lands in that bucket, one above it
        // lands in the next, and an over-the-top value only reaches
        // sum/count (the implicit +Inf bucket).
        r.hist_observe(HistId::GcPauseUs, 50);
        r.hist_observe(HistId::GcPauseUs, 51);
        r.hist_observe(HistId::GcPauseUs, 5_000_000);
        let snap = r.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "leopard_gc_pause_us")
            .expect("gc hist present"); // lint: allow(L001): test assertion
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_us, 50 + 51 + 5_000_000);
        assert_eq!(
            h.buckets[0],
            BucketCount {
                le_us: 50,
                count: 1
            }
        );
        assert_eq!(
            h.buckets[1],
            BucketCount {
                le_us: 100,
                count: 1
            }
        );
        let finite: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(finite, 2, "over-the-top value stays out of finite buckets");
    }

    #[test]
    fn exposition_histogram_buckets_are_cumulative_and_end_at_inf() {
        let r = fresh();
        r.hist_observe(HistId::EpochApplyUs, 10);
        r.hist_observe(HistId::EpochApplyUs, 10);
        r.hist_observe(HistId::EpochApplyUs, 200);
        r.hist_observe(HistId::EpochApplyUs, 10_000_000);
        let text = r.render_prometheus();
        assert!(text.contains("leopard_epoch_apply_us_bucket{le=\"50\"} 2\n"));
        assert!(text.contains("leopard_epoch_apply_us_bucket{le=\"250\"} 3\n"));
        assert!(text.contains("leopard_epoch_apply_us_bucket{le=\"1000000\"} 3\n"));
        assert!(text.contains("leopard_epoch_apply_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("leopard_epoch_apply_us_count 4\n"));
        assert!(text.contains("leopard_epoch_apply_us_sum 10000220\n"));
    }

    #[test]
    fn counters_are_monotonic_across_renders() {
        let r = fresh();
        let mut last = 0u64;
        for step in 1..=5u64 {
            r.ctr_add(Counter::OpsIngested, step);
            let v = r.counter_value(Counter::OpsIngested);
            assert!(v > last, "counter regressed: {v} after {last}");
            last = v;
            let line = format!("leopard_ops_ingested_total {v}\n");
            assert!(r.render_prometheus().contains(&line));
        }
    }

    #[test]
    fn every_metric_and_label_name_is_valid() {
        for c in Counter::ALL {
            assert!(is_valid_metric_name(c.name()), "{}", c.name());
        }
        for g in Gauge::ALL {
            assert!(is_valid_metric_name(g.name()), "{}", g.name());
        }
        for h in HistId::ALL {
            assert!(is_valid_metric_name(h.name()), "{}", h.name());
        }
        assert!(is_valid_label_name("shard"));
        assert!(is_valid_label_name("le"));
        assert!(!is_valid_metric_name("9starts_with_digit"));
        assert!(!is_valid_metric_name("has-dash"));
        assert!(!is_valid_label_name("has:colon"));
        assert!(!is_valid_label_name(""));
    }

    #[test]
    fn exposition_lines_match_the_text_format() {
        let r = fresh();
        r.gauge_set(Gauge::Shards, 3);
        r.shard_busy_store(0, 11);
        r.shard_busy_store(2, 33);
        r.ctr_add(Counter::Dispatched, 7);
        for line in r.render_prometheus().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value"); // lint: allow(L001): test assertion
            assert!(
                value == "+Inf" || value.parse::<u64>().is_ok(),
                "bad value in: {line}"
            );
            let name = series.split('{').next().expect("series has a name"); // lint: allow(L001): test assertion
            assert!(is_valid_metric_name(name), "bad metric name in: {line}");
        }
        let text = r.render_prometheus();
        assert!(text.contains("leopard_shard_busy_us_total{shard=\"0\"} 11\n"));
        assert!(text.contains("leopard_shard_busy_us_total{shard=\"2\"} 33\n"));
        assert!(!text.contains("{shard=\"3\"}"), "lane past Shards gauge");
    }

    #[test]
    fn escaping_covers_backslash_quote_and_newline() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn disabled_registry_records_no_spans_but_always_counts_losses() {
        let r = Box::new(Registry::new());
        assert!(!r.enabled());
        r.record_span(Stage::Dispatch, LANE_PIPELINE, 0, 10);
        assert_eq!(r.snapshot().spans_recorded, 0);
        // ctr_add itself is ungated — the gating lives in the module
        // fns — so loss accounting through ctr_always always lands.
        r.ctr_add(Counter::PostShutdownDrops, 2);
        assert_eq!(r.counter_value(Counter::PostShutdownDrops), 2);
    }

    #[test]
    fn span_ring_wraps_and_trace_render_is_valid_json() {
        let r = fresh();
        for i in 0..(SPAN_CAPACITY as u64 + 10) {
            r.record_span(Stage::ShardBatch, shard_lane(1), i, 1);
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans_recorded, SPAN_CAPACITY as u64 + 10);
        assert_eq!(snap.spans_retained, SPAN_CAPACITY as u64);
        let trace = r.render_chrome_trace();
        assert_valid_json(&trace);
        // process_name + one thread_name + SPAN_CAPACITY retained spans.
        assert_eq!(trace.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), SPAN_CAPACITY);
        assert!(trace.contains("\"args\":{\"name\":\"shard-1\"}"));
        assert!(trace.contains("\"name\":\"shard-batch\""));
    }

    #[test]
    fn reset_zeroes_metrics_and_spans() {
        let r = fresh();
        r.ctr_add(Counter::GcPasses, 5);
        r.gauge_set(Gauge::MemBytes, 123);
        r.hist_observe(HistId::DispatchLatencyUs, 9);
        r.record_span(Stage::GcBarrier, LANE_DRIVER, 1, 2);
        r.reset();
        assert!(r.enabled(), "reset preserves the enabled flag");
        let snap = r.snapshot();
        assert_eq!(snap.counter("leopard_gc_passes_total"), Some(0));
        assert_eq!(snap.gauge("leopard_mem_bytes"), Some(0));
        assert_eq!(snap.spans_recorded, 0);
        assert!(snap.histograms.iter().all(|h| h.count == 0));
        let trace = r.render_chrome_trace();
        assert_valid_json(&trace);
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 0);
    }

    #[test]
    fn snapshot_serializes_to_json_and_back() {
        let r = fresh();
        r.ctr_add(Counter::CertifierMerges, 4);
        r.gauge_set(Gauge::Shards, 2);
        r.shard_busy_store(0, 100);
        r.shard_busy_store(1, 200);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("snapshot serializes"); // lint: allow(L001): test assertion
        let back: ObsSnapshot = serde_json::from_str(&json).expect("snapshot round-trips"); // lint: allow(L001): test assertion
        assert_eq!(snap, back);
        assert_eq!(back.shard_busy_us, vec![100, 200]);
        assert_eq!(back.counter("leopard_certifier_merges_total"), Some(4));
    }

    #[test]
    fn lane_names_cover_utility_and_shard_lanes() {
        assert_eq!(lane_name(LANE_DRIVER), "driver/certifier");
        assert_eq!(lane_name(LANE_PIPELINE), "pipeline");
        assert_eq!(lane_name(LANE_ONLINE), "online-engine");
        assert_eq!(lane_name(LANE_CLI), "cli");
        assert_eq!(lane_name(shard_lane(0)), "shard-0");
        assert_eq!(lane_name(shard_lane(7)), "shard-7");
        assert_eq!(shard_lane(10_000), 60, "shard lanes saturate");
    }
}
