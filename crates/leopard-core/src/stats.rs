//! Dependency-deduction accounting (§IV-B and §VI-D of the paper).
//!
//! The paper measures `β = B / A`, where `A` is the number of conflicting
//! operation pairs (potential dependencies) and `B` the number of those
//! whose trace intervals overlap, making the dependency *uncertain* from
//! the raw trace alone. §VI-D further splits `B` into the overlapping pairs
//! the mechanism-mirrored verification still manages to deduce and the ones
//! that remain uncertain.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of transaction dependency (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Direct write dependency: `t_n` installs the direct successor of a
    /// version `t_m` installed.
    Ww,
    /// Direct read dependency: `t_n` reads a version `t_m` installed.
    Wr,
    /// Direct anti-dependency: `t_n` installs the direct successor of a
    /// version `t_m` read.
    Rw,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Ww => "ww",
            DepKind::Wr => "wr",
            DepKind::Rw => "rw",
        };
        f.write_str(s)
    }
}

/// Per-dependency-kind tallies.
///
/// Note: `wr` pairs are tallied when the read check runs, so reads issued
/// by transactions that later abort are included — β is an
/// *operation-pair* ratio (as in §IV-B), not a committed-dependency count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepCounts {
    /// Conflicting pairs whose intervals did **not** overlap: the
    /// dependency is directly readable from the trace (Fig. 3(a)).
    pub certain: u64,
    /// Overlapping pairs the mechanism verification nevertheless resolved
    /// (the "deduced" share of β in Fig. 13).
    pub deduced: u64,
    /// Overlapping pairs that stayed unresolved (the "uncertain" share).
    pub uncertain: u64,
}

impl DepCounts {
    /// Total number of conflicting pairs observed (the paper's `A`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.certain + self.deduced + self.uncertain
    }

    /// Number of overlapping pairs (the paper's `B`).
    #[must_use]
    pub fn overlapping(&self) -> u64 {
        self.deduced + self.uncertain
    }

    /// `β = B / A`; zero when nothing was observed.
    #[must_use]
    pub fn beta(&self) -> f64 {
        let a = self.total();
        if a == 0 {
            0.0
        } else {
            self.overlapping() as f64 / a as f64
        }
    }

    /// Share of overlapping pairs that was deduced; 1.0 when there were no
    /// overlapping pairs at all.
    #[must_use]
    pub fn deduction_rate(&self) -> f64 {
        let b = self.overlapping();
        if b == 0 {
            1.0
        } else {
            self.deduced as f64 / b as f64
        }
    }

    fn merge(&mut self, other: &DepCounts) {
        self.certain += other.certain;
        self.deduced += other.deduced;
        self.uncertain += other.uncertain;
    }
}

/// Full deduction statistics for one verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeductionStats {
    /// Write-write pairs.
    pub ww: DepCounts,
    /// Write-read pairs.
    pub wr: DepCounts,
    /// Read-write pairs (always derived, counted for completeness).
    pub rw: DepCounts,
}

impl DeductionStats {
    /// Tallies for one dependency kind.
    #[must_use]
    pub fn of(&self, kind: DepKind) -> &DepCounts {
        match kind {
            DepKind::Ww => &self.ww,
            DepKind::Wr => &self.wr,
            DepKind::Rw => &self.rw,
        }
    }

    /// Mutable tallies for one dependency kind.
    pub fn of_mut(&mut self, kind: DepKind) -> &mut DepCounts {
        match kind {
            DepKind::Ww => &mut self.ww,
            DepKind::Wr => &mut self.wr,
            DepKind::Rw => &mut self.rw,
        }
    }

    /// All kinds combined.
    #[must_use]
    pub fn combined(&self) -> DepCounts {
        let mut c = DepCounts::default();
        c.merge(&self.ww);
        c.merge(&self.wr);
        c.merge(&self.rw);
        c
    }
}

impl fmt::Display for DeductionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.combined();
        write!(
            f,
            "deps: total={} overlap={} (β={:.5}) deduced={} uncertain={}",
            c.total(),
            c.overlapping(),
            c.beta(),
            c.deduced,
            c.uncertain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_of_empty_is_zero() {
        assert_eq!(DepCounts::default().beta(), 0.0);
    }

    #[test]
    fn beta_counts_overlapping_share() {
        let c = DepCounts {
            certain: 90,
            deduced: 6,
            uncertain: 4,
        };
        assert_eq!(c.total(), 100);
        assert_eq!(c.overlapping(), 10);
        assert!((c.beta() - 0.10).abs() < 1e-12);
        assert!((c.deduction_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn deduction_rate_without_overlap_is_one() {
        let c = DepCounts {
            certain: 5,
            ..Default::default()
        };
        assert_eq!(c.deduction_rate(), 1.0);
    }

    #[test]
    fn combined_merges_all_kinds() {
        let mut s = DeductionStats::default();
        s.of_mut(DepKind::Ww).certain = 1;
        s.of_mut(DepKind::Wr).deduced = 2;
        s.of_mut(DepKind::Rw).uncertain = 3;
        let c = s.combined();
        assert_eq!(c.total(), 6);
        assert_eq!(s.of(DepKind::Wr).deduced, 2);
    }

    #[test]
    fn display_contains_beta() {
        let s = DeductionStats::default();
        assert!(s.to_string().contains("β=0.00000"));
    }
}
