//! Runtime lock-order witness — the executable half of the L101 story.
//!
//! `leopard-lint`'s L101 pass derives an *acquired-while-held* graph
//! from source text; this module cross-checks it from the running
//! program. Every lock that matters is wrapped in a [`TrackedMutex`]
//! carrying the same stable identity the static pass uses
//! (`Owner.field`, e.g. `"Storage.map"`). In debug builds each
//! acquisition records, per thread, which locks were already held: the
//! resulting edge set must be consistent with (a subset of, or at least
//! acyclic together with) the static graph, and an actual inversion —
//! lock B taken while A is held on one thread, after A was taken while
//! B was held on another — is reported immediately via
//! [`order_violations`]. The test suites assert both directions: no
//! runtime violations, and no observed edge the static pass cannot
//! explain.
//!
//! In release builds the wrapper compiles down to a plain
//! `parking_lot::Mutex` — no thread-local bookkeeping, no global
//! registry, zero overhead on the verification hot path.
//!
//! The witness state is process-global. Tests that inspect it should
//! use uniquely-named locks and filter [`observed_edges`] rather than
//! call [`reset`], which races against concurrently-running tests.

use std::fmt;
use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
mod witness {
    use std::cell::RefCell;
    use std::sync::{Mutex, PoisonError};

    // Const-initialized std mutexes: usable from any thread at any time,
    // including before main in other statics' initializers.
    static EDGES: Mutex<Vec<(&'static str, &'static str)>> = Mutex::new(Vec::new());
    static VIOLATIONS: Mutex<Vec<String>> = Mutex::new(Vec::new());
    static LOCKS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

    thread_local! {
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    fn un<T>(r: Result<T, PoisonError<T>>) -> T {
        r.unwrap_or_else(PoisonError::into_inner)
    }

    /// Records the intent to acquire `name`: registers the lock, adds an
    /// acquired-while-held edge for every lock this thread holds, and
    /// detects inversions against previously observed edges. Called
    /// *before* blocking on the inner mutex so that an actual deadlock
    /// still leaves the evidence behind.
    pub(super) fn before_acquire(name: &'static str) {
        {
            let mut locks = un(LOCKS.lock());
            if !locks.contains(&name) {
                locks.push(name);
            }
        }
        let held: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        let mut new_violations = Vec::new();
        {
            let mut edges = un(EDGES.lock());
            for &from in &held {
                if from == name {
                    new_violations.push(format!(
                        "recursive acquisition of {name} on one thread (self-deadlock)"
                    ));
                }
                if !edges.contains(&(from, name)) {
                    edges.push((from, name));
                }
                if from != name && edges.contains(&(name, from)) {
                    new_violations.push(format!(
                        "lock-order inversion: {name} acquired while {from} is held, \
                         but {from} was previously acquired while {name} was held"
                    ));
                }
            }
        }
        if !new_violations.is_empty() {
            un(VIOLATIONS.lock()).extend(new_violations);
        }
    }

    /// Marks `name` as held by this thread (called after the inner
    /// mutex is actually acquired).
    pub(super) fn acquired(name: &'static str) {
        HELD.with(|h| h.borrow_mut().push(name));
    }

    /// Removes the most recent hold of `name` on this thread.
    pub(super) fn release(name: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&n| n == name) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn edges() -> Vec<(&'static str, &'static str)> {
        un(EDGES.lock()).clone()
    }

    pub(super) fn violations() -> Vec<String> {
        un(VIOLATIONS.lock()).clone()
    }

    pub(super) fn locks() -> Vec<&'static str> {
        un(LOCKS.lock()).clone()
    }

    pub(super) fn reset() {
        un(EDGES.lock()).clear();
        un(VIOLATIONS.lock()).clear();
        un(LOCKS.lock()).clear();
    }
}

/// A mutex with a stable identity, tracked by the debug-build
/// lock-order witness. Release builds see a plain `parking_lot::Mutex`.
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex. `name` is the identity the static
    /// analyzer uses for this lock: `Owner.field` for struct fields
    /// (e.g. `"Storage.map"`), `static.NAME` for statics.
    #[must_use]
    pub const fn new(name: &'static str, value: T) -> Self {
        TrackedMutex {
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// The lock's witness identity.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock. Never poisons; in debug builds the
    /// acquisition is recorded by the lock-order witness.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        witness::before_acquire(self.name);
        let guard = self.inner.lock();
        #[cfg(debug_assertions)]
        witness::acquired(self.name);
        TrackedMutexGuard {
            guard,
            name: self.name,
        }
    }

    /// Consumes the mutex, returning the inner value.
    #[must_use]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires exclusive ownership, so
    /// no tracking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TrackedMutex").field(&self.name).finish()
    }
}

/// Guard returned by [`TrackedMutex::lock`]; releases the hold record
/// (debug builds) and the inner mutex on drop.
pub struct TrackedMutexGuard<'a, T> {
    guard: parking_lot::MutexGuard<'a, T>,
    name: &'static str,
}

impl<T> TrackedMutexGuard<'_, T> {
    /// The identity of the lock this guard holds.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        witness::release(self.name);
        // The inner parking_lot guard is released by its own drop glue,
        // after this runs — the hold record never outlives the hold.
    }
}

/// Every acquired-while-held edge observed so far, as `(held, acquired)`
/// witness identities. Empty in release builds.
#[must_use]
pub fn observed_edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(debug_assertions)]
    {
        witness::edges()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Lock-order violations observed so far: inversions between threads
/// and same-thread recursive acquisitions. Empty in release builds.
#[must_use]
pub fn order_violations() -> Vec<String> {
    #[cfg(debug_assertions)]
    {
        witness::violations()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Every lock identity that has been acquired at least once. Empty in
/// release builds.
#[must_use]
pub fn registered_locks() -> Vec<&'static str> {
    #[cfg(debug_assertions)]
    {
        witness::locks()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Clears all witness state. Races against concurrently-running tests
/// in the same process — prefer uniquely-named locks plus filtering in
/// assertions; this exists for single-threaded harnesses.
pub fn reset() {
    #[cfg(debug_assertions)]
    witness::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests use the `lw_test_` prefix and filter on it: the witness
    // registry is process-global and other tests run concurrently.

    #[test]
    fn nested_acquisition_records_an_edge() {
        let a = TrackedMutex::new("lw_test_edge.a", 0u32);
        let b = TrackedMutex::new("lw_test_edge.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        if cfg!(debug_assertions) {
            assert!(observed_edges().contains(&("lw_test_edge.a", "lw_test_edge.b")));
            assert!(registered_locks().contains(&"lw_test_edge.a"));
            assert!(registered_locks().contains(&"lw_test_edge.b"));
        } else {
            assert!(observed_edges().is_empty());
        }
    }

    #[test]
    fn sequential_acquisition_records_no_edge() {
        let a = TrackedMutex::new("lw_test_seq.a", 0u32);
        let b = TrackedMutex::new("lw_test_seq.b", 0u32);
        {
            let _ga = a.lock();
        }
        {
            let _gb = b.lock();
        }
        assert!(!observed_edges()
            .iter()
            .any(|(f, t)| f.starts_with("lw_test_seq") && t.starts_with("lw_test_seq")));
    }

    #[test]
    fn inversion_is_reported() {
        let a = TrackedMutex::new("lw_test_inv.a", 0u32);
        let b = TrackedMutex::new("lw_test_inv.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        if cfg!(debug_assertions) {
            assert!(
                order_violations().iter().any(|v| v.contains("lw_test_inv")),
                "{:?}",
                order_violations()
            );
        }
    }

    #[test]
    fn guard_drop_clears_the_hold() {
        let a = TrackedMutex::new("lw_test_drop.a", 0u32);
        let b = TrackedMutex::new("lw_test_drop.b", 0u32);
        {
            let g = a.lock();
            drop(g);
            let _gb = b.lock();
        }
        assert!(!observed_edges().contains(&("lw_test_drop.a", "lw_test_drop.b")));
    }

    #[test]
    fn guard_derefs_and_names() {
        let m = TrackedMutex::new("lw_test_deref.m", vec![1u32]);
        {
            let mut g = m.lock();
            g.push(2);
            assert_eq!(g.name(), "lw_test_deref.m");
            assert_eq!(*g, vec![1, 2]);
        }
        assert_eq!(m.name(), "lw_test_deref.m");
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
