//! Fundamental identifier and value types shared across the Leopard stack.
//!
//! Everything Leopard observes is *client-side*: transactions are identified
//! by the id the client assigned, records by their key, and versions only by
//! the value that was read or written. There is deliberately no notion of an
//! internal DBMS version id — deducing version identity from values is part
//! of the black-box game (see `verify::consistent_read`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in time, in nanoseconds on a monotonic clock shared by all
/// clients (the paper's clock-synchronisation assumption, §IV-A).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp; used for preloaded initial versions.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Saturating addition of a nanosecond delta.
    #[must_use]
    pub fn saturating_add(self, delta: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(delta))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// A transaction identifier assigned by the client that ran it.
///
/// `TxnId(0)` is reserved for the *initial transaction* that installed the
/// preloaded database state before any traced activity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The virtual transaction that installed the initial database state.
    pub const INITIAL: TxnId = TxnId(0);
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of one client connection (one trace-producing stream).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A record key. Workloads that are naturally relational (TPC-C, SmallBank)
/// map their composite keys into this space; see `leopard-workloads`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// The value observed by a read or produced by a write.
///
/// Version identity is deduced by matching values, so workloads that write
/// unique values (BlindW) make every dependency deducible, while workloads
/// with duplicate writes (SmallBank `amalgamate`) leave residual uncertainty
/// — exactly the effect Fig. 13 of the paper measures.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Value(pub u64);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_is_numeric() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(Timestamp::ZERO < Timestamp::MAX);
    }

    #[test]
    fn timestamp_saturating_add_saturates() {
        assert_eq!(Timestamp::MAX.saturating_add(1), Timestamp::MAX);
        assert_eq!(Timestamp(1).saturating_add(2), Timestamp(3));
    }

    #[test]
    fn initial_txn_is_zero() {
        assert_eq!(TxnId::INITIAL, TxnId(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TxnId(7).to_string(), "t7");
        assert_eq!(ClientId(3).to_string(), "c3");
        assert_eq!(Key(9).to_string(), "k9");
        assert_eq!(Value(5).to_string(), "v5");
        assert_eq!(Timestamp(12).to_string(), "12ns");
    }
}
