//! Per-transaction bookkeeping used by all four mechanism verifiers.

use super::version_store::VersionUid;
use crate::fxhash::FxHashMap;
use crate::interval::Interval;
use crate::types::{ClientId, Key, TxnId, Value};
use serde::{Deserialize, Serialize};

/// Globally ordered identity of the read-check execution that matched a
/// read (sharded verification, [`super::ShardedVerifier`]): the first five
/// words of the shard emission key at match time. Replaying a committing
/// transaction's matched reads in `ReadRunKey` order reconstructs the exact
/// order the sequential verifier matched them in, regardless of which shard
/// owned each key. All-zero in single-threaded (direct) mode, where the
/// buffer's insertion order already is the match order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReadRunKey {
    /// Stream sequence number of the trace whose processing ran the check.
    pub seq: u64,
    /// Emission phase within that trace (pending-read flush vs inline).
    pub phase: u64,
    /// First phase-specific word (due timestamp or element index).
    pub a: u64,
    /// Second phase-specific word (the pending read's birth sequence).
    pub b: u64,
    /// Third phase-specific word (the pending read's birth element).
    pub c: u64,
}

/// A read-set element uniquely matched to a version (§V-A): the source of
/// a wr dependency, buffered until the reading transaction commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchedRead {
    /// The record that was read.
    pub key: Key,
    /// Stable id of the matched version.
    pub uid: VersionUid,
    /// The transaction that installed the matched version.
    pub writer: TxnId,
    /// The read operation's trace interval.
    pub read_op: Interval,
    /// `true` when the candidate set had size one, i.e. the match was
    /// already certain from non-overlapping intervals alone.
    pub interval_certain: bool,
    /// Match-time ordering identity for sharded replay (zero when direct).
    pub run_key: ReadRunKey,
}

/// Terminal state of a transaction as observed from its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// Commit trace seen; the interval is the commit operation's.
    Committed(Interval),
    /// Abort trace seen; the interval is the abort operation's.
    Aborted(Interval),
}

/// Everything the verifier remembers about one transaction.
#[derive(Debug, Clone)]
pub struct TxnInfo {
    /// The client that ran the transaction.
    pub client: ClientId,
    /// Interval of the transaction's first operation: the snapshot
    /// generation interval for transaction-level consistent reads and the
    /// FUW concurrency check (Definition 2).
    pub first_op: Interval,
    /// Keys the transaction wrote (its lock set under ME).
    pub write_keys: Vec<Key>,
    /// Keys the transaction read-locked (SELECT ... FOR UPDATE).
    pub locked_read_keys: Vec<Key>,
    /// Last value written per key, for read-own-writes checks.
    pub own_writes: FxHashMap<Key, crate::types::Value>,
    /// Uniquely matched reads, flushed into wr/rw dependencies at commit.
    pub matched_reads: Vec<MatchedRead>,
    /// Terminal state, once the commit/abort trace arrives.
    pub outcome: Option<TxnOutcome>,
}

impl TxnInfo {
    /// `true` once the commit trace has been processed.
    #[must_use]
    pub fn is_committed(&self) -> bool {
        matches!(self.outcome, Some(TxnOutcome::Committed(_)))
    }

    /// The commit interval, if committed.
    #[must_use]
    pub fn commit_interval(&self) -> Option<Interval> {
        match self.outcome {
            Some(TxnOutcome::Committed(iv)) => Some(iv),
            _ => None,
        }
    }

    /// Interval of the terminal operation (commit or abort), if any.
    #[must_use]
    pub fn terminal_interval(&self) -> Option<Interval> {
        match self.outcome {
            Some(TxnOutcome::Committed(iv)) | Some(TxnOutcome::Aborted(iv)) => Some(iv),
            None => None,
        }
    }
}

/// Plain-data image of one [`TxnInfo`] entry, used by checkpointing.
///
/// Maps are flattened to sorted vectors so the offline-capable serde stub
/// (no `HashMap` impls, no generic derives) can round-trip it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnSnap {
    /// The transaction id.
    pub id: TxnId,
    /// The client that ran the transaction.
    pub client: ClientId,
    /// Snapshot-generation interval (first operation).
    pub first_op: Interval,
    /// Keys the transaction wrote.
    pub write_keys: Vec<Key>,
    /// Keys the transaction read-locked.
    pub locked_read_keys: Vec<Key>,
    /// Last value written per key, sorted by key.
    pub own_writes: Vec<(Key, Value)>,
    /// Uniquely matched reads, in match order.
    pub matched_reads: Vec<MatchedRead>,
    /// Terminal state, if the terminal trace has been seen.
    pub outcome: Option<TxnOutcome>,
}

/// The table of transactions currently relevant to verification.
///
/// Entries are created lazily at a transaction's first trace and removed by
/// garbage collection once the transaction is terminated and certainly
/// outside every unverified snapshot window.
#[derive(Debug, Default)]
pub struct TxnTable {
    txns: FxHashMap<TxnId, TxnInfo>,
}

impl TxnTable {
    /// Returns the entry for `txn`, creating it on first contact.
    ///
    /// `first_interval` is the interval of the trace that caused the
    /// contact; for a new entry it becomes the snapshot-generation
    /// interval.
    pub fn observe(
        &mut self,
        txn: TxnId,
        client: ClientId,
        first_interval: Interval,
    ) -> &mut TxnInfo {
        self.txns.entry(txn).or_insert_with(|| TxnInfo {
            client,
            first_op: first_interval,
            write_keys: Vec::new(),
            locked_read_keys: Vec::new(),
            own_writes: FxHashMap::default(),
            matched_reads: Vec::new(),
            outcome: None,
        })
    }

    /// Immutable lookup.
    #[must_use]
    pub fn get(&self, txn: TxnId) -> Option<&TxnInfo> {
        self.txns.get(&txn)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, txn: TxnId) -> Option<&mut TxnInfo> {
        self.txns.get_mut(&txn)
    }

    /// Number of tracked transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// `true` when no transaction is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Cheap estimate of the table's live memory: every tracked
    /// transaction at its inline size plus a flat allowance for its key
    /// sets and own-write map.
    #[must_use]
    pub fn mem_usage(&self) -> crate::budget::MemUsage {
        crate::budget::MemUsage::per_entry(self.txns.len(), std::mem::size_of::<TxnInfo>() + 192)
    }

    /// The earliest snapshot-generation `ts_bef` among transactions that
    /// have not terminated yet — the verifier's GC low watermark. `None`
    /// when no transaction is active.
    #[must_use]
    pub fn earliest_active_snapshot(&self) -> Option<crate::types::Timestamp> {
        self.txns
            .values()
            .filter(|t| t.outcome.is_none())
            .map(|t| t.first_op.lo)
            .min()
    }

    /// Drops terminated transactions whose terminal interval ended before
    /// `low`, returning how many were removed.
    pub fn prune(&mut self, low: crate::types::Timestamp) -> usize {
        let before = self.txns.len();
        self.txns.retain(|_, info| match info.terminal_interval() {
            Some(iv) => iv.hi >= low,
            None => true,
        });
        before - self.txns.len()
    }

    /// Transactions with no terminal trace yet, sorted by id — the
    /// indeterminate set reported under degraded coverage.
    #[must_use]
    pub fn active_txns(&self) -> Vec<TxnId> {
        let mut ids: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, info)| info.outcome.is_none())
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Flattens the table into plain-data snapshots, sorted by id.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TxnSnap> {
        let mut snaps: Vec<TxnSnap> = self
            .txns
            .iter()
            .map(|(&id, info)| {
                let mut own_writes: Vec<(Key, Value)> =
                    info.own_writes.iter().map(|(&k, &v)| (k, v)).collect();
                own_writes.sort_unstable_by_key(|&(k, _)| k);
                TxnSnap {
                    id,
                    client: info.client,
                    first_op: info.first_op,
                    write_keys: info.write_keys.clone(),
                    locked_read_keys: info.locked_read_keys.clone(),
                    own_writes,
                    matched_reads: info.matched_reads.clone(),
                    outcome: info.outcome,
                }
            })
            .collect();
        snaps.sort_unstable_by_key(|s| s.id);
        snaps
    }

    /// Rebuilds a table from [`TxnSnap`]s produced by [`TxnTable::snapshot`].
    #[must_use]
    pub fn restore(snaps: &[TxnSnap]) -> TxnTable {
        let mut txns = FxHashMap::default();
        for snap in snaps {
            txns.insert(
                snap.id,
                TxnInfo {
                    client: snap.client,
                    first_op: snap.first_op,
                    write_keys: snap.write_keys.clone(),
                    locked_read_keys: snap.locked_read_keys.clone(),
                    own_writes: snap.own_writes.iter().copied().collect(),
                    matched_reads: snap.matched_reads.clone(),
                    outcome: snap.outcome,
                },
            );
        }
        TxnTable { txns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Timestamp, Value};

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    #[test]
    fn observe_creates_once_and_keeps_first_interval() {
        let mut table = TxnTable::default();
        table.observe(TxnId(1), ClientId(0), iv(5, 6));
        table.observe(TxnId(1), ClientId(0), iv(9, 10));
        assert_eq!(table.get(TxnId(1)).unwrap().first_op, iv(5, 6));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn outcome_accessors() {
        let mut table = TxnTable::default();
        let info = table.observe(TxnId(1), ClientId(0), iv(0, 1));
        assert!(!info.is_committed());
        info.outcome = Some(TxnOutcome::Committed(iv(8, 9)));
        assert!(info.is_committed());
        assert_eq!(info.commit_interval(), Some(iv(8, 9)));
        assert_eq!(info.terminal_interval(), Some(iv(8, 9)));

        let info2 = table.observe(TxnId(2), ClientId(0), iv(0, 1));
        info2.outcome = Some(TxnOutcome::Aborted(iv(3, 4)));
        assert!(!info2.is_committed());
        assert_eq!(info2.commit_interval(), None);
        assert_eq!(info2.terminal_interval(), Some(iv(3, 4)));
    }

    #[test]
    fn earliest_active_snapshot_ignores_terminated() {
        let mut table = TxnTable::default();
        table.observe(TxnId(1), ClientId(0), iv(10, 11));
        table.observe(TxnId(2), ClientId(1), iv(4, 5));
        table.get_mut(TxnId(2)).unwrap().outcome = Some(TxnOutcome::Committed(iv(20, 21)));
        assert_eq!(table.earliest_active_snapshot(), Some(Timestamp(10)));
        table.get_mut(TxnId(1)).unwrap().outcome = Some(TxnOutcome::Aborted(iv(12, 13)));
        assert_eq!(table.earliest_active_snapshot(), None);
    }

    #[test]
    fn prune_drops_only_old_terminated() {
        let mut table = TxnTable::default();
        table.observe(TxnId(1), ClientId(0), iv(0, 1)).outcome =
            Some(TxnOutcome::Committed(iv(2, 3)));
        table.observe(TxnId(2), ClientId(0), iv(0, 1)); // active
        table.observe(TxnId(3), ClientId(0), iv(5, 6)).outcome =
            Some(TxnOutcome::Committed(iv(90, 91)));
        let removed = table.prune(Timestamp(50));
        assert_eq!(removed, 1);
        assert!(table.get(TxnId(1)).is_none());
        assert!(table.get(TxnId(2)).is_some());
        assert!(table.get(TxnId(3)).is_some());
    }

    #[test]
    fn own_writes_track_last_value() {
        let mut table = TxnTable::default();
        let info = table.observe(TxnId(1), ClientId(0), iv(0, 1));
        info.own_writes.insert(Key(1), Value(10));
        info.own_writes.insert(Key(1), Value(20));
        assert_eq!(info.own_writes.get(&Key(1)), Some(&Value(20)));
    }
}
