//! The mirrored lock table for mutual-exclusion verification
//! (§V-B, Theorem 3 of the paper).
//!
//! Under 2PL every write (and locking read) acquires an exclusive lock
//! inside the operation's trace interval and releases it inside the
//! commit/abort trace interval. Two conflicting locks must have disjoint
//! hold periods; `resolve_exclusive_pair` decides, from the four intervals
//! alone, whether that is certainly violated, or in which order the locks
//! were held (from which a ww dependency follows).

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::interval::{resolve_exclusive_pair, Interval, PairOrder};
use crate::types::{Key, Timestamp, TxnId};
use serde::{Deserialize, Serialize};

/// One mirrored lock on one record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockEntry {
    /// The holder.
    pub txn: TxnId,
    /// Lock acquiring time interval (Definition 3): the trace interval of
    /// the operation that took the lock.
    pub acquire: Interval,
    /// Lock releasing time interval: the terminal operation's trace
    /// interval, once seen.
    pub release: Option<Interval>,
}

/// Outcome of checking a freshly released lock against one earlier lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockCheck {
    /// Every feasible order of the lock operations has both locks held at
    /// once: an ME violation (Fig. 7(a)).
    Violation {
        /// Acquire interval of the lock being released (the caller's).
        own_acquire: Interval,
        /// The conflicting holder with its acquire and release intervals.
        other: (TxnId, Interval, Interval),
    },
    /// Exactly one order is feasible: the hold order is deduced and a ww
    /// dependency `first → second` follows (Fig. 7(b)).
    Order {
        /// Transaction whose lock was certainly held first.
        first: TxnId,
        /// Transaction whose lock was certainly held second.
        second: TxnId,
        /// `true` when the two acquire intervals did not overlap, i.e. the
        /// order was already certain without the mutual-exclusion argument.
        certain: bool,
    },
}

/// Plain-data image of one record's mirrored locks, used by checkpointing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyLocks {
    /// The record.
    pub key: Key,
    /// Its lock entries, in acquisition order.
    pub entries: Vec<LockEntry>,
}

/// The lock table: per-record lists of lock time intervals.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: FxHashMap<Key, Vec<LockEntry>>,
    /// Total live entries, maintained incrementally (O(1) footprint).
    total: usize,
    /// Keys touched since the last prune; GC revisits only these.
    dirty: FxHashSet<Key>,
}

impl LockTable {
    /// Mirrors a lock acquisition by `txn` on `key` within `acquire`.
    ///
    /// Re-acquisition by the same transaction (lock already held) keeps the
    /// earliest acquire interval.
    pub fn acquire(&mut self, key: Key, txn: TxnId, acquire: Interval) {
        self.dirty.insert(key);
        let entries = self.locks.entry(key).or_default();
        if entries.iter().any(|e| e.txn == txn && e.release.is_none()) {
            return;
        }
        entries.push(LockEntry {
            txn,
            acquire,
            release: None,
        });
        self.total += 1;
    }

    /// Mirrors the release of every lock `txn` holds on `keys` (at commit
    /// or abort), checking each released lock against every conflicting
    /// lock already released (Alg. 2, `MutualExclusion`).
    ///
    /// Pairs where the other lock is still held are checked later, when
    /// that lock releases — by then both release intervals are known and
    /// the check is exact. Results are appended to `out` as
    /// `(key, check)`.
    pub fn release_txn(
        &mut self,
        txn: TxnId,
        keys: &[Key],
        release: Interval,
        out: &mut Vec<(Key, LockCheck)>,
    ) {
        for &key in keys {
            self.release_one(txn, key, release, out);
        }
    }

    /// Mirrors the release of the lock `txn` holds on a single `key`,
    /// appending the pairwise checks to `out` — the per-key unit of
    /// [`LockTable::release_txn`], exposed so a sharded verifier can walk
    /// the transaction's global key list and release only the keys a shard
    /// owns while preserving the sequential check order.
    pub fn release_one(
        &mut self,
        txn: TxnId,
        key: Key,
        release: Interval,
        out: &mut Vec<(Key, LockCheck)>,
    ) {
        self.dirty.insert(key);
        let Some(entries) = self.locks.get_mut(&key) else {
            return;
        };
        let Some(self_idx) = entries
            .iter()
            .position(|e| e.txn == txn && e.release.is_none())
        else {
            return;
        };
        entries[self_idx].release = Some(release);
        let (own_acquire, own_release) = (entries[self_idx].acquire, release);
        for (i, other) in entries.iter().enumerate() {
            if i == self_idx || other.txn == txn {
                continue;
            }
            let Some(other_release) = other.release else {
                continue; // checked when the other lock releases
            };
            let check = match resolve_exclusive_pair(
                &own_acquire,
                &own_release,
                &other.acquire,
                &other_release,
            ) {
                PairOrder::CertainlyConcurrent => LockCheck::Violation {
                    own_acquire,
                    other: (other.txn, other.acquire, other_release),
                },
                PairOrder::FirstThenSecond => LockCheck::Order {
                    first: txn,
                    second: other.txn,
                    certain: !own_acquire.overlaps(&other.acquire),
                },
                PairOrder::SecondThenFirst => LockCheck::Order {
                    first: other.txn,
                    second: txn,
                    certain: !own_acquire.overlaps(&other.acquire),
                },
            };
            out.push((key, check));
        }
    }

    /// Drops released locks whose release interval ended before `low`,
    /// keeping still-held locks. Records left without locks are removed.
    /// Returns the number of entries dropped.
    pub fn prune(&mut self, low: Timestamp) -> usize {
        let mut removed = 0;
        for key in self.dirty.drain() {
            let Some(entries) = self.locks.get_mut(&key) else {
                continue;
            };
            let before = entries.len();
            entries.retain(|e| match e.release {
                Some(r) => r.hi >= low,
                None => true,
            });
            removed += before - entries.len();
            if entries.is_empty() {
                self.locks.remove(&key);
            }
        }
        self.total -= removed;
        removed
    }

    /// Total mirrored lock entries (footprint metric), O(1).
    #[must_use]
    pub fn lock_count(&self) -> usize {
        self.total
    }

    /// Number of records with at least one mirrored lock.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.locks.len()
    }

    /// Cheap estimate of the table's live memory: every lock entry at
    /// its inline size, plus map-slot overhead per locked record.
    #[must_use]
    pub fn mem_usage(&self) -> crate::budget::MemUsage {
        let per_record = std::mem::size_of::<Key>() + 48;
        crate::budget::MemUsage::per_entry(self.total, std::mem::size_of::<LockEntry>() + 8)
            + crate::budget::MemUsage {
                bytes: (self.locks.len() * per_record) as u64,
                entries: 0,
            }
    }

    /// Flattens the table into plain-data snapshots, sorted by key.
    /// Per-key entry order (acquisition order) is preserved.
    #[must_use]
    pub fn snapshot(&self) -> Vec<KeyLocks> {
        let mut snaps: Vec<KeyLocks> = self
            .locks
            .iter()
            .map(|(&key, entries)| KeyLocks {
                key,
                entries: entries.clone(),
            })
            .collect();
        snaps.sort_unstable_by_key(|s| s.key);
        snaps
    }

    /// Rebuilds a table from [`KeyLocks`] produced by
    /// [`LockTable::snapshot`]. Every restored key is marked dirty so the
    /// next prune revisits it; `total` is recomputed.
    #[must_use]
    pub fn restore(snaps: &[KeyLocks]) -> LockTable {
        let mut locks: FxHashMap<Key, Vec<LockEntry>> = FxHashMap::default();
        let mut dirty = FxHashSet::default();
        let mut total = 0;
        for snap in snaps {
            total += snap.entries.len();
            dirty.insert(snap.key);
            locks.insert(snap.key, snap.entries.clone());
        }
        LockTable {
            locks,
            total,
            dirty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(Timestamp(lo), Timestamp(hi))
    }

    #[test]
    fn serial_locks_deduce_order() {
        let mut lt = LockTable::default();
        lt.acquire(Key(1), TxnId(1), iv(0, 4));
        let mut out = Vec::new();
        lt.release_txn(TxnId(1), &[Key(1)], iv(5, 8), &mut out);
        assert!(out.is_empty(), "only one lock: nothing to check");
        lt.acquire(Key(1), TxnId(2), iv(10, 12));
        lt.release_txn(TxnId(2), &[Key(1)], iv(13, 15), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1,
            LockCheck::Order {
                first: TxnId(1),
                second: TxnId(2),
                certain: true,
            }
        );
    }

    #[test]
    fn overlapping_acquires_still_deduce_single_order() {
        // Fig. 7(b): acquires overlap but only one serialization is feasible.
        let mut lt = LockTable::default();
        lt.acquire(Key(1), TxnId(1), iv(0, 6));
        lt.acquire(Key(1), TxnId(2), iv(5, 12));
        let mut out = Vec::new();
        lt.release_txn(TxnId(1), &[Key(1)], iv(7, 8), &mut out);
        assert!(out.is_empty(), "other lock still held: deferred");
        lt.release_txn(TxnId(2), &[Key(1)], iv(13, 15), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].1,
            LockCheck::Order {
                first: TxnId(1),
                second: TxnId(2),
                certain: false,
            }
        );
    }

    #[test]
    fn certainly_concurrent_holds_are_violations() {
        // Fig. 7(a): both acquires certainly precede both releases.
        let mut lt = LockTable::default();
        lt.acquire(Key(1), TxnId(1), iv(0, 10));
        lt.acquire(Key(1), TxnId(2), iv(1, 9));
        let mut out = Vec::new();
        lt.release_txn(TxnId(1), &[Key(1)], iv(11, 20), &mut out);
        lt.release_txn(TxnId(2), &[Key(1)], iv(12, 21), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, LockCheck::Violation { .. }));
    }

    #[test]
    fn reacquire_by_same_txn_is_idempotent() {
        let mut lt = LockTable::default();
        lt.acquire(Key(1), TxnId(1), iv(0, 2));
        lt.acquire(Key(1), TxnId(1), iv(3, 4));
        assert_eq!(lt.lock_count(), 1);
        let mut out = Vec::new();
        lt.release_txn(TxnId(1), &[Key(1)], iv(5, 6), &mut out);
        // After release a new acquire by the same txn creates a new entry.
        lt.acquire(Key(1), TxnId(1), iv(10, 11));
        assert_eq!(lt.lock_count(), 2);
    }

    #[test]
    fn locks_on_different_keys_never_conflict() {
        let mut lt = LockTable::default();
        lt.acquire(Key(1), TxnId(1), iv(0, 10));
        lt.acquire(Key(2), TxnId(2), iv(1, 9));
        let mut out = Vec::new();
        lt.release_txn(TxnId(1), &[Key(1)], iv(11, 20), &mut out);
        lt.release_txn(TxnId(2), &[Key(2)], iv(12, 21), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn prune_drops_only_old_released() {
        let mut lt = LockTable::default();
        lt.acquire(Key(1), TxnId(1), iv(0, 2));
        let mut out = Vec::new();
        lt.release_txn(TxnId(1), &[Key(1)], iv(3, 4), &mut out);
        lt.acquire(Key(1), TxnId(2), iv(10, 12)); // still held
        lt.acquire(Key(2), TxnId(3), iv(0, 1));
        lt.release_txn(TxnId(3), &[Key(2)], iv(2, 3), &mut out);
        let removed = lt.prune(Timestamp(8));
        assert_eq!(removed, 2);
        assert_eq!(lt.lock_count(), 1);
        assert_eq!(lt.record_count(), 1);
    }

    #[test]
    fn three_way_conflicts_check_all_released_pairs() {
        let mut lt = LockTable::default();
        lt.acquire(Key(1), TxnId(1), iv(0, 2));
        lt.acquire(Key(1), TxnId(2), iv(10, 12));
        lt.acquire(Key(1), TxnId(3), iv(20, 22));
        let mut out = Vec::new();
        lt.release_txn(TxnId(1), &[Key(1)], iv(3, 4), &mut out);
        lt.release_txn(TxnId(2), &[Key(1)], iv(13, 14), &mut out);
        lt.release_txn(TxnId(3), &[Key(1)], iv(23, 24), &mut out);
        // Pairs: (2 vs 1), (3 vs 1), (3 vs 2).
        assert_eq!(out.len(), 3);
        assert!(out
            .iter()
            .all(|(_, c)| matches!(c, LockCheck::Order { .. })));
    }
}
