//! Key-sharded parallel verification: N worker shards running the
//! per-key mechanism checks (CR, ME, FUW), one driver running the
//! cross-shard serialization certifier.
//!
//! Every shard receives **every** admitted trace and keeps a full
//! transaction table (cheap, and it makes commit-time key indices agree
//! across shards), but restricts the version store, the lock table and
//! the deferred-read heap to the keys it owns (`fxhash(key) % N`). The
//! effects a shard would apply to the *global* structures — violations,
//! dependency edges, certifier nodes, coverage notes — are buffered under
//! an [`EmitKey`] that encodes the exact position the sequential verifier
//! would have produced them at. At every barrier the driver merges all
//! shards' buffers, sorts by key and applies in order; the result is
//! bit-identical to the sequential verifier's and independent of worker
//! scheduling by construction.
//!
//! Barriers are aligned to the GC cadence (`gc_every` admitted traces):
//! the driver collects an epoch from every shard, applies the merged
//! effects, computes the global GC low watermark (which needs the minimum
//! pending-read snapshot across *all* shards) and broadcasts the prune.
//! Memory-budget enforcement runs at the same barriers against the
//! aggregate usage; this is the one documented divergence from the
//! sequential verifier, whose rung-1 check runs per trace.

use super::{
    Coverage, DepGraph, Effect, EmitKey, Footprint, ShardRole, SpillIndexEntry, Verifier,
    VerifierConfig, VerifyCounters, VerifyOutcome, PH_QUAR,
};
use crate::budget::MemUsage;
use crate::checkpoint::{Checkpoint, CheckpointError, ShardedCheckpoint, CHECKPOINT_VERSION};
use crate::lockwitness::TrackedMutex;
use crate::obs;
use crate::preflight::QuarantineGate;
use crate::report::{BugReport, Violation};
use crate::stats::DeductionStats;
use crate::store::{SpillSettings, SpillStats, SpillTier, StoreResult};
use crate::trace::Trace;
use crate::types::{ClientId, Key, Timestamp, TxnId, Value};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Traces per broadcast batch between barriers.
const BATCH_TRACES: usize = 128;

/// Driver → shard protocol.
enum ToShard {
    /// Initial database state; each shard applies its owned subset.
    Preload(Arc<Vec<(Key, Value)>>),
    /// A batch of admitted traces, in stream order.
    Batch(Arc<Vec<Trace>>),
    /// Barrier: reply with an [`EpochOut`] (drained emissions + watermark
    /// inputs).
    Flush,
    /// Prune per-key state up to the driver-computed low watermark.
    Gc(Timestamp),
    /// Attach a freshly opened spill tier (the rung-1.5 backing store);
    /// each shard receives its own tier over a private directory.
    AttachSpill(Box<SpillTier>),
    /// Resume path: attach the shard's tier and adopt the spill index
    /// carried by that shard's checkpoint image.
    ResumeSpill(Box<SpillTier>, Arc<Vec<SpillIndexEntry>>),
    /// Barrier: run one spill pass (rung 1.5), refresh the shared usage
    /// sample and reply with an [`EpochOut`].
    Spill,
    /// Reply with a per-shard checkpoint image (only sent at a barrier,
    /// when the emission buffer is empty).
    Checkpoint,
    /// Flush remaining deferred checks and reply with the final epoch;
    /// the worker exits afterwards.
    Finish,
}

/// Shard → driver replies.
enum FromShard {
    Epoch(Box<EpochOut>),
    Image(Box<Checkpoint>),
}

/// One shard's barrier report.
struct EpochOut {
    emissions: Vec<(EmitKey, Effect)>,
    pending_low: Option<Timestamp>,
    earliest_active: Option<Timestamp>,
    stream_pos: Timestamp,
    counters: VerifyCounters,
    stats: DeductionStats,
    footprint: Footprint,
    /// Cumulative CPU-busy time this worker has spent processing.
    busy: Duration,
    /// Sorted indeterminate transactions; only on [`ToShard::Finish`].
    active: Option<Vec<TxnId>>,
    /// The shard's latched spill-store fault, if one occurred.
    store_fault: Option<String>,
    /// Cumulative spill-tier activity counters for this shard.
    spill_stats: SpillStats,
}

struct ShardHandle {
    tx: mpsc::Sender<ToShard>,
    rx: mpsc::Receiver<FromShard>,
    usage: Arc<TrackedMutex<MemUsage>>,
    join: Option<JoinHandle<()>>,
}

fn shard_worker(
    index: usize,
    mut v: Verifier,
    rx: mpsc::Receiver<ToShard>,
    tx: mpsc::Sender<FromShard>,
    usage: Arc<TrackedMutex<MemUsage>>,
) {
    // Busy time excludes blocking on the channel: it is the per-shard
    // critical-path cost a dedicated core would pay, the number the
    // shards bench projects scaling from.
    let lane = obs::shard_lane(index);
    let mut busy = Duration::ZERO;
    while let Ok(msg) = rx.recv() {
        // lint: allow(L004): observability only — busy time feeds the obs registry's per-shard lanes and never feeds verification state
        let t0 = Instant::now();
        let span = obs::span_start();
        match msg {
            ToShard::Preload(items) => {
                for &(key, value) in items.iter() {
                    v.preload(key, value);
                }
                busy += t0.elapsed();
            }
            ToShard::Batch(traces) => {
                for t in traces.iter() {
                    v.process(t);
                }
                let u = v.mem_usage();
                *usage.lock() = u;
                busy += t0.elapsed();
                let dur = obs::span_end(obs::Stage::ShardBatch, lane, span);
                obs::hist(obs::HistId::ShardBatchUs, dur);
            }
            ToShard::Flush => {
                let out = epoch_out(&mut v, None, busy);
                busy += t0.elapsed();
                if tx.send(FromShard::Epoch(Box::new(out))).is_err() {
                    return;
                }
            }
            ToShard::Gc(low) => {
                v.shard_gc(low);
                let u = v.mem_usage();
                *usage.lock() = u;
                busy += t0.elapsed();
                obs::span_end(obs::Stage::GcBarrier, lane, span);
            }
            ToShard::AttachSpill(tier) => {
                v.attach_spill(*tier);
                busy += t0.elapsed();
            }
            ToShard::ResumeSpill(tier, index) => {
                v.resume_spill(*tier, &index);
                busy += t0.elapsed();
            }
            ToShard::Spill => {
                if v.can_spill() {
                    v.spill_pass();
                }
                let u = v.mem_usage();
                *usage.lock() = u;
                let out = epoch_out(&mut v, None, busy);
                busy += t0.elapsed();
                if tx.send(FromShard::Epoch(Box::new(out))).is_err() {
                    return;
                }
            }
            ToShard::Checkpoint => {
                // Sync failures are retried by the tier and counted; if
                // pages were still lost, resuming from this image faults
                // them in and surfaces a typed corrupt-store error — the
                // image itself stays byte-stable either way.
                let _ = v.sync_spill();
                if tx.send(FromShard::Image(Box::new(v.checkpoint()))).is_err() {
                    return;
                }
                busy += t0.elapsed();
                obs::span_end(obs::Stage::Checkpoint, lane, span);
            }
            ToShard::Finish => {
                v.shard_finish_flush();
                let active = v.active_txns();
                busy += t0.elapsed();
                let out = epoch_out(&mut v, Some(active), busy);
                let _ = tx.send(FromShard::Epoch(Box::new(out)));
                return;
            }
        }
    }
}

fn epoch_out(v: &mut Verifier, active: Option<Vec<TxnId>>, busy: Duration) -> EpochOut {
    EpochOut {
        emissions: v.take_emissions(),
        pending_low: v.pending_low(),
        earliest_active: v.earliest_active(),
        stream_pos: v.stream_pos(),
        counters: v.counters(),
        stats: *v.stats(),
        footprint: v.footprint(),
        busy,
        active,
        store_fault: v.store_fault().map(std::string::ToString::to_string),
        spill_stats: v.spill_stats(),
    }
}

fn add_stats(into: &mut DeductionStats, s: &DeductionStats) {
    into.ww.certain += s.ww.certain;
    into.ww.deduced += s.ww.deduced;
    into.ww.uncertain += s.ww.uncertain;
    into.wr.certain += s.wr.certain;
    into.wr.deduced += s.wr.deduced;
    into.wr.uncertain += s.wr.uncertain;
    into.rw.certain += s.rw.certain;
    into.rw.deduced += s.rw.deduced;
    into.rw.uncertain += s.rw.uncertain;
}

/// The key-sharded parallel verifier: a drop-in alternative to
/// [`Verifier`] that runs the per-key mechanism checks on N worker
/// threads and the serialization certifier on the calling thread,
/// producing a [`VerifyOutcome`] whose report, statistics, trace/commit
/// counters and coverage are bit-identical to the sequential verifier's
/// (peak-footprint and budget counters measure the sharded topology and
/// differ). See the module docs for the protocol.
#[derive(Debug)]
pub struct ShardedVerifier {
    cfg: VerifierConfig,
    n: usize,
    workers: Vec<ShardHandle>,
    graph: DepGraph,
    report: BugReport,
    stats: DeductionStats,
    counters: VerifyCounters,
    coverage: Coverage,
    quarantine: QuarantineGate,
    batch: Vec<Trace>,
    preload_buf: Vec<(Key, Value)>,
    preload_sent: bool,
    traces_fed: u64,
    admitted: u64,
    /// Driver-originated effects (quarantine notes) awaiting the next
    /// barrier, keyed so they merge into the sequential emission order.
    driver_emissions: Vec<(EmitKey, Effect)>,
    /// `true` once per-shard spill tiers are attached (rung 1.5 armed).
    spill_attached: bool,
    /// First unrecoverable spill-store failure reported by any shard.
    store_fault: Option<String>,
    /// Guards the one-shot coverage note for shard-side spill-write
    /// fallbacks (the workers' own notes stay shard-local).
    spill_fallback_noted: bool,
    /// Driver-originated fallbacks (failed tier attachment), folded into
    /// the barrier-summed worker tallies.
    driver_spill_fallbacks: u64,
    /// Aggregate spill-tier counters as of the last barrier.
    spill_stats: SpillStats,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle").finish_non_exhaustive()
    }
}

impl ShardedVerifier {
    /// Creates a sharded verifier with `n` worker shards (`n >= 1`).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[must_use]
    pub fn new(cfg: VerifierConfig, n: usize) -> ShardedVerifier {
        assert!(n >= 1, "shard count must be at least 1");
        let workers = (0..n)
            .map(|i| spawn_shard(Verifier::for_shard(cfg, ShardRole { shard: i, of: n }), i))
            .collect();
        obs::gauge_set(obs::Gauge::Shards, n as u64);
        ShardedVerifier {
            cfg,
            n,
            workers,
            graph: DepGraph::default(),
            report: BugReport::default(),
            stats: DeductionStats::default(),
            counters: VerifyCounters::default(),
            coverage: Coverage::default(),
            quarantine: QuarantineGate::default(),
            batch: Vec::with_capacity(BATCH_TRACES),
            preload_buf: Vec::new(),
            preload_sent: false,
            traces_fed: 0,
            admitted: 0,
            driver_emissions: Vec::new(),
            spill_attached: false,
            store_fault: None,
            spill_fallback_noted: false,
            driver_spill_fallbacks: 0,
            spill_stats: SpillStats::default(),
        }
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.n
    }

    /// Installs the initial database state (before the first trace).
    pub fn preload(&mut self, key: Key, value: Value) {
        self.preload_buf.push((key, value));
    }

    /// Feeds one trace, in non-decreasing `ts_bef` order. Traces are
    /// batched and broadcast to every shard; barriers (effect merge, GC)
    /// run on the `gc_every` cadence of admitted traces.
    pub fn process(&mut self, trace: &Trace) {
        self.traces_fed += 1;
        // Degraded-mode quarantine runs on the driver, pre-broadcast, so
        // shards only see admitted traces and their sequence numbers agree
        // with the driver's admitted counter.
        if self.cfg.degraded {
            if let Some(diag) = self.quarantine.admit(trace) {
                // Buffered rather than applied: the note must interleave
                // with shard-emitted notes in sequential order, so it
                // joins the merge at the next barrier under PH_QUAR.
                let key: EmitKey = [self.admitted, PH_QUAR, self.traces_fed, 0, 0, 0, 0, 0];
                self.driver_emissions
                    .push((key, Effect::Quarantined(format!("quarantined: {diag}"))));
                return;
            }
        }
        self.batch.push(trace.clone());
        self.admitted += 1;
        obs::ctr(obs::Counter::OpsIngested, 1);
        if self.admitted.is_multiple_of(self.cfg.gc_every) {
            self.flush_epoch(self.cfg.gc);
        } else if self.batch.len() >= BATCH_TRACES {
            self.dispatch_batch();
        }
    }

    fn send_all(&self, make: impl Fn() -> ToShard) {
        for w in &self.workers {
            // lint: allow(L001): a dead worker shard is unrecoverable; re-raise as a panic
            w.tx.send(make()).expect("shard worker alive");
        }
    }

    fn dispatch_batch(&mut self) {
        if !self.preload_sent {
            self.preload_sent = true;
            let items = Arc::new(std::mem::take(&mut self.preload_buf));
            self.send_all(|| ToShard::Preload(Arc::clone(&items)));
        }
        if self.batch.is_empty() {
            return;
        }
        let batch = Arc::new(std::mem::replace(
            &mut self.batch,
            Vec::with_capacity(BATCH_TRACES),
        ));
        self.send_all(|| ToShard::Batch(Arc::clone(&batch)));
    }

    /// Barrier: dispatch the partial batch, collect every shard's epoch,
    /// apply the merged effects in emission order, then (optionally) run
    /// a globally watermarked GC pass.
    fn flush_epoch(&mut self, gc: bool) {
        self.dispatch_batch();
        self.send_all(|| ToShard::Flush);
        let epochs = self.collect_epochs();
        self.merge_epochs(&epochs, gc);
    }

    fn collect_epochs(&mut self) -> Vec<EpochOut> {
        self.workers
            .iter()
            .map(|w| {
                // lint: allow(L001): a dead worker shard is unrecoverable; re-raise as a panic
                match w.rx.recv().expect("shard worker alive") {
                    FromShard::Epoch(e) => *e,
                    // lint: allow(L001): protocol violation — replies match requests one-to-one
                    FromShard::Image(_) => unreachable!("expected epoch, got checkpoint image"),
                }
            })
            .collect()
    }

    fn merge_epochs(&mut self, epochs: &[EpochOut], gc: bool) {
        // lint: allow(L004): observability only — driver busy time feeds the obs registry and never feeds verification state
        let t0 = Instant::now();
        let merge_span = obs::span_start();
        for (i, e) in epochs.iter().enumerate() {
            obs::shard_busy(i, e.busy.as_micros() as u64);
        }
        let driver = std::mem::take(&mut self.driver_emissions);
        let mut merged: Vec<(EmitKey, &Effect)> = epochs
            .iter()
            .flat_map(|e| e.emissions.iter().map(|(k, eff)| (*k, eff)))
            .chain(driver.iter().map(|(k, eff)| (*k, eff)))
            .collect();
        // Emission keys are unique across shards (each site is owned by
        // exactly one shard, and driver sites use their own phase), so
        // this order — and therefore the report, the graph and the
        // coverage notes — is scheduling-independent.
        merged.sort_unstable_by_key(|e| e.0);
        for (_k, eff) in merged {
            self.apply(eff);
        }
        // Cumulative shard-side tallies: stats sum across shards (every
        // increment site runs in exactly one shard); committed/aborted are
        // identical in every shard (full transaction table) — take shard 0.
        let mut stats = DeductionStats::default();
        for e in epochs {
            add_stats(&mut stats, &e.stats);
        }
        self.stats = stats;
        self.counters.traces = self.admitted;
        self.counters.committed = epochs[0].counters.committed;
        self.counters.aborted = epochs[0].counters.aborted;
        // Spill activity runs inside the workers; their cumulative
        // tallies replace (not add to) the driver's aggregate each
        // barrier, so resume double-counts nothing.
        let b = &mut self.counters.budget;
        b.spill_passes = epochs.iter().map(|e| e.counters.budget.spill_passes).sum();
        b.spilled_records = epochs
            .iter()
            .map(|e| e.counters.budget.spilled_records)
            .sum();
        b.spill_faults = epochs.iter().map(|e| e.counters.budget.spill_faults).sum();
        b.spill_fallbacks = self.driver_spill_fallbacks
            + epochs
                .iter()
                .map(|e| e.counters.budget.spill_fallbacks)
                .sum::<u64>();
        let mut agg = SpillStats::default();
        for e in epochs {
            agg.records_out += e.spill_stats.records_out;
            agg.records_in += e.spill_stats.records_in;
            agg.retries += e.spill_stats.retries;
            agg.fallbacks += e.spill_stats.fallbacks;
            agg.bytes_on_disk += e.spill_stats.bytes_on_disk;
            agg.cache_hits += e.spill_stats.cache_hits;
            agg.cache_misses += e.spill_stats.cache_misses;
        }
        self.spill_stats = agg;
        if b.spill_fallbacks > 0 && !self.spill_fallback_noted {
            self.spill_fallback_noted = true;
            self.coverage.push_note(
                "spill disabled after write failure on at least one shard (records stay in memory)"
                    .to_string(),
            );
        }
        if self.store_fault.is_none() {
            let fault = epochs
                .iter()
                .enumerate()
                .find_map(|(i, e)| e.store_fault.as_ref().map(|m| (i, m.clone())));
            if let Some((i, msg)) = fault {
                self.coverage
                    .push_note(format!("spill store fault on shard {i}: {msg}"));
                self.store_fault = Some(msg);
            }
        }
        let fp: usize = epochs.iter().map(|e| e.footprint.total()).sum::<usize>()
            + self.graph.node_count()
            + self.graph.edge_count();
        self.counters.peak_footprint = self.counters.peak_footprint.max(fp);
        let merge_dur = obs::span_end(obs::Stage::CertifierMerge, obs::LANE_DRIVER, merge_span);
        obs::hist(obs::HistId::EpochApplyUs, merge_dur);
        obs::ctr(obs::Counter::CertifierMerges, 1);

        if gc {
            let gc_span = obs::span_start();
            let sp = epochs[0].stream_pos;
            let mut low = epochs[0].earliest_active.unwrap_or(sp).min(sp);
            if let Some(pl) = epochs.iter().filter_map(|e| e.pending_low).min() {
                low = low.min(pl);
            }
            self.send_all(|| ToShard::Gc(low));
            self.graph.prune(low);
            let gc_dur = obs::span_end(obs::Stage::GcBarrier, obs::LANE_DRIVER, gc_span);
            obs::hist(obs::HistId::GcPauseUs, gc_dur);
            obs::ctr(obs::Counter::GcPasses, 1);
        }

        // Budget governance at the barrier: observe the aggregate, and
        // when it exceeds the budget the watermarked GC just ran (or runs
        // next barrier) is the shard-mode rung 1; the online governor
        // escalates beyond it exactly as in the single-threaded chain.
        let usage = self.mem_usage();
        self.counters.budget.observe(usage);
        obs::gauge_set(obs::Gauge::MemBytes, usage.bytes);
        obs::ctr(obs::Counter::DriverBusyUs, t0.elapsed().as_micros() as u64);
    }

    fn apply(&mut self, eff: &Effect) {
        match eff {
            Effect::Violation(v) => self.report.violations.push(v.clone()),
            Effect::AddNode {
                txn,
                snapshot,
                commit,
            } => self.graph.add_node(*txn, *snapshot, *commit),
            Effect::Edge { from, to, kind } => {
                let rule = self.cfg.mechanisms.certifier;
                if let Some(v) = self.graph.add_edge(*from, *to, *kind, rule) {
                    self.report
                        .violations
                        .push(Violation::SerializationCertifier {
                            pattern: v.pattern.to_string(),
                            txns: v.txns,
                        });
                }
            }
            Effect::Demoted(note) => {
                self.coverage.demoted_reads += 1;
                self.coverage.push_note(note.clone());
                obs::ctr(obs::Counter::DemotedReads, 1);
            }
            Effect::Quarantined(note) => {
                self.coverage.quarantined_traces += 1;
                self.coverage.push_note(note.clone());
                obs::ctr(obs::Counter::QuarantinedTraces, 1);
            }
        }
    }

    /// Flushes every shard's remaining deferred checks, merges the final
    /// epoch, joins the workers and returns the outcome. Per-thread
    /// busy-time breakdowns live in the [`crate::obs`] registry
    /// (`leopard_shard_busy_us_total{shard}` / `leopard_driver_busy_us_total`)
    /// and in [`VerifyOutcome::obs`] when recording is enabled.
    #[must_use]
    pub fn finish(mut self) -> VerifyOutcome {
        self.dispatch_batch();
        self.send_all(|| ToShard::Finish);
        let epochs = self.collect_epochs();
        self.merge_epochs(&epochs, false);
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                // lint: allow(L001): re-raising a worker-thread panic is the only sane join policy
                join.join().expect("shard worker panicked");
            }
        }
        let mut coverage = self.coverage;
        let indeterminate = epochs[0].active.clone().unwrap_or_default();
        for &txn in &indeterminate {
            coverage.push_note(format!("indeterminate: {txn} has no terminal trace"));
        }
        coverage.indeterminate_txns = indeterminate;
        VerifyOutcome {
            report: self.report,
            stats: self.stats,
            counters: self.counters,
            coverage,
            obs: obs::snapshot_if_enabled(),
            store_fault: self.store_fault,
        }
    }

    /// Images the complete sharded state under one [`ShardedCheckpoint`]
    /// envelope. Runs a barrier first, so every buffered effect is applied
    /// and the envelope is byte-stable for a given trace prefix.
    #[must_use]
    pub fn checkpoint(&mut self) -> ShardedCheckpoint {
        self.flush_epoch(false);
        self.send_all(|| ToShard::Checkpoint);
        let shards: Vec<Checkpoint> = self
            .workers
            .iter()
            .map(|w| {
                // lint: allow(L001): a dead worker shard is unrecoverable; re-raise as a panic
                match w.rx.recv().expect("shard worker alive") {
                    FromShard::Image(img) => *img,
                    // lint: allow(L001): protocol violation — replies match requests one-to-one
                    FromShard::Epoch(_) => unreachable!("expected checkpoint image, got epoch"),
                }
            })
            .collect();
        let (quarantine_seq, quarantine_clients, quarantine_terminals) = self.quarantine.snapshot();
        ShardedCheckpoint {
            version: CHECKPOINT_VERSION,
            n_shards: self.n as u64,
            config: self.cfg,
            traces_fed: self.traces_fed,
            shards,
            graph: self.graph.snapshot(),
            quarantine_seq,
            quarantine_clients,
            quarantine_terminals,
            counters: self.counters,
            stats: self.stats,
            report: self.report.clone(),
            coverage: self.coverage.clone(),
        }
    }

    /// Rebuilds a sharded verifier from a [`ShardedCheckpoint`]. Do not
    /// re-preload initial state (it is part of the per-shard images); feed
    /// the capture's traces starting at index
    /// [`ShardedCheckpoint::traces_fed`] and the run continues to the same
    /// verdict as an uninterrupted one.
    pub fn resume(ckpt: &ShardedCheckpoint) -> Result<ShardedVerifier, CheckpointError> {
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: ckpt.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let n = ckpt.n_shards as usize;
        if n == 0 || ckpt.shards.len() != n {
            return Err(CheckpointError::Malformed(format!(
                "envelope declares {} shards but carries {} images",
                ckpt.n_shards,
                ckpt.shards.len()
            )));
        }
        let mut workers = Vec::with_capacity(n);
        for (i, image) in ckpt.shards.iter().enumerate() {
            let mut v = Verifier::from_checkpoint(image)?;
            v.assume_role(ShardRole { shard: i, of: n });
            workers.push(spawn_shard(v, i));
        }
        obs::gauge_set(obs::Gauge::Shards, n as u64);
        Ok(ShardedVerifier {
            cfg: ckpt.config,
            n,
            workers,
            graph: DepGraph::restore(&ckpt.graph),
            report: ckpt.report.clone(),
            stats: ckpt.stats,
            counters: ckpt.counters,
            coverage: ckpt.coverage.clone(),
            quarantine: QuarantineGate::restore(
                ckpt.quarantine_seq,
                &ckpt.quarantine_clients,
                &ckpt.quarantine_terminals,
            ),
            batch: Vec::with_capacity(BATCH_TRACES),
            preload_buf: Vec::new(),
            preload_sent: true,
            traces_fed: ckpt.traces_fed,
            admitted: ckpt.counters.traces,
            driver_emissions: Vec::new(),
            spill_attached: false,
            store_fault: None,
            spill_fallback_noted: false,
            driver_spill_fallbacks: 0,
            spill_stats: SpillStats::default(),
        })
    }

    /// Traces fed so far, including quarantined ones — the resume cursor.
    #[must_use]
    pub fn traces_fed(&self) -> u64 {
        self.traces_fed
    }

    /// Forces a globally watermarked GC pass immediately (rung 1 of the
    /// overload ladder): a full barrier plus a broadcast prune.
    pub fn force_gc(&mut self) {
        self.counters.budget.forced_gcs += 1;
        obs::ctr(obs::Counter::ForcedGcs, 1);
        self.flush_epoch(true);
    }

    /// Derives shard `i`'s private settings: the same cache size and
    /// retry schedule over a `shard-<i>` subdirectory, so concurrent
    /// segment writers never share files.
    fn shard_settings(settings: &SpillSettings, i: usize) -> SpillSettings {
        let mut s = settings.clone();
        s.dir = settings.dir.join(format!("shard-{i}"));
        s
    }

    /// Attaches one spill tier per shard, each rooted in a `shard-<i>`
    /// subdirectory of `settings.dir` (rung 1.5 of the overload ladder).
    /// Call before feeding traces. Fails fast if any tier cannot be
    /// opened; already-attached shards keep their tier (attachment
    /// without spilled records is harmless).
    pub fn attach_spill(&mut self, settings: &SpillSettings) -> StoreResult<()> {
        for (i, w) in self.workers.iter().enumerate() {
            let tier = SpillTier::open(&ShardedVerifier::shard_settings(settings, i))?;
            w.tx.send(ToShard::AttachSpill(Box::new(tier)))
                .expect("shard worker alive"); // lint: allow(L001): a dead worker shard is unrecoverable
        }
        self.spill_attached = true;
        Ok(())
    }

    /// Resume-path counterpart of [`ShardedVerifier::attach_spill`]:
    /// re-opens each shard's tier under `settings.dir` and adopts the
    /// spill index carried by that shard's checkpoint image, clearing
    /// the spilled-state-unavailable latch the workers set in
    /// [`ShardedVerifier::resume`]. `ckpt` must be the same envelope the
    /// verifier resumed from.
    pub fn resume_spill(
        &mut self,
        ckpt: &ShardedCheckpoint,
        settings: &SpillSettings,
    ) -> StoreResult<()> {
        for (i, w) in self.workers.iter().enumerate() {
            let tier = SpillTier::open(&ShardedVerifier::shard_settings(settings, i))?;
            let index = Arc::new(
                ckpt.shards
                    .get(i)
                    .map(|s| s.spill.clone())
                    .unwrap_or_default(),
            );
            w.tx.send(ToShard::ResumeSpill(Box::new(tier), index))
                .expect("shard worker alive"); // lint: allow(L001): a dead worker shard is unrecoverable
        }
        self.spill_attached = true;
        Ok(())
    }

    /// `true` once per-shard spill tiers are attached.
    #[must_use]
    pub fn spill_attached(&self) -> bool {
        self.spill_attached
    }

    /// Runs one spill pass on every shard (rung 1.5 of the overload
    /// ladder) as a full barrier, so [`ShardedVerifier::mem_usage`]
    /// reflects the drained state when this returns. A no-op without
    /// attached tiers.
    pub fn spill(&mut self) {
        if !self.spill_attached {
            return;
        }
        self.dispatch_batch();
        self.send_all(|| ToShard::Spill);
        let epochs = self.collect_epochs();
        self.merge_epochs(&epochs, false);
    }

    /// The first unrecoverable spill-store failure reported by any
    /// shard, as of the last barrier. While set, the run must surface a
    /// typed fatal error — never a verdict.
    #[must_use]
    pub fn store_fault(&self) -> Option<&str> {
        self.store_fault.as_deref()
    }

    /// Aggregate spill-tier activity counters as of the last barrier.
    #[must_use]
    pub fn spill_stats(&self) -> SpillStats {
        self.spill_stats
    }

    /// Records that the spill tiers could not be attached — a clean
    /// counted fallback to the in-memory path (see
    /// [`Verifier::note_spill_unavailable`]).
    pub fn note_spill_unavailable(&mut self, why: &str) {
        self.driver_spill_fallbacks += 1;
        self.counters.budget.spill_fallbacks += 1;
        obs::ctr(obs::Counter::SpillFallbacks, 1);
        self.coverage
            .push_note(format!("spill unavailable (records stay in memory): {why}"));
    }

    /// Aggregate live-memory estimate: every shard's last-reported usage
    /// plus the driver's dependency graph.
    #[must_use]
    pub fn mem_usage(&self) -> MemUsage {
        let mut total = self.graph.mem_usage();
        for w in &self.workers {
            total += *w.usage.lock();
        }
        total
    }

    /// Folds an externally measured usage sample into the budget
    /// high-water marks (same contract as [`Verifier::observe_usage`]).
    pub fn observe_usage(&mut self, usage: MemUsage) {
        self.counters.budget.observe(usage);
    }

    /// Records a watermark-stall eviction (see
    /// [`Verifier::note_evicted_client`]).
    pub fn note_evicted_client(&mut self, client: ClientId) {
        if !self.coverage.evicted_clients.contains(&client) {
            self.coverage.evicted_clients.push(client);
            self.coverage.evicted_clients.sort_unstable();
            self.coverage
                .push_note(format!("evicted: {client} force-closed by stall timeout"));
            obs::ctr(obs::Counter::StallEvictions, 1);
        }
    }

    /// Records a rung-3 budget eviction (see
    /// [`Verifier::note_budget_eviction`]).
    pub fn note_budget_eviction(&mut self, client: ClientId) {
        self.counters.budget.budget_evictions += 1;
        obs::ctr(obs::Counter::BudgetEvictions, 1);
        if !self.coverage.evicted_clients.contains(&client) {
            self.coverage.evicted_clients.push(client);
            self.coverage.evicted_clients.sort_unstable();
            self.coverage.push_note(format!(
                "evicted: {client} force-closed under memory pressure"
            ));
        }
    }

    /// Folds newly shed traces into the budget counters (see
    /// [`Verifier::note_shed_traces`]).
    pub fn note_shed_traces(&mut self, n: u64) {
        if n > 0 {
            self.counters.budget.shed_traces += n;
            self.coverage
                .push_note(format!("shed: {n} traces dropped under backpressure"));
        }
    }

    /// Counts a pipeline force-dispatch (rung 2) in the budget counters.
    pub fn note_forced_dispatch(&mut self) {
        self.counters.budget.forced_dispatches += 1;
    }

    /// Violations applied so far (up to the last barrier; effects from
    /// the still-open batch are not merged yet).
    #[must_use]
    pub fn report(&self) -> &BugReport {
        &self.report
    }

    /// Coverage accumulated so far (same barrier caveat as `report`).
    #[must_use]
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Run counters as of the last barrier.
    #[must_use]
    pub fn counters(&self) -> VerifyCounters {
        self.counters
    }
}

fn spawn_shard(v: Verifier, index: usize) -> ShardHandle {
    let (to_tx, to_rx) = mpsc::channel::<ToShard>();
    let (from_tx, from_rx) = mpsc::channel::<FromShard>();
    // One identity for the whole pool: all slots share the acquisition
    // pattern (shard writes after a batch, driver reads when governing),
    // and neither side ever holds another lock while taking it.
    let usage = Arc::new(TrackedMutex::new("ShardHandle.usage", MemUsage::default()));
    let worker_usage = Arc::clone(&usage);
    let join = std::thread::Builder::new()
        .name(format!("leopard-shard-{index}"))
        .spawn(move || shard_worker(index, v, to_rx, from_tx, worker_usage))
        // lint: allow(L001): thread spawn fails only on resource exhaustion; nothing to degrade to
        .expect("spawn shard worker");
    ShardHandle {
        tx: to_tx,
        rx: from_rx,
        usage,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::IsolationLevel;
    use crate::trace::TraceBuilder;
    use crate::types::Value;

    fn outcome_sig(o: &VerifyOutcome) -> String {
        format!(
            "{:?}|{:?}|{}|{}|{}|{:?}",
            o.report,
            o.stats,
            o.counters.traces,
            o.counters.committed,
            o.counters.aborted,
            o.coverage
        )
    }

    fn demo_traces() -> Vec<Trace> {
        let mut b = TraceBuilder::new();
        let mut ts = 10u64;
        for i in 0..40u64 {
            let txn = i + 1;
            let key = (i % 7) + 1;
            b.write(ts, ts + 2, (i % 4) as u32, txn, vec![(key, i + 1)]);
            b.commit(ts + 3, ts + 5, (i % 4) as u32, txn);
            ts += 6;
        }
        b.build_sorted()
    }

    #[test]
    fn sharded_matches_sequential_on_clean_history() {
        let cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
        let traces = demo_traces();
        let mut seq = Verifier::new(cfg);
        let mut sh = ShardedVerifier::new(cfg, 3);
        for k in 1..=7u64 {
            seq.preload(Key(k), Value(0));
            sh.preload(Key(k), Value(0));
        }
        for t in &traces {
            seq.process(t);
            sh.process(t);
        }
        assert_eq!(outcome_sig(&seq.finish()), outcome_sig(&sh.finish()));
    }

    #[test]
    fn sharded_reports_violations_in_sequential_order() {
        // Dirty read plus a concurrent-lock ME violation, across shards.
        let cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
        let mut b = TraceBuilder::new();
        b.write(10, 12, 0, 1, vec![(1, 10)]);
        b.read(20, 22, 1, 2, vec![(1, 10)]); // dirty read
        b.commit(23, 25, 1, 2);
        b.write(30, 40, 2, 3, vec![(2, 5)]);
        b.write(31, 39, 3, 4, vec![(2, 6)]);
        b.commit(41, 50, 2, 3);
        b.commit(42, 51, 3, 4);
        b.commit(60, 62, 0, 1);
        let traces = b.build_sorted();
        for n in [2usize, 4, 8] {
            let mut seq = Verifier::new(cfg);
            let mut sh = ShardedVerifier::new(cfg, n);
            for k in 1..=2u64 {
                seq.preload(Key(k), Value(0));
                sh.preload(Key(k), Value(0));
            }
            for t in &traces {
                seq.process(t);
                sh.process(t);
            }
            assert_eq!(
                outcome_sig(&seq.finish()),
                outcome_sig(&sh.finish()),
                "shards={n}"
            );
        }
    }

    #[test]
    fn sharded_checkpoint_roundtrip_continues_to_same_verdict() {
        let cfg = VerifierConfig::for_level(IsolationLevel::Serializable);
        let traces = demo_traces();
        let mut seq = Verifier::new(cfg);
        let mut sh = ShardedVerifier::new(cfg, 2);
        for k in 1..=7u64 {
            seq.preload(Key(k), Value(0));
            sh.preload(Key(k), Value(0));
        }
        let split = traces.len() / 2;
        for t in &traces[..split] {
            seq.process(t);
            sh.process(t);
        }
        let env = sh.checkpoint();
        let json = env.to_json();
        drop(sh.finish()); // cleanly shut down the original pool
        let env2 = ShardedCheckpoint::from_json(&json).expect("round-trips");
        assert_eq!(env2, env);
        let mut resumed = ShardedVerifier::resume(&env2).expect("resumes");
        assert_eq!(resumed.traces_fed(), split as u64);
        for t in &traces[split..] {
            seq.process(t);
            resumed.process(t);
        }
        assert_eq!(outcome_sig(&seq.finish()), outcome_sig(&resumed.finish()));
    }
}
